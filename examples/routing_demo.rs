//! Dominating-set-based routing demo: builds the gateway overlay, prints a
//! Figure-2-style gateway routing table, routes packets with the 3-step
//! procedure, and reports path stretch against true shortest paths.
//!
//! ```sh
//! cargo run --example routing_demo
//! ```

use pacds::core::{compute_cds, CdsConfig, CdsInput, Policy};
use pacds::graph::gen;
use pacds::routing::{route, stretch_summary, RoutingState};
use rand::SeedableRng;

fn main() {
    let bounds = pacds::geom::Rect::paper_arena();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
    let graph = loop {
        let pts = pacds::geom::placement::uniform_points(&mut rng, bounds, 30);
        let g = gen::unit_disk(bounds, 25.0, &pts);
        if pacds::graph::algo::is_connected(&g) {
            break g;
        }
    };

    let cds = compute_cds(&CdsInput::new(&graph), &CdsConfig::policy(Policy::Degree));
    let state = RoutingState::build(&graph, &cds);
    let gateways = state.gateways();
    println!(
        "{} hosts, {} links; gateway overlay: {:?}\n",
        graph.n(),
        graph.m(),
        gateways
    );

    // A Figure 2(c)-style routing table at the first gateway.
    let at = gateways[0];
    println!("gateway routing table at host {at}:");
    println!("{:>8} {:>9} {:>9}  domain members", "gateway", "distance", "next hop");
    for row in state.routing_table(at) {
        println!(
            "{:>8} {:>9} {:>9}  {:?}",
            row.gateway, row.distance, row.next_hop, row.members
        );
    }

    // Route a few packets with the three-step procedure.
    println!("\nsample routes (3-step procedure):");
    let n = graph.n() as u32;
    for (s, t) in [(0u32, n - 1), (1, n / 2), (n / 3, n - 2)] {
        match route(&graph, &state, s, t) {
            Ok(path) => println!("  {s:>3} -> {t:<3}  {path:?}"),
            Err(e) => println!("  {s:>3} -> {t:<3}  failed: {e}"),
        }
    }

    // How much longer are overlay routes than true shortest paths?
    let s = stretch_summary(&graph, &state);
    println!(
        "\nstretch over {} pairs: mean +{:.3} hops, max +{}, {:.1}% optimal, {} failures",
        s.pairs,
        s.mean_extra_hops,
        s.max_extra_hops,
        100.0 * s.optimal_fraction,
        s.failures
    );
}
