//! Watch the power-aware policies rotate gateway duty as batteries drain.
//!
//! Runs the full update-interval loop at a small size and prints, for ID
//! and EL1, how often each host served as a gateway and the final energy
//! spread — the mechanism behind the lifetime gains of Figures 11–13.
//!
//! ```sh
//! cargo run --release --example gateway_rotation
//! ```

use pacds::core::Policy;
use pacds::energy::DrainModel;
use pacds::sim::{NetworkState, SimConfig};
use rand::SeedableRng;

fn run(policy: Policy, seed: u64) -> (u32, Vec<u32>, f64) {
    let cfg = SimConfig::paper(20, policy, DrainModel::LinearInN);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut state = NetworkState::init(cfg, &mut rng);
    let mut duty = vec![0u32; cfg.n];
    let mut intervals = 0u32;
    loop {
        let gateways = state.compute_gateways();
        for (v, &g) in gateways.iter().enumerate() {
            duty[v] += u32::from(g);
        }
        let died = state.drain(&gateways);
        intervals += 1;
        if !died.is_empty() || intervals >= 10_000 {
            break;
        }
        state.advance_topology(&mut rng);
    }
    // Spread of remaining energy = how (un)balanced consumption was.
    let energies: Vec<f64> = (0..cfg.n).map(|v| state.fleet().energy(v)).collect();
    let mean = energies.iter().sum::<f64>() / cfg.n as f64;
    let var = energies.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / cfg.n as f64;
    (intervals, duty, var.sqrt())
}

fn main() {
    for policy in [Policy::Id, Policy::Energy] {
        let (intervals, duty, spread) = run(policy, 99);
        println!(
            "{}: first death at interval {intervals}; residual energy stddev {spread:.2}",
            policy.label()
        );
        println!("  gateway duty per host: {duty:?}");
        let max = *duty.iter().max().unwrap();
        let min = *duty.iter().min().unwrap();
        println!("  duty imbalance (max - min): {}\n", max - min);
    }
    println!("EL1 spreads gateway duty, so batteries drain evenly and the");
    println!("first death arrives later than under the static ID priority.");
}
