//! Quickstart: build an ad hoc network, run the marking process and each
//! selective-removal rule family, and verify the results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pacds::core::{compute_cds_trace, verify_cds, CdsConfig, CdsInput, Policy};
use pacds::graph::{gen, io, mask_to_vec};
use rand::SeedableRng;

fn main() {
    // 40 hosts uniformly placed in the paper's 100x100 arena, transmission
    // radius 25; re-sample until the unit-disk graph is connected.
    let bounds = pacds::geom::Rect::paper_arena();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2001);
    let (graph, _positions) = loop {
        let pts = pacds::geom::placement::uniform_points(&mut rng, bounds, 40);
        let g = gen::unit_disk(bounds, 25.0, &pts);
        if pacds::graph::algo::is_connected(&g) {
            break (g, pts);
        }
    };

    println!(
        "network: {} hosts, {} links, avg degree {:.1}\n",
        graph.n(),
        graph.m(),
        graph.avg_degree()
    );

    // Energy levels would normally come from batteries; use a spread here
    // so the energy-aware policies have something to react to.
    let energy: Vec<u64> = (0..graph.n() as u64).map(|i| 50 + (i * 13) % 50).collect();
    let input = CdsInput::with_energy(&graph, &energy);

    println!("{:>6} {:>9} {:>8} {:>8}  gateways", "policy", "marked", "rule1", "final");
    for policy in Policy::ALL {
        let trace = compute_cds_trace(&input, &CdsConfig::paper(policy));
        let count = |m: &[bool]| m.iter().filter(|&&b| b).count();
        verify_cds(&graph, &trace.after_rule2).expect("gateway set must be a CDS");
        let members = mask_to_vec(&trace.after_rule2);
        println!(
            "{:>6} {:>9} {:>8} {:>8}  {:?}",
            policy.label(),
            count(&trace.marked),
            count(&trace.after_rule1),
            count(&trace.after_rule2),
            &members[..members.len().min(12)],
        );
    }

    // Export the ID-policy gateway set for visual inspection with Graphviz.
    let cds = compute_cds_trace(&input, &CdsConfig::paper(Policy::Id)).after_rule2;
    let dot = io::to_dot(&graph, Some(&cds));
    let path = std::env::temp_dir().join("pacds_quickstart.dot");
    std::fs::write(&path, dot).expect("write DOT file");
    println!("\nDOT rendering of the ID gateway set: {}", path.display());
}
