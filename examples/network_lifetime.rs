//! Network-lifetime comparison: how long until the first host dies under
//! each gateway-selection policy? Reproduces the shape of the paper's
//! Figures 11–13 at a single network size.
//!
//! ```sh
//! cargo run --release --example network_lifetime [n] [trials]
//! ```

use pacds::core::Policy;
use pacds::energy::DrainModel;
use pacds::sim::montecarlo::run_trials;
use pacds::sim::{SimConfig, Simulation, Summary};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);
    let trials: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);

    println!("network lifetime at N = {n}, {trials} trials per point\n");
    for model in [
        DrainModel::ConstantTotal,
        DrainModel::LinearInN,
        DrainModel::QuadraticInN,
    ] {
        println!("drain model {}:", model.label());
        println!(
            "{:>6} {:>12} {:>10} {:>14}",
            "policy", "lifetime", "ci95", "mean gateways"
        );
        for policy in Policy::ALL {
            let cfg = SimConfig::paper(n, policy, model);
            let outcomes = run_trials(9000 + n as u64, trials, |_, rng| {
                let sim = Simulation::new(cfg, rng).without_verification();
                let out = sim.run_lifetime(rng);
                (f64::from(out.intervals), out.mean_gateways)
            });
            let lives: Vec<f64> = outcomes.iter().map(|o| o.0).collect();
            let gws: Vec<f64> = outcomes.iter().map(|o| o.1).collect();
            let life = Summary::from_slice(&lives);
            let gw = Summary::from_slice(&gws);
            println!(
                "{:>6} {:>12.2} {:>10.2} {:>14.2}",
                policy.label(),
                life.mean,
                life.ci95,
                gw.mean
            );
        }
        println!();
    }
    println!("expected shape: EL1/EL2 sustain the longest lifetimes under the");
    println!("N-dependent models; ID is the weakest pruning policy for lifetime.");
}
