//! Domain scenario from the paper's motivation: a rapidly-deployed ad hoc
//! network (disaster relief / battlefield) with no infrastructure.
//!
//! 150 responders move by random waypoint through a 300x300 m area. The
//! network self-organises a gateway backbone with the power-aware EL2
//! policy, relief-coordination traffic is routed over it, and every host
//! pays energy for the packets it actually forwards. The run reports the
//! backbone's evolution and how long the deployment lasts, and renders an
//! ASCII snapshot of the field.
//!
//! ```sh
//! cargo run --release --example disaster_relief
//! ```

use pacds::core::{compute_cds, CdsConfig, CdsInput, Policy};
use pacds::graph::gen;
use pacds::mobility::{MobilityModel, RandomWaypoint};
use pacds::routing::{flood_cost, route, RoutingState};
use rand::{Rng, SeedableRng};

const N: usize = 150;
const SIDE: f64 = 300.0;
const RADIUS: f64 = 40.0; // stronger field radios
const FLOWS_PER_INTERVAL: usize = 60;

fn main() {
    let bounds = pacds::geom::Rect::square(SIDE);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(112);
    let mut positions = pacds::geom::placement::jittered_grid(&mut rng, bounds, N);
    let mut mobility = RandomWaypoint::new(6.0);
    let mut energy = vec![100.0f64; N];

    let mut interval = 0u32;
    let mut delivered = 0u64;
    let mut undeliverable = 0u64;
    let mut backbone_sizes = Vec::new();

    println!("deploying {N} responders over {SIDE}x{SIDE} m, radio range {RADIUS} m\n");

    let first_death = loop {
        let graph = gen::unit_disk(bounds, RADIUS, &positions);
        let levels: Vec<u64> = energy.iter().map(|&e| (e / 10.0).max(0.0) as u64).collect();
        let gateways = compute_cds(
            &CdsInput::with_energy(&graph, &levels),
            &CdsConfig::policy(Policy::EnergyDegree),
        );
        backbone_sizes.push(gateways.iter().filter(|&&b| b).count());
        let tables = RoutingState::build(&graph, &gateways);

        if interval == 0 {
            // Show the initial field and the cost of a coordination flood.
            print!(
                "{}",
                pacds::sim::render_ascii(bounds, &positions, &gateways, None, 60, 18)
            );
            let blind = flood_cost(&graph, 0, None);
            let overlay = flood_cost(&graph, 0, Some(&gateways));
            println!(
                "field-wide alert: {} transmissions via backbone vs {} blind ({}% saved)\n",
                overlay.transmissions,
                blind.transmissions,
                100 * (blind.transmissions - overlay.transmissions) / blind.transmissions.max(1)
            );
        }

        // Coordination traffic: random pairs exchange status updates.
        let mut forwards = vec![0u32; N];
        for _ in 0..FLOWS_PER_INTERVAL {
            let s = rng.random_range(0..N) as u32;
            let t = rng.random_range(0..N) as u32;
            match route(&graph, &tables, s, t) {
                Ok(path) => {
                    delivered += 1;
                    if path.len() > 2 {
                        for &hop in &path[1..path.len() - 1] {
                            forwards[hop as usize] += 1;
                        }
                    }
                }
                Err(_) => undeliverable += 1,
            }
        }

        // Energy: idle cost plus forwarding work.
        let mut died = false;
        for (v, e) in energy.iter_mut().enumerate() {
            *e -= 0.05 + 0.20 * f64::from(forwards[v]);
            if *e <= 0.0 {
                died = true;
            }
        }
        interval += 1;
        if died || interval > 20_000 {
            break interval;
        }
        mobility.step(&mut rng, bounds, &mut positions);
    };

    let mean_backbone =
        backbone_sizes.iter().sum::<usize>() as f64 / backbone_sizes.len() as f64;
    println!("first responder battery exhausted at interval {first_death}");
    println!(
        "traffic: {delivered} status updates delivered, {undeliverable} undeliverable \
         ({:.2}% loss)",
        100.0 * undeliverable as f64 / (delivered + undeliverable).max(1) as f64
    );
    println!(
        "backbone: {:.1} of {N} responders on average ({:.0}%) carried the relay load,",
        mean_backbone,
        100.0 * mean_backbone / N as f64
    );
    println!("rotated by remaining battery so no responder burns out early.");
}
