//! Runs the localized message-passing protocol — one actor thread per host,
//! communicating only with radio neighbours — and checks it against the
//! centralised computation.
//!
//! ```sh
//! cargo run --example distributed_protocol
//! ```

use pacds::core::{compute_cds, CdsConfig, CdsInput, Policy};
use pacds::distributed::run_distributed;
use pacds::graph::{gen, mask_to_vec};
use rand::SeedableRng;

fn main() {
    let bounds = pacds::geom::Rect::paper_arena();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4242);
    let pts = pacds::geom::placement::uniform_points(&mut rng, bounds, 50);
    let graph = gen::unit_disk(bounds, 25.0, &pts);
    let energy: Vec<u64> = (0..graph.n() as u64).map(|i| (i * 37) % 100).collect();

    println!(
        "{} hosts exchange neighbour sets, markers and rule decisions over",
        graph.n()
    );
    println!("crossbeam channels — no host ever sees the global topology.\n");

    for policy in [Policy::Id, Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
        let cfg = CdsConfig::paper(policy);
        let distributed = run_distributed(&graph, Some(&energy), &cfg);
        let centralized = compute_cds(&CdsInput::with_energy(&graph, &energy), &cfg);
        assert_eq!(
            distributed, centralized,
            "protocol must agree with the centralised computation"
        );
        println!(
            "{:>4}: {} gateways {:?}",
            policy.label(),
            distributed.iter().filter(|&&b| b).count(),
            &mask_to_vec(&distributed)[..mask_to_vec(&distributed).len().min(14)]
        );
    }
    println!("\nall policies: distributed == centralized ✓");
}
