//! The size-vs-resilience trade-off: smaller gateway backbones route with
//! less state but concentrate failure risk. For each policy this example
//! reports the backbone's articulation points, bridges, sole dominators,
//! and single-point-of-failure fraction.
//!
//! ```sh
//! cargo run --example backbone_robustness
//! ```

use pacds::core::{compute_cds, CdsConfig, CdsInput, Policy};
use pacds::graph::gen;
use pacds::routing::backbone_robustness;
use rand::SeedableRng;

fn main() {
    let bounds = pacds::geom::Rect::paper_arena();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1234);
    let graph = loop {
        let pts = pacds::geom::placement::uniform_points(&mut rng, bounds, 50);
        let g = gen::unit_disk(bounds, 25.0, &pts);
        if pacds::graph::algo::is_connected(&g) {
            break g;
        }
    };
    let energy: Vec<u64> = (0..graph.n() as u64).map(|i| (i * 7) % 10).collect();

    println!(
        "network: {} hosts, {} links (avg degree {:.1})\n",
        graph.n(),
        graph.m(),
        graph.avg_degree()
    );
    println!(
        "{:>6} {:>9} {:>6} {:>8} {:>6} {:>8}",
        "policy", "gateways", "cuts", "bridges", "sole", "SPOF"
    );
    for policy in Policy::ALL {
        let gw = compute_cds(
            &CdsInput::with_energy(&graph, &energy),
            &CdsConfig::policy(policy),
        );
        let r = backbone_robustness(&graph, &gw);
        println!(
            "{:>6} {:>9} {:>6} {:>8} {:>6} {:>7.1}%",
            policy.label(),
            r.gateways,
            r.backbone_cut_vertices.len(),
            r.backbone_bridges,
            r.sole_dominators.len(),
            100.0 * r.spof_fraction
        );
    }
    println!();
    println!("NR's redundant backbone has few single points of failure; the");
    println!("pruned backbones pay for their size with concentrated risk —");
    println!("the trade-off the paper's conclusion mentions.");
}
