//! A frozen copy of the v0 (pre-workspace) CDS pipeline, kept as the
//! benchmark baseline.
//!
//! The `workspace` benchmarks compare the retained-arena hot path against
//! the code this repo shipped before it existed: a fresh `Graph`, bitmap,
//! priority table and result mask allocated every interval, and coverage
//! decided by the full-word-scan predicates
//! ([`NeighborBitmap::closed_subset`] / [`NeighborBitmap::open_subset_pair`])
//! on every candidate with no pre-filtering. The functions here replicate
//! that pipeline so `BENCH_workspace.json` keeps measuring new-vs-old even
//! as the library's own passes evolve. Do not "fix" or speed these up —
//! equivalence with the current passes is pinned by a test below, but their
//! cost profile is the point.

use pacds_core::{marking, CdsConfig, PriorityKey, Rule2Semantics};
use pacds_graph::{Graph, NeighborBitmap, NodeId, VertexMask};

/// The v0 simultaneous Rule 1 pass: plain `closed_subset` word scans.
pub fn rule1_pass_seed(
    g: &Graph,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
) -> VertexMask {
    let mut next = marked.to_vec();
    for v in g.vertices() {
        if !marked[v as usize] {
            continue;
        }
        for &u in g.neighbors(v) {
            if marked[u as usize] && key.lt(v, u) && bm.closed_subset(v, u) {
                next[v as usize] = false;
                break;
            }
        }
    }
    next
}

/// The v0 simultaneous Rule 2 pass: `open_subset_pair` on every pair of
/// marked neighbours, coverage before priority.
pub fn rule2_pass_seed(
    g: &Graph,
    bm: &NeighborBitmap,
    marked: &[bool],
    key: &PriorityKey,
    semantics: Rule2Semantics,
) -> VertexMask {
    let mut next = marked.to_vec();
    let mut marked_nbrs: Vec<NodeId> = Vec::new();
    for v in g.vertices() {
        if !marked[v as usize] {
            continue;
        }
        marked_nbrs.clear();
        marked_nbrs.extend(
            g.neighbors(v)
                .iter()
                .copied()
                .filter(|&u| marked[u as usize]),
        );
        if marked_nbrs.len() < 2 {
            continue;
        }
        let mut kill = false;
        'pairs: for (i, &u) in marked_nbrs.iter().enumerate() {
            for &w in &marked_nbrs[i + 1..] {
                if !bm.open_subset_pair(v, u, w) {
                    continue;
                }
                let ok = match semantics {
                    Rule2Semantics::MinOfThree => key.lt(v, u) && key.lt(v, w),
                    Rule2Semantics::CaseAnalysis => {
                        let cu = bm.open_subset_pair(u, v, w);
                        let cw = bm.open_subset_pair(w, v, u);
                        match (cu, cw) {
                            (false, false) => true,
                            (true, false) => key.lt(v, u),
                            (false, true) => key.lt(v, w),
                            (true, true) => key.lt(v, u) && key.lt(v, w),
                        }
                    }
                };
                if ok {
                    kill = true;
                    break 'pairs;
                }
            }
        }
        if kill {
            next[v as usize] = false;
        }
    }
    next
}

/// The v0 end-to-end pipeline for simultaneous single-pass configurations:
/// every structure allocated fresh, exactly as `compute_cds` did before the
/// workspace existed.
///
/// # Panics
/// Panics on sequential or fixpoint configurations — the benchmarks only
/// exercise the paper's single-pass simultaneous semantics.
pub fn compute_cds_seed(g: &Graph, energy: Option<&[u64]>, cfg: &CdsConfig) -> VertexMask {
    assert_eq!(cfg.application, pacds_core::Application::Simultaneous);
    assert_eq!(cfg.schedule, pacds_core::PruneSchedule::SinglePass);
    let marked = marking(g);
    if !cfg.policy.prunes() {
        return marked;
    }
    let bm = NeighborBitmap::build(g);
    let key = PriorityKey::build(cfg.policy, g, energy);
    let after1 = rule1_pass_seed(g, &bm, &marked, &key);
    rule2_pass_seed(g, &bm, &after1, &key, cfg.rule2_semantics())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::{compute_cds, CdsInput, Policy};
    use pacds_graph::gen;
    use rand::SeedableRng;

    /// The frozen baseline must stay bit-identical to the live pipeline —
    /// the benchmarks compare costs, not outputs.
    #[test]
    fn seed_pipeline_matches_current_pipeline() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for trial in 0..10 {
            let n = 40 + trial * 20;
            let g = gen::connected_gnp(&mut rng, n, 0.08, 8);
            let energy: Vec<u64> = (0..n as u64).map(|i| (i * 131) % 50).collect();
            for policy in Policy::ALL {
                let cfg = CdsConfig::policy(policy);
                let live = compute_cds(&CdsInput::with_energy(&g, &energy), &cfg);
                let seed = compute_cds_seed(&g, Some(&energy), &cfg);
                assert_eq!(live, seed, "trial {trial} {policy:?}");
            }
        }
    }
}
