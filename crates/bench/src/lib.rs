//! Shared harness for the figure-reproduction binaries.
//!
//! Every binary accepts the same environment knobs so CI and quick local
//! runs can scale the work:
//!
//! * `PACDS_TRIALS` — Monte-Carlo trials per point (default 30);
//! * `PACDS_SIZES` — comma-separated network sizes (default `5,10,...,100`);
//! * `PACDS_SEED` — master seed (default `0xC0FFEE`);
//! * `PACDS_OUT` — directory for CSV output (default `results/`).

pub mod seed_baseline;

use pacds_sim::experiments::{Series, SweepConfig};
use std::path::PathBuf;

/// Reads the sweep configuration from the environment.
pub fn sweep_from_env() -> SweepConfig {
    let trials = std::env::var("PACDS_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let sizes = std::env::var("PACDS_SIZES")
        .ok()
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("PACDS_SIZES: bad integer"))
                .collect()
        })
        .unwrap_or_else(default_sizes);
    let seed = std::env::var("PACDS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    SweepConfig {
        sizes,
        trials,
        seed,
        ..SweepConfig::default()
    }
}

/// The default size grid: 5 then 10..=100 step 10 (the paper sweeps 3..100).
pub fn default_sizes() -> Vec<usize> {
    let mut sizes = vec![5];
    sizes.extend((1..=10).map(|k| k * 10));
    sizes
}

/// Prints the table to stdout and writes `name.csv` under `PACDS_OUT`.
pub fn emit(name: &str, title: &str, series: &[Series]) {
    print!("{}", pacds_sim::csv::series_to_table(title, series));
    let dir: PathBuf = std::env::var("PACDS_OUT")
        .unwrap_or_else(|_| "results".to_string())
        .into();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    match std::fs::write(&path, pacds_sim::csv::series_to_csv(series)) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sizes_cover_the_paper_range() {
        let s = default_sizes();
        assert_eq!(s.first(), Some(&5));
        assert_eq!(s.last(), Some(&100));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sweep_defaults_are_sane() {
        let sweep = SweepConfig::default();
        assert!(sweep.trials >= 1);
        assert_eq!(sweep.policies.len(), 5);
    }
}
