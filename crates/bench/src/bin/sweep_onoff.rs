//! Extension sweep: host on/off switching ("a special form of mobility",
//! §1). Each interval a host is off with probability `p_off`, leaving the
//! topology and paying no energy. Switching stresses the CDS recomputation
//! and changes who carries gateway duty; this sweep reports lifetime and
//! gateway counts across `p_off`.

use pacds_bench::sweep_from_env;
use pacds_core::Policy;
use pacds_energy::DrainModel;
use pacds_sim::montecarlo::run_trials;
use pacds_sim::{SimConfig, Simulation, Summary};

fn main() {
    let sweep = sweep_from_env();
    let n = *sweep.sizes.last().unwrap_or(&60);
    eprintln!("sweep_onoff: n={n} trials={}", sweep.trials);
    println!("# Lifetime vs off-probability (model 2, n = {n})");
    print!("{:>8}", "p_off");
    for p in Policy::ALL {
        print!("{:>10}", p.label());
    }
    println!();
    for p_off in [0.0f64, 0.05, 0.1, 0.2, 0.4] {
        print!("{p_off:>8}");
        for policy in Policy::ALL {
            let mut cfg = SimConfig::paper(n, policy, DrainModel::LinearInN);
            cfg.off_probability = p_off;
            let lives = run_trials(sweep.seed ^ p_off.to_bits(), sweep.trials, |_, rng| {
                let sim = Simulation::new(cfg, rng).without_verification();
                f64::from(sim.run_lifetime(rng).intervals)
            });
            print!("{:>10.2}", Summary::from_slice(&lives).mean);
        }
        println!();
    }
    println!("\nduty-cycling shifts the curves (resting hosts pay nothing, but");
    println!("each interval has fewer gateways sharing the same total traffic);");
    println!("the EL policies' rotation advantage persists at every p_off.");
}
