//! Scaling curve of the sharded CDS engine (`pacds-shard`).
//!
//! For each size in `PACDS_SHARD_SIZES` (default `10000,100000,1000000`)
//! the binary places a constant-density unit-disk instance and times:
//!
//! * the **sharded** engine (`compute_unit_disk`, shards scaled with `n`)
//!   at every thread count in the scaling list (`--threads 1,2,4,8` or
//!   `PACDS_SHARD_THREADS`; default `1,2,4,8`) plus an all-cores run —
//!   the full partition → halo build → per-tile solve → ownership merge
//!   path, straight from the points: the whole-graph adjacency never
//!   materialises;
//! * the **whole-graph** `CdsWorkspace` on the same instance, where its
//!   dense `O(n²)`-bit neighbour bitmap is feasible (`n ≤ 100000`; at
//!   `n = 10⁶` it would need ~125 TB, which is the point of the crate).
//!
//! Every measured sharded run is asserted **bit-identical** to the
//! whole-graph result whenever the baseline ran, and the thread-count
//! runs to each other — the speedup columns are only meaningful if all
//! sides answer the same question.
//!
//! Writes `BENCH_shard.json` (override: `PACDS_BENCH_OUT`) with per-phase
//! timings from [`pacds_shard::ShardStats`] and a per-size `scaling`
//! table carrying the work-distribution counters
//! ([`pacds_shard::ThreadWork`]): `tiles_per_thread`,
//! `busy_ns_per_thread`, `stolen_tiles`. Those counters — not wall clock,
//! which depends on how many cores the bench box actually has
//! (`machine_threads` records it) — are the portable evidence that the
//! parallel path distributes work. Exits non-zero on identity failure or
//! a degenerate result.
//!
//! Hand-written JSON: the bench crate deliberately takes no serde
//! dependency.

use pacds_core::{CdsConfig, CdsWorkspace, Policy};
use pacds_geom::Rect;
use pacds_graph::gen;
use pacds_shard::{ShardSpec, ShardStats, ShardedCds, ThreadWork};
use rand::SeedableRng;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

const RADIUS: f64 = 25.0;
/// Whole-graph baseline ceiling: the dense bitmap is `n²` bits
/// (1.25 GB at 10⁵); past this only the sharded engine runs.
const BASELINE_LIMIT: usize = 100_000;

fn arena(n: usize) -> Rect {
    Rect::square((100.0 * (n as f64 / 100.0).sqrt()).max(1.0))
}

fn sizes() -> Vec<usize> {
    match std::env::var("PACDS_SHARD_SIZES") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("PACDS_SHARD_SIZES: integers"))
            .collect(),
        Err(_) => vec![10_000, 100_000, 1_000_000],
    }
}

/// Thread counts for the scaling table: `--threads`, then
/// `PACDS_SHARD_THREADS`, then `1,2,4,8`. Always includes 1 (the
/// reference point every speedup is computed against).
fn thread_counts() -> Vec<usize> {
    let mut args = std::env::args().skip(1);
    let mut spec = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => spec = Some(args.next().expect("--threads needs a list")),
            other => {
                eprintln!("error: unknown argument {other} (supported: --threads 1,2,4)");
                std::process::exit(2);
            }
        }
    }
    let spec = spec
        .or_else(|| std::env::var("PACDS_SHARD_THREADS").ok())
        .unwrap_or_else(|| "1,2,4,8".into());
    let mut counts: Vec<usize> = spec
        .split(',')
        .map(|t| t.trim().parse().expect("thread list: integers"))
        .collect();
    assert!(
        counts.iter().all(|&t| t >= 1),
        "thread counts must be >= 1"
    );
    if !counts.contains(&1) {
        counts.insert(0, 1);
    }
    counts
}

/// Repetitions scale down with size; minima are reported.
fn reps(n: usize) -> usize {
    if n >= 1_000_000 {
        1
    } else if n >= 100_000 {
        2
    } else {
        3
    }
}

struct ShardRun {
    ns: f64,
    stats: ShardStats,
    work: Vec<ThreadWork>,
}

/// Times `engine.compute_unit_disk` on a retained engine (minimum over
/// `reps`), returning the stats and work distribution of the fastest run.
fn run_sharded(
    engine: &mut ShardedCds,
    bounds: Rect,
    points: &[pacds_geom::Point2],
    energy: &[u64],
    cfg: &CdsConfig,
    reps: usize,
) -> ShardRun {
    let mut best = f64::INFINITY;
    let mut stats = ShardStats::default();
    let mut work = Vec::new();
    for _ in 0..reps {
        let t = Instant::now();
        engine
            .compute_unit_disk(bounds, RADIUS, points, Some(energy), cfg)
            .expect("benchmark config is shardable");
        let ns = t.elapsed().as_nanos() as f64;
        black_box(engine.gateway_count());
        if ns < best {
            best = ns;
            stats = engine.stats();
            work = engine.thread_work();
        }
    }
    ShardRun { ns: best, stats, work }
}

fn join_u64<I: Iterator<Item = u64>>(it: I) -> String {
    it.map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
}

/// One row of the per-size `scaling` table.
fn scaling_row(threads: usize, run: &ShardRun) -> String {
    let s = &run.stats;
    // Trim the retained-slot tail: slots past the run's width report 0.
    let active = &run.work[..run.work.len().min(threads)];
    format!(
        concat!(
            "        {{ \"threads\": {}, \"ns\": {:.0}, ",
            "\"partition_ns\": {}, \"halo_build_ns\": {}, ",
            "\"solve_ns\": {}, \"merge_ns\": {}, \"stolen_tiles\": {}, ",
            "\"tiles_per_thread\": [{}], \"busy_ns_per_thread\": [{}] }}"
        ),
        threads,
        run.ns,
        s.partition_ns,
        s.halo_build_ns,
        s.solve_ns,
        s.merge_ns,
        s.stolen_tiles,
        join_u64(active.iter().map(|w| w.tiles_solved)),
        join_u64(active.iter().map(|w| w.busy_ns)),
    )
}

fn main() -> ExitCode {
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let counts = thread_counts();
    let machine_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut rows = Vec::new();
    for n in sizes() {
        let bounds = arena(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let points = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
        let energy: Vec<u64> = (0..n).map(|i| (i as u64 * 7919) % 100).collect();
        let r = reps(n);

        // The thread-scaling sweep; threads=1 is the reference the other
        // rows' identity and speedups are checked against.
        let mut inline = ShardedCds::new(ShardSpec::auto()).expect("default halo");
        let single = run_sharded(&mut inline, bounds, &points, &energy, &cfg, r);
        let gateways = inline.gateway_count();
        if n > 0 && gateways == 0 {
            eprintln!("error: n={n} produced an empty gateway set");
            return ExitCode::FAILURE;
        }

        let mut scaling = vec![scaling_row(1, &single)];
        let mut scaling_log = vec![(1usize, single.ns)];
        for &t in counts.iter().filter(|&&t| t != 1) {
            let mut eng = ShardedCds::new(ShardSpec {
                threads: t,
                ..ShardSpec::auto()
            })
            .expect("default halo");
            let run = run_sharded(&mut eng, bounds, &points, &energy, &cfg, r);
            if eng.gateways() != inline.gateways() {
                eprintln!("error: n={n} threads={t}: result diverged from inline");
                return ExitCode::FAILURE;
            }
            scaling.push(scaling_row(t, &run));
            scaling_log.push((t, run.ns));
        }

        // The "use the whole machine" shape the serving layer would pick.
        let mut stealing = ShardedCds::new(ShardSpec::all_cores()).expect("default halo");
        let multi = run_sharded(&mut stealing, bounds, &points, &energy, &cfg, r);
        if stealing.gateways() != inline.gateways() {
            eprintln!("error: n={n}: all-cores result diverged from inline");
            return ExitCode::FAILURE;
        }

        // Whole-graph baseline + identity check where the bitmap fits.
        let whole_ns = if n <= BASELINE_LIMIT {
            let g = gen::unit_disk(bounds, RADIUS, &points);
            let mut ws = CdsWorkspace::with_capacity(n);
            let mut best = f64::INFINITY;
            for _ in 0..r {
                let t = Instant::now();
                ws.compute(&g, Some(&energy), &cfg);
                best = best.min(t.elapsed().as_nanos() as f64);
                black_box(ws.gateway_count());
            }
            if ws.gateways() != inline.gateways()
                || ws.marked() != inline.marked()
                || ws.after_rule1() != inline.after_rule1()
            {
                eprintln!("error: n={n}: sharded result diverged from the whole graph");
                return ExitCode::FAILURE;
            }
            Some(best)
        } else {
            None
        };

        let s = &single.stats;
        let speedup = whole_ns.map(|w| w / single.ns);
        println!(
            "n={n:>8}  tiles={:>5}  sharded {:>12.0} ns (threads=1) / {:>12.0} ns (all cores)  \
             whole-graph {}  speedup {}",
            s.tiles,
            single.ns,
            multi.ns,
            whole_ns.map_or("    skipped".into(), |w| format!("{w:>12.0} ns")),
            speedup.map_or("-".into(), |x| format!("{x:.2}x")),
        );
        for &(t, ns) in &scaling_log {
            println!(
                "            threads={t:>2}  {ns:>12.0} ns  speedup-vs-1 {:.2}x",
                single.ns / ns
            );
        }
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {}, \"tiles\": {}, \"gateways\": {},\n",
                "      \"owned_nodes\": {}, \"halo_nodes\": {}, \"cross_tile_edges\": {},\n",
                "      \"sharded_ns\": {:.0}, \"sharded_all_cores_ns\": {:.0},\n",
                "      \"partition_ns\": {}, \"halo_build_ns\": {}, ",
                "\"solve_ns\": {}, \"merge_ns\": {},\n",
                "      \"whole_graph_ns\": {}, \"speedup_vs_whole_graph\": {},\n",
                "      \"scaling\": [\n{}\n      ]\n",
                "    }}"
            ),
            n,
            s.tiles,
            gateways,
            s.owned_nodes,
            s.halo_nodes,
            s.cross_tile_edges,
            single.ns,
            multi.ns,
            s.partition_ns,
            s.halo_build_ns,
            s.solve_ns,
            s.merge_ns,
            whole_ns.map_or("null".into(), |w| format!("{w:.0}")),
            speedup.map_or("null".into(), |x| format!("{x:.3}")),
            scaling.join(",\n"),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"shard_scaling\",\n",
            "  \"description\": \"pacds-shard spatial engine on constant-density unit-disk ",
            "instances (radius 25, ~19.6 expected neighbours), EnergyDegree policy, ",
            "simultaneous single-pass min-of-three semantics; minimum over repetitions; ",
            "whole-graph CdsWorkspace baseline where its dense n^2-bit bitmap fits ",
            "(n <= {}), with asserted bit-identity. whole_graph_ns and ",
            "speedup_vs_whole_graph are null (never omitted) when the baseline did not run. ",
            "Schema: each result's scaling[] row is one thread count; its per-phase *_ns ",
            "fields sum executor CPU time (not wall time, which is the row's ns); ",
            "stolen_tiles counts tiles an executor claimed from another executor's stripe ",
            "of the size-ordered schedule; tiles_per_thread / busy_ns_per_thread are ",
            "indexed by executor id (0 = the calling thread) — work distribution is the ",
            "machine-independent evidence of parallelism, wall-clock speedup depends on ",
            "machine_threads\",\n",
            "  \"unit\": \"ns/compute\",\n",
            "  \"machine_threads\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        BASELINE_LIMIT,
        machine_threads,
        rows.join(",\n")
    );
    let out = std::env::var("PACDS_BENCH_OUT").unwrap_or_else(|_| "BENCH_shard.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => {
            eprintln!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}
