//! Backbone-size comparison across every CDS construction in the
//! workspace: the marking process (raw and pruned), Dai-Wu Rule k, the
//! centralized greedy MCDS, the OLSR-style MPR CDS, and the lowest-ID
//! cluster overlay — the "several classical approaches" of the paper's
//! introduction, made concrete.

use pacds_bench::sweep_from_env;
use pacds_core::{compute_cds, compute_cds_daiwu, CdsConfig, CdsInput, Policy};
use pacds_energy::DrainModel;
use pacds_sim::montecarlo::run_trials;
use pacds_sim::{NetworkState, SimConfig, Summary};

fn main() {
    let sweep = sweep_from_env();
    eprintln!(
        "baselines_compare: sizes={:?} trials={}",
        sweep.sizes, sweep.trials
    );
    println!("# Gateway-set size by construction (connected unit-disk graphs)");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "n", "marking", "ID", "ND", "rule-k", "greedy", "MPR", "cluster"
    );
    for &n in &sweep.sizes {
        let cfg = SimConfig::paper(n, Policy::NoPruning, DrainModel::LinearInN);
        let rows = run_trials(sweep.seed ^ n as u64, sweep.trials, |_, rng| {
            let st = NetworkState::init(cfg, rng);
            let g = st.graph().clone();
            let count = |m: &[bool]| m.iter().filter(|&&b| b).count() as f64;
            let input = CdsInput::new(&g);
            let marking = count(&compute_cds(&input, &CdsConfig::policy(Policy::NoPruning)));
            let id = count(&compute_cds(&input, &CdsConfig::policy(Policy::Id)));
            let nd = count(&compute_cds(&input, &CdsConfig::policy(Policy::Degree)));
            let rulek = count(&compute_cds_daiwu(&g, None, Policy::Degree));
            let greedy = if pacds_graph::algo::is_connected(&g) {
                count(&pacds_baselines::greedy_mcds(&g))
            } else {
                f64::NAN
            };
            let mpr = count(&pacds_baselines::mpr_cds(&g));
            let clustering = pacds_baselines::lowest_id_clusters(&g);
            let cluster = count(&pacds_baselines::cluster_gateways(&g, &clustering));
            [marking, id, nd, rulek, greedy, mpr, cluster]
        });
        print!("{n:>6}");
        for col in 0..7 {
            let vals: Vec<f64> = rows
                .iter()
                .map(|r| r[col])
                .filter(|v| v.is_finite())
                .collect();
            if vals.is_empty() {
                print!("{:>8}", "-");
            } else {
                print!("{:>8.1}", Summary::from_slice(&vals).mean);
            }
        }
        println!();
    }
    println!("\ngreedy MCDS has global knowledge (lower bound flavour); the");
    println!("marking-based rules and MPR use only 2-hop-local information.");
}
