//! Ablation: the paper's pair-based rules vs the Dai-Wu generalised
//! Rule k (connected higher-priority coverage). Rule k is the successor
//! this line of research converged on; this sweep shows how much more it
//! prunes at paper densities and what that costs in lifetime.

use pacds_bench::sweep_from_env;
use pacds_core::{compute_cds_daiwu, Policy};
use pacds_energy::DrainModel;
use pacds_sim::montecarlo::run_trials;
use pacds_sim::{NetworkState, SimConfig, Summary};

fn main() {
    let sweep = sweep_from_env();
    eprintln!("ablation_rulek: sizes={:?} trials={}", sweep.sizes, sweep.trials);
    println!("# Pair rules (Rules 1+2, safe) vs Dai-Wu Rule k: gateway count");
    println!("{:>6} {:>8} {:>12} {:>12}", "n", "policy", "pair rules", "rule k");
    for &n in &sweep.sizes {
        for policy in [Policy::Id, Policy::Degree, Policy::EnergyDegree] {
            let cfg = SimConfig::paper(n, policy, DrainModel::LinearInN);
            let out = run_trials(sweep.seed ^ n as u64, sweep.trials, |_, rng| {
                let mut st = NetworkState::init(cfg, rng);
                let pair = st.compute_gateways().iter().filter(|&&b| b).count() as f64;
                let levels = st.fleet().levels();
                let k = compute_cds_daiwu(st.graph(), Some(&levels), policy)
                    .iter()
                    .filter(|&&b| b)
                    .count() as f64;
                (pair, k)
            });
            let pair = Summary::from_slice(&out.iter().map(|o| o.0).collect::<Vec<_>>());
            let k = Summary::from_slice(&out.iter().map(|o| o.1).collect::<Vec<_>>());
            println!(
                "{:>6} {:>8} {:>12.2} {:>12.2}",
                n,
                policy.label(),
                pair.mean,
                k.mean
            );
        }
    }
}
