//! Soundness-gap experiment: how often does the paper-literal extended
//! Rule 2 (case analysis, applied simultaneously) produce a set that is not
//! a connected dominating set?
//!
//! The rate is measured over every connected interval of full lifetime
//! runs at the paper's parameters. See DESIGN.md ("fidelity notes") and the
//! counterexample test in `pacds-core` for the underlying mechanism.

use pacds_bench::sweep_from_env;
use pacds_energy::DrainModel;
use pacds_sim::experiments::violation_rate_experiment;

fn main() {
    let sweep = sweep_from_env();
    eprintln!(
        "violation_rate: sizes={:?} trials={} seed={:#x}",
        sweep.sizes, sweep.trials, sweep.seed
    );
    println!("# Paper-literal Rule 2: CDS violation rate per policy");
    println!("{:>8} {:>14} {:>12} {:>12}", "policy", "intervals", "violations", "rate");
    for (policy, total, bad) in violation_rate_experiment(&sweep, DrainModel::LinearInN) {
        let rate = if total == 0 { 0.0 } else { bad as f64 / total as f64 };
        println!(
            "{:>8} {:>14} {:>12} {:>12.6}",
            policy.label(),
            total,
            bad,
            rate
        );
    }
}
