//! Protocol overhead: messages and hello-payload entries per update
//! interval, as a function of network size — the cost side of the
//! marking process's locality story.

use pacds_bench::sweep_from_env;
use pacds_core::{CdsConfig, Policy};
use pacds_distributed::protocol_stats;
use pacds_geom::Rect;
use pacds_graph::gen;
use pacds_sim::montecarlo::run_trials;
use pacds_sim::Summary;

fn main() {
    let sweep = sweep_from_env();
    eprintln!("protocol_overhead: sizes={:?} trials={}", sweep.sizes, sweep.trials);
    println!("# Marking-protocol overhead per update interval (paper arena)");
    println!(
        "{:>6} {:>12} {:>12} {:>16} {:>14}",
        "n", "hello msgs", "marker msgs", "payload entries", "msgs/host"
    );
    let cfg = CdsConfig::policy(Policy::Id);
    for &n in &sweep.sizes {
        let stats = run_trials(sweep.seed ^ n as u64, sweep.trials, |_, rng| {
            let bounds = Rect::paper_arena();
            let pts = pacds_geom::placement::uniform_points(rng, bounds, n);
            let g = gen::unit_disk(bounds, 25.0, &pts);
            let s = protocol_stats(&g, &cfg);
            (
                s.hello_messages as f64,
                s.marker_messages as f64,
                s.hello_payload_entries as f64,
            )
        });
        let hello = Summary::from_slice(&stats.iter().map(|s| s.0).collect::<Vec<_>>());
        let marker = Summary::from_slice(&stats.iter().map(|s| s.1).collect::<Vec<_>>());
        let payload = Summary::from_slice(&stats.iter().map(|s| s.2).collect::<Vec<_>>());
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>16.1} {:>14.2}",
            n,
            hello.mean,
            marker.mean,
            payload.mean,
            (hello.mean + marker.mean) / n as f64
        );
    }
}
