//! Ablation: transmission radius. The paper fixes r = 25 in a 100x100
//! arena; this sweep shows how the gateway-set sizes and the pruning gap
//! respond to density (larger radius → denser graph → relatively smaller
//! backbones).

use pacds_bench::sweep_from_env;
use pacds_core::Policy;
use pacds_energy::DrainModel;
use pacds_sim::montecarlo::run_trials;
use pacds_sim::{NetworkState, SimConfig, Summary};

fn main() {
    let sweep = sweep_from_env();
    let n = *sweep.sizes.last().unwrap_or(&80);
    eprintln!("sweep_radius: n={n} trials={}", sweep.trials);
    println!("# Gateway count vs transmission radius (n = {n})");
    print!("{:>8}", "radius");
    for p in Policy::ALL {
        print!("{:>10}", p.label());
    }
    println!();
    for radius in [15.0f64, 20.0, 25.0, 30.0, 40.0, 50.0] {
        print!("{radius:>8}");
        for policy in Policy::ALL {
            let mut cfg = SimConfig::paper(n, policy, DrainModel::LinearInN);
            cfg.radius = radius;
            // Sparser radii may fail to connect within the retry cap; the
            // marking process still runs per component.
            let counts = run_trials(sweep.seed ^ radius.to_bits(), sweep.trials, |_, rng| {
                let mut st = NetworkState::init(cfg, rng);
                // In-place workspace compute: no per-trial mask clone.
                let gw = st.compute_gateways_in_place();
                gw.iter().filter(|&&b| b).count() as f64
            });
            print!("{:>10.2}", Summary::from_slice(&counts).mean);
        }
        println!();
    }
}
