//! Pins the overhead of the `pacds-obs` instrumentation layer.
//!
//! The same binary is run twice over the identical workload (the
//! `BENCH_workspace.json` reuse hot path: mobility step + in-place CSR
//! rebuild + `CdsWorkspace` CDS + verification):
//!
//! 1. **without** `--features obs` — instrumentation compiled out — it
//!    writes the baseline timings (`PACDS_OBS_BASELINE`, default
//!    `BENCH_obs_baseline.json`);
//! 2. **with** `--features obs` (or `obs,trace`) — it re-times the
//!    workload, reads the baseline, writes the merged `BENCH_obs.json`
//!    artifact (`PACDS_BENCH_OUT`), and **exits non-zero** if the
//!    instrumented build is more than `PACDS_OBS_MAX_PCT` percent slower
//!    (default 3) at any n ≥ 1000.
//!
//! Four hot paths are gated: the whole-graph reuse loop, the sharded
//! engine, the incremental churn engine, and the dataplane forwarding
//! loop (`Dataplane::pump` over cached routes). When the instrumented build
//! also compiles the `trace` feature in, span sampling is switched on
//! (1/[`TRACE_SAMPLE`]) for the measurement, so the gate covers tracing
//! as deployed, not just dormant counters.
//!
//! Per-size timings take the minimum of several repetitions — wall-clock
//! minima are far more stable than means under scheduler noise, which
//! matters when the acceptance band is single-digit percent.
//!
//! The JSON is written (and re-read) by hand — the bench crate
//! deliberately takes no serde dependency.

use pacds_core::{CdsConfig, CdsWorkspace, Policy};
use pacds_geom::{Point2, Rect};
use pacds_graph::{gen, CsrGraph};
use pacds_mobility::{MobilityModel, PaperWalk};
use rand::SeedableRng;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

const RADIUS: f64 = 25.0;
const SIZES: [usize; 3] = [100, 1000, 10000];
/// Sizes for the sharded-engine hot path (`pacds-shard`), gated the same
/// way: the shard phase timers and counters must also be ≤ 3% overhead.
const SHARD_SIZES: [usize; 2] = [1000, 10000];
/// Sizes for the incremental churn hot path (`ChurnEngine::step`).
const CHURN_SIZES: [usize; 2] = [1000, 10000];
/// Sizes for the dataplane forwarding hot path (`Dataplane::pump` on
/// cached routes — the per-pump `obs_time!`/`obs_count!` flush plus the
/// per-pump span must stay inside the same ≤ 3% band).
const DP_SIZES: [usize; 2] = [1000, 10000];
/// Span sampling rate used for the instrumented run of a `trace` build:
/// every 64th churn step / sharded compute carries a recording trace id.
const TRACE_SAMPLE: u64 = 64;
/// Many *short* repetitions, minimum taken: on a small shared machine,
/// contention arrives in multi-second bursts, so a 75–125 ms measurement
/// window that can dodge the burst beats a long window that averages it
/// in. The window length is set by `iters` in [`measure`].
const REPS: usize = 20;

fn arena(n: usize) -> Rect {
    Rect::square((100.0 * (n as f64 / 100.0).sqrt()).max(1.0))
}

struct Interval {
    bounds: Rect,
    positions: Vec<Point2>,
    walk: PaperWalk,
    energy: Vec<u64>,
    rng: rand::rngs::StdRng,
}

impl Interval {
    fn new(n: usize, seed: u64) -> Self {
        let bounds = arena(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let positions = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
        let energy = (0..n).map(|i| (i as u64 * 7919) % 100).collect();
        Self { bounds, positions, walk: PaperWalk::paper(), energy, rng }
    }
}

/// Mean ns per iteration of `f` after `warmup` unmeasured runs.
fn time_ns(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Minimum over [`REPS`] repetitions of the reuse hot path at size `n`.
fn measure(n: usize) -> f64 {
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let iters = (50_000 / n).clamp(4, 400);
    let mut best = f64::INFINITY;
    for rep in 0..REPS {
        let mut iv = Interval::new(n, 42 + rep as u64);
        let mut csr = CsrGraph::new();
        let mut scratch = gen::UnitDiskScratch::new();
        let mut ws = CdsWorkspace::with_capacity(n);
        let ns = time_ns(2, iters, || {
            iv.walk.step(&mut iv.rng, iv.bounds, &mut iv.positions);
            gen::unit_disk_csr(iv.bounds, RADIUS, &iv.positions, None, &mut csr, &mut scratch);
            ws.compute(&csr, Some(&iv.energy), &cfg);
            let _ = black_box(ws.verify_last(&csr));
            black_box(ws.gateway_count());
        });
        best = best.min(ns);
    }
    best
}

/// Minimum over [`REPS`] repetitions of the sharded hot path at size `n`:
/// mobility step + `ShardedCds::compute_unit_disk` on a retained engine
/// (inline single thread, shard count scaled with `n`).
fn measure_shard(n: usize) -> f64 {
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let iters = (50_000 / n).clamp(4, 400);
    let mut best = f64::INFINITY;
    for rep in 0..REPS {
        let mut iv = Interval::new(n, 42 + rep as u64);
        let mut engine = pacds_shard::ShardedCds::new(pacds_shard::ShardSpec {
            threads: 1,
            ..pacds_shard::ShardSpec::auto()
        })
        .expect("default halo is legal");
        let ns = time_ns(2, iters, || {
            iv.walk.step(&mut iv.rng, iv.bounds, &mut iv.positions);
            engine.set_trace(pacds_obs::next_trace_id());
            engine
                .compute_unit_disk(iv.bounds, RADIUS, &iv.positions, Some(&iv.energy), &cfg)
                .expect("benchmark config is shardable");
            black_box(engine.gateway_count());
        });
        best = best.min(ns);
    }
    best
}

/// Minimum over [`REPS`] repetitions of the churn hot path at size `n`:
/// a deterministic batch of mobility events through a retained
/// `ChurnEngine` (inline single thread; only the dirtied tiles re-solve).
fn measure_churn(n: usize) -> f64 {
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let iters = (50_000 / n).clamp(4, 400);
    let batch = (n / 100).max(4);
    let mut best = f64::INFINITY;
    for rep in 0..REPS {
        let iv = Interval::new(n, 42 + rep as u64);
        // The churn engine treats energy 0 as exhausted; keep every host up.
        let energy: Vec<u64> = iv.energy.iter().map(|&e| e.max(1)).collect();
        let mut engine = pacds_shard::ChurnEngine::open(
            pacds_shard::ShardSpec { threads: 1, ..pacds_shard::ShardSpec::auto() },
            iv.bounds,
            RADIUS,
            &iv.positions,
            &energy,
            &cfg,
        )
        .expect("benchmark config is shardable");
        let mut step = 0u64;
        let ns = time_ns(2, iters, || {
            // Small deterministic hops for a rotating subset of hosts.
            let events: Vec<pacds_shard::ChurnEvent> = (0..batch)
                .map(|k| {
                    let node = ((step * 31 + k as u64 * 97) % n as u64) as u32;
                    let p = engine.positions()[node as usize];
                    let f = ((step * 61 + k as u64 * 13) % 997) as f64 / 997.0 - 0.5;
                    pacds_shard::ChurnEvent::MoveNode {
                        node,
                        to: Point2::new(
                            (p.x + f * RADIUS).clamp(iv.bounds.x0, iv.bounds.x1),
                            (p.y - f * RADIUS).clamp(iv.bounds.y0, iv.bounds.y1),
                        ),
                    }
                })
                .collect();
            engine.set_trace(pacds_obs::next_trace_id());
            engine.step(&events).expect("typed-valid event batch");
            black_box(engine.gateway_count());
            step += 1;
        });
        best = best.min(ns);
    }
    best
}

/// Minimum over [`REPS`] repetitions of the dataplane forwarding hot path
/// at size `n`: a wave of packets over cached source routes through
/// `Dataplane::pump` (inject → lookup hit → forward → egress, then the
/// wholesale batch reset). The backbone is static here — churn overhead
/// is `measure_churn`'s job; this isolates the per-packet engine cost.
fn measure_dataplane(n: usize) -> f64 {
    const FLOWS: usize = 64;
    const PACKETS: usize = 32;
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let iters = (50_000 / n).clamp(4, 400);
    let mut best = f64::INFINITY;
    for rep in 0..REPS {
        let iv = Interval::new(n, 42 + rep as u64);
        let mut csr = CsrGraph::new();
        let mut scratch = gen::UnitDiskScratch::new();
        gen::unit_disk_csr(iv.bounds, RADIUS, &iv.positions, None, &mut csr, &mut scratch);
        let mut ws = CdsWorkspace::with_capacity(n);
        ws.compute(&csr, Some(&iv.energy), &cfg);
        let alive = vec![true; n];
        let mut dp = pacds_dataplane::Dataplane::new();
        dp.install_tables(ws.gateways(), &alive);
        let mut probe = Vec::new();
        let mut flow_ids = Vec::with_capacity(FLOWS);
        let mut k = 0u32;
        while flow_ids.len() < FLOWS {
            let s = (k.wrapping_mul(131).wrapping_add(17)) % n as u32;
            let t = (k.wrapping_mul(197).wrapping_add(5)) % n as u32;
            k += 1;
            if s == t || dp.routes_mut().assemble(&csr, s, t, &mut probe).is_err() {
                continue; // off-backbone or disconnected pick: next stride
            }
            flow_ids.push(dp.add_flow(s, t));
        }
        let ns = time_ns(2, iters, || {
            dp.set_trace(pacds_obs::next_trace_id());
            for &f in &flow_ids {
                dp.inject(f, PACKETS);
            }
            black_box(dp.pump(&csr, &alive));
            dp.reset_packets();
        });
        best = best.min(ns);
    }
    best
}

/// Extracts `"key": <number>` occurrences from hand-written JSON `text`.
fn extract_numbers(text: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    for chunk in text.split(&needle).skip(1) {
        let num: String = chunk
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse() {
            out.push(v);
        }
    }
    out
}

fn run_baseline() -> ExitCode {
    let rows: Vec<String> = SIZES
        .iter()
        .map(|&n| {
            let ns = measure(n);
            println!("n={n:>6}  baseline {ns:>12.0} ns/interval");
            format!("    {{ \"n\": {n}, \"ns_per_interval\": {ns:.0} }}")
        })
        .collect();
    let shard_rows: Vec<String> = SHARD_SIZES
        .iter()
        .map(|&n| {
            let ns = measure_shard(n);
            println!("n={n:>6}  baseline {ns:>12.0} ns/interval (sharded)");
            format!("    {{ \"shard_n\": {n}, \"shard_ns_per_interval\": {ns:.0} }}")
        })
        .collect();
    let churn_rows: Vec<String> = CHURN_SIZES
        .iter()
        .map(|&n| {
            let ns = measure_churn(n);
            println!("n={n:>6}  baseline {ns:>12.0} ns/step (churn)");
            format!("    {{ \"churn_n\": {n}, \"churn_ns_per_step\": {ns:.0} }}")
        })
        .collect();
    let dp_rows: Vec<String> = DP_SIZES
        .iter()
        .map(|&n| {
            let ns = measure_dataplane(n);
            println!("n={n:>6}  baseline {ns:>12.0} ns/wave (dataplane)");
            format!("    {{ \"dp_n\": {n}, \"dp_ns_per_wave\": {ns:.0} }}")
        })
        .collect();
    let json = format!(
        "{{\n  \"mode\": \"baseline\",\n  \"results\": [\n{}\n  ],\n  \
         \"shard_results\": [\n{}\n  ],\n  \"churn_results\": [\n{}\n  ],\n  \
         \"dp_results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
        shard_rows.join(",\n"),
        churn_rows.join(",\n"),
        dp_rows.join(",\n")
    );
    let out = std::env::var("PACDS_OBS_BASELINE")
        .unwrap_or_else(|_| "BENCH_obs_baseline.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => {
            eprintln!("wrote {out}; now run with --features obs to compare");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_instrumented() -> ExitCode {
    let baseline_path = std::env::var("PACDS_OBS_BASELINE")
        .unwrap_or_else(|_| "BENCH_obs_baseline.json".into());
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "error: cannot read baseline {baseline_path}: {e}\n\
                 run this binary once WITHOUT --features obs first"
            );
            return ExitCode::FAILURE;
        }
    };
    let base_ns = extract_numbers(&text, "ns_per_interval");
    let base_n: Vec<f64> = extract_numbers(&text, "n");
    // "ns_per_interval" / "n" are prefixes of the shard keys only in the
    // other direction, so plain extraction stays exact; the shard rows use
    // distinct "shard_n" / "shard_ns_per_interval" keys.
    if base_ns.len() != SIZES.len()
        || base_n.iter().map(|&v| v as usize).ne(SIZES.iter().copied())
    {
        eprintln!("error: baseline {baseline_path} does not cover sizes {SIZES:?}");
        return ExitCode::FAILURE;
    }
    let shard_base_ns = extract_numbers(&text, "shard_ns_per_interval");
    let shard_base_n: Vec<f64> = extract_numbers(&text, "shard_n");
    if shard_base_ns.len() != SHARD_SIZES.len()
        || shard_base_n.iter().map(|&v| v as usize).ne(SHARD_SIZES.iter().copied())
    {
        eprintln!(
            "error: baseline {baseline_path} does not cover shard sizes {SHARD_SIZES:?}; \
             re-run the baseline binary (without --features obs)"
        );
        return ExitCode::FAILURE;
    }
    let churn_base_ns = extract_numbers(&text, "churn_ns_per_step");
    let churn_base_n: Vec<f64> = extract_numbers(&text, "churn_n");
    if churn_base_ns.len() != CHURN_SIZES.len()
        || churn_base_n.iter().map(|&v| v as usize).ne(CHURN_SIZES.iter().copied())
    {
        eprintln!(
            "error: baseline {baseline_path} does not cover churn sizes {CHURN_SIZES:?}; \
             re-run the baseline binary (without --features obs)"
        );
        return ExitCode::FAILURE;
    }

    let dp_base_ns = extract_numbers(&text, "dp_ns_per_wave");
    let dp_base_n: Vec<f64> = extract_numbers(&text, "dp_n");
    if dp_base_ns.len() != DP_SIZES.len()
        || dp_base_n.iter().map(|&v| v as usize).ne(DP_SIZES.iter().copied())
    {
        eprintln!(
            "error: baseline {baseline_path} does not cover dataplane sizes {DP_SIZES:?}; \
             re-run the baseline binary (without --features obs)"
        );
        return ExitCode::FAILURE;
    }

    let max_pct: f64 = std::env::var("PACDS_OBS_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    pacds_obs::reset();
    // A trace build is gated with sampling ON: the deployment-realistic
    // cost is "counters + every 64th request carrying spans", not a
    // dormant ring.
    if pacds_obs::trace_enabled() {
        pacds_obs::set_sampling(TRACE_SAMPLE);
    }
    let mut gate_failed = false;
    // Scheduler noise is one-sided (it only ever adds time), so a
    // minimum that trips the gate is re-measured and min-combined a
    // couple of times before the failure is believed.
    let mut gate = |sizes: &[usize],
                    base_ns: &[f64],
                    key: &str,
                    label: &str,
                    measure_fn: &dyn Fn(usize) -> f64|
     -> Vec<String> {
        let mut rows = Vec::new();
        for (&n, &base) in sizes.iter().zip(base_ns) {
            let gated = n >= 1000;
            let mut ns = measure_fn(n);
            for _ in 0..2 {
                if !(gated && 100.0 * (ns - base) / base > max_pct) {
                    break;
                }
                ns = ns.min(measure_fn(n));
            }
            let overhead = 100.0 * (ns - base) / base;
            if gated && overhead > max_pct {
                gate_failed = true;
            }
            println!(
                "n={n:>6}  baseline {base:>12.0}  instrumented {ns:>12.0}  \
                 overhead {overhead:>+6.2}%{label}{}",
                if gated { "  [gated]" } else { "" }
            );
            rows.push(format!(
                concat!(
                    "    {{\n",
                    "      \"{}\": {},\n",
                    "      \"baseline_ns_per_interval\": {:.0},\n",
                    "      \"instrumented_ns_per_interval\": {:.0},\n",
                    "      \"overhead_pct\": {:.2}\n",
                    "    }}"
                ),
                key, n, base, ns, overhead
            ));
        }
        rows
    };
    let rows = gate(&SIZES, &base_ns, "n", "", &measure);
    let shard_rows = gate(&SHARD_SIZES, &shard_base_ns, "shard_n", " (sharded)", &measure_shard);
    let churn_rows = gate(&CHURN_SIZES, &churn_base_ns, "churn_n", " (churn)", &measure_churn);
    let dp_rows = gate(&DP_SIZES, &dp_base_ns, "dp_n", " (dataplane)", &measure_dataplane);

    // Prove the instrumented run actually recorded something: a ≤ 3%
    // number for a build where the counters silently compiled out would
    // be meaningless.
    let snap = pacds_obs::Snapshot::capture();
    let computes = snap.counter("workspace.computes");
    if computes == 0 {
        eprintln!("error: instrumented build recorded no workspace.computes");
        return ExitCode::FAILURE;
    }
    let shard_computes = snap.counter("shard.computes");
    if shard_computes == 0 {
        eprintln!("error: instrumented build recorded no shard.computes");
        return ExitCode::FAILURE;
    }
    let churn_refreshes = snap.counter("churn.refreshes");
    if churn_refreshes == 0 {
        eprintln!("error: instrumented build recorded no churn.refreshes");
        return ExitCode::FAILURE;
    }
    let dp_forwarded = snap.counter("dp.forwarded");
    if dp_forwarded == 0 {
        eprintln!("error: instrumented build recorded no dp.forwarded");
        return ExitCode::FAILURE;
    }
    let trace_spans = snap.counter("trace.spans");
    if pacds_obs::trace_enabled() && trace_spans == 0 {
        eprintln!("error: trace build with sampling 1/{TRACE_SAMPLE} recorded no spans");
        return ExitCode::FAILURE;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"obs_overhead\",\n",
            "  \"description\": \"BENCH_workspace reuse hot path (mobility step + in-place ",
            "CSR rebuild + CdsWorkspace CDS + verification), the sharded-engine hot path ",
            "(mobility step + ShardedCds::compute_unit_disk), the incremental churn hot ",
            "path (ChurnEngine::step on a mobility event batch) and the dataplane ",
            "forwarding hot path (Dataplane::pump over cached routes), timed with pacds-obs ",
            "compiled out vs enabled; minimum of {} repetitions per size\",\n",
            "  \"unit\": \"ns/interval\",\n",
            "  \"max_overhead_pct_gate\": {},\n",
            "  \"gated_sizes\": \"n >= 1000\",\n",
            "  \"trace_enabled\": {},\n",
            "  \"trace_sample\": {},\n",
            "  \"instrumented_trace_spans\": {},\n",
            "  \"instrumented_workspace_computes\": {},\n",
            "  \"instrumented_shard_computes\": {},\n",
            "  \"instrumented_churn_refreshes\": {},\n",
            "  \"instrumented_dp_forwarded\": {},\n",
            "  \"results\": [\n{}\n  ],\n",
            "  \"shard_results\": [\n{}\n  ],\n",
            "  \"churn_results\": [\n{}\n  ],\n",
            "  \"dp_results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        REPS,
        max_pct,
        pacds_obs::trace_enabled(),
        if pacds_obs::trace_enabled() { TRACE_SAMPLE } else { 0 },
        trace_spans,
        computes,
        shard_computes,
        churn_refreshes,
        dp_forwarded,
        rows.join(",\n"),
        shard_rows.join(",\n"),
        churn_rows.join(",\n"),
        dp_rows.join(",\n")
    );
    let out = std::env::var("PACDS_BENCH_OUT").unwrap_or_else(|_| "BENCH_obs.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if gate_failed {
        eprintln!("error: instrumentation overhead exceeds {max_pct}% at n >= 1000");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    if pacds_obs::enabled() {
        run_instrumented()
    } else {
        run_baseline()
    }
}
