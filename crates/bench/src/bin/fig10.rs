//! Figure 10: average number of gateway hosts vs network size, for the
//! five selection policies (NR, ID, ND, EL1, EL2).
//!
//! Expected shape (paper): NR largest; ND and EL2 smallest; curves grow
//! with N and the gap widens as density rises.

use pacds_bench::{emit, sweep_from_env};
use pacds_sim::experiments::cds_size_experiment;

fn main() {
    let sweep = sweep_from_env();
    eprintln!(
        "fig10: sizes={:?} trials={} seed={:#x}",
        sweep.sizes, sweep.trials, sweep.seed
    );
    let series = cds_size_experiment(&sweep);
    emit(
        "fig10_cds_size",
        "Figure 10 — average number of gateway hosts",
        &series,
    );
}
