//! Horizontal-scaling bench of the `pacds-cluster` coordinator.
//!
//! For each backend count in `PACDS_CLUSTER_BACKENDS` (default `1,2`)
//! the binary spawns that many in-process `pacds-serve` backends and one
//! coordinator, then drives the closed-loop load generator *through* the
//! coordinator: `GenCompute` requests cycling over a wheel of distinct
//! seeds (distinct canonical digests — the keyspace actually spreads
//! across the ring) with `FLAG_NO_CACHE`, so every request costs a full
//! topology build + CDS compute on a backend. Cache-warm requests would
//! measure the result cache, not the horizontal capacity.
//!
//! After the sweep, a **kill drill** at the largest backend count: the
//! same load with one backend shut down mid-window. The drill gate is
//! the PR's headline contract — every request is still answered (zero
//! protocol/IO errors) and the failover is visible in the coordinator
//! counters (`failed_over` ≥ 1, `health_flips` ≥ 1).
//!
//! Throughput scaling 1 → 2 is asserted ≥ `PACDS_CLUSTER_MIN_SCALING`
//! (default 1.7) **only when the machine has cores to scale onto**
//! (`machine_threads` ≥ 4: two backends plus coordinator and loadgen
//! can't speed anything up when they time-slice one core — same
//! precedent as `bench_shard`). On smaller machines the gate shifts to
//! the portable counters: both backends routed a meaningful share, zero
//! errors, failover observed. `scaling_gate` in the JSON records which
//! gate applied.
//!
//! Writes `BENCH_cluster.json` (override: `PACDS_BENCH_OUT`).
//! Hand-written JSON: the bench crate deliberately takes no serde
//! dependency.

use pacds_cluster::{cluster, BackendSpec, ClusterConfig, ClusterHandle};
use pacds_core::{CdsConfig, Policy};
use pacds_serve::{serve, LoadgenConfig, Mode, ServerConfig, ServerHandle};
use std::process::ExitCode;
use std::time::Duration;

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn backend_counts() -> Vec<usize> {
    match std::env::var("PACDS_CLUSTER_BACKENDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("PACDS_CLUSTER_BACKENDS: integers"))
            .collect(),
        Err(_) => vec![1, 2],
    }
}

/// One backend, sized for fronting: the coordinator holds persistent
/// connections (pooled relays + the prober), and `pacds-serve` parks one
/// worker per open connection, so workers must exceed that appetite.
fn backend() -> ServerHandle {
    serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 8,
            queue: 0,
            cache_bytes: 64 << 20,
            shard: Default::default(),
            metrics_addr: None,
        },
    )
    .expect("bind backend")
}

fn coordinator(backends: &[&ServerHandle]) -> ClusterHandle {
    let specs: Vec<BackendSpec> = backends
        .iter()
        .enumerate()
        .map(|(i, b)| BackendSpec::new(format!("b{i}"), b.addr().to_string()))
        .collect();
    cluster(
        "127.0.0.1:0",
        &specs,
        ClusterConfig {
            workers: 4,
            probe_interval: Duration::from_millis(100),
            ..ClusterConfig::default()
        },
    )
    .expect("bind coordinator")
}

struct Point {
    backends: usize,
    report: pacds_serve::LoadReport,
    routed: Vec<u64>,
    counters: Vec<(String, u64)>,
}

fn counter(entries: &[(String, u64)], name: &str) -> u64 {
    entries
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn load_cfg(addr: String, duration: Duration, concurrency: usize) -> LoadgenConfig {
    LoadgenConfig {
        addr,
        concurrency,
        duration,
        mode: Mode::Closed,
        cds: CdsConfig::policy(Policy::Degree),
        n: env_or("PACDS_CLUSTER_N", 200),
        radius: 15.0,
        side: 100.0,
        seed: 1,
        gen_seeds: env_or("PACDS_CLUSTER_SEEDS", 64),
        no_cache: true,
        deadline_ms: 0,
        mutate_every: 0,
        query_every: 0,
    }
}

fn run_point(backends: usize, duration: Duration, concurrency: usize) -> Point {
    let hosted: Vec<ServerHandle> = (0..backends).map(|_| backend()).collect();
    let refs: Vec<&ServerHandle> = hosted.iter().collect();
    let mut coord = coordinator(&refs);
    let report = pacds_serve::loadgen::run(&load_cfg(
        coord.addr().to_string(),
        duration,
        concurrency,
    ))
    .expect("loadgen through coordinator");
    let state = coord.state();
    let routed: Vec<u64> = state
        .backends
        .iter()
        .map(|b| b.routed.load(std::sync::atomic::Ordering::Relaxed))
        .collect();
    let counters = state.stats.entries(&state.backends);
    coord.shutdown();
    Point {
        backends,
        report,
        routed,
        counters,
    }
}

/// The mid-window kill: load for `duration`, shut one backend down at
/// the halfway mark, and let the survivors absorb its keyspace.
fn run_kill_drill(backends: usize, duration: Duration, concurrency: usize) -> Point {
    let mut hosted: Vec<ServerHandle> = (0..backends).map(|_| backend()).collect();
    let refs: Vec<&ServerHandle> = hosted.iter().collect();
    let mut coord = coordinator(&refs);
    let mut victim = hosted.pop().expect("at least one backend");
    let killer = std::thread::spawn(move || {
        std::thread::sleep(duration / 2);
        victim.shutdown();
    });
    let report = pacds_serve::loadgen::run(&load_cfg(
        coord.addr().to_string(),
        duration,
        concurrency,
    ))
    .expect("loadgen through coordinator during the kill");
    killer.join().expect("killer thread");
    let state = coord.state();
    let routed: Vec<u64> = state
        .backends
        .iter()
        .map(|b| b.routed.load(std::sync::atomic::Ordering::Relaxed))
        .collect();
    let counters = state.stats.entries(&state.backends);
    coord.shutdown();
    Point {
        backends,
        report,
        routed,
        counters,
    }
}

fn join_u64(it: impl Iterator<Item = u64>) -> String {
    let items: Vec<String> = it.map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

fn point_json(p: &Point, label: &str) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"kind\": \"{}\", \"backends\": {}, \"requests\": {}, \"throughput_rps\": {:.1},\n",
            "      \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_us\": {:.1},\n",
            "      \"protocol_errors\": {}, \"io_errors\": {}, \"rejected\": {},\n",
            "      \"routed_per_backend\": {}, \"failed_over\": {}, \"health_flips\": {},\n",
            "      \"no_backend\": {}, \"backends_available_after\": {}\n",
            "    }}"
        ),
        label,
        p.backends,
        p.report.requests,
        p.report.throughput_rps,
        p.report.p50_us,
        p.report.p99_us,
        p.report.mean_us,
        p.report.protocol_errors,
        p.report.io_errors,
        p.report.rejected,
        join_u64(p.routed.iter().copied()),
        counter(&p.counters, "cluster.failed_over"),
        counter(&p.counters, "cluster.health_flips"),
        counter(&p.counters, "cluster.no_backend"),
        counter(&p.counters, "cluster.backends_available"),
    )
}

fn main() -> ExitCode {
    let duration = Duration::from_secs_f64(env_or("PACDS_CLUSTER_DURATION_S", 3.0));
    let concurrency: usize = env_or("PACDS_CLUSTER_CONCURRENCY", 4);
    let min_scaling: f64 = env_or("PACDS_CLUSTER_MIN_SCALING", 1.7);
    let machine_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Two backends + coordinator + loadgen need cores to show wall-clock
    // scaling; below this the counters are the gate.
    let wall_clock_trusted = machine_threads >= 4;

    let mut points = Vec::new();
    for backends in backend_counts() {
        let p = run_point(backends, duration, concurrency);
        println!(
            "backends={backends}  {} requests, {:.0} req/s, p50={:.1}µs p99={:.1}µs  routed={:?}",
            p.report.requests, p.report.throughput_rps, p.report.p50_us, p.report.p99_us, p.routed,
        );
        if p.report.protocol_errors + p.report.io_errors > 0 {
            eprintln!("error: backends={backends}: loadgen saw errors");
            return ExitCode::FAILURE;
        }
        if p.routed.contains(&0) {
            eprintln!("error: backends={backends}: a backend routed nothing");
            return ExitCode::FAILURE;
        }
        points.push(p);
    }

    // Ring balance on the widest point: no backend owns an outsized or
    // vanishing share of a 64-seed wheel (the spread() mix is what keeps
    // this true — see the ring tests for the distributional version).
    if let Some(widest) = points.iter().max_by_key(|p| p.backends) {
        if widest.backends > 1 {
            let total: u64 = widest.routed.iter().sum();
            for (i, &r) in widest.routed.iter().enumerate() {
                let share = r as f64 / total as f64;
                if !(0.15..=0.85).contains(&share) {
                    eprintln!(
                        "error: backend {i} owns {:.0}% of the keyspace (routed={:?})",
                        share * 100.0,
                        widest.routed
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let scaling_1_to_2 = {
        let one = points.iter().find(|p| p.backends == 1);
        let two = points.iter().find(|p| p.backends == 2);
        match (one, two) {
            (Some(a), Some(b)) => Some(b.report.throughput_rps / a.report.throughput_rps),
            _ => None,
        }
    };
    if let Some(s) = scaling_1_to_2 {
        println!(
            "scaling 1 -> 2 backends: {s:.2}x (machine_threads={machine_threads}, gate: {})",
            if wall_clock_trusted { "wall-clock" } else { "counters" },
        );
        if wall_clock_trusted && s < min_scaling {
            eprintln!("error: 1 -> 2 backend scaling {s:.2}x < required {min_scaling}x");
            return ExitCode::FAILURE;
        }
    }

    let max_backends = points.iter().map(|p| p.backends).max().unwrap_or(2).max(2);
    let drill = run_kill_drill(max_backends, duration, concurrency);
    println!(
        "kill drill: {} requests, {} failed over, {} health flips, {} protocol err, {} io err",
        drill.report.requests,
        counter(&drill.counters, "cluster.failed_over"),
        counter(&drill.counters, "cluster.health_flips"),
        drill.report.protocol_errors,
        drill.report.io_errors,
    );
    if drill.report.protocol_errors + drill.report.io_errors > 0 {
        eprintln!("error: kill drill saw request errors — failover lost answers");
        return ExitCode::FAILURE;
    }
    if counter(&drill.counters, "cluster.failed_over") == 0
        || counter(&drill.counters, "cluster.health_flips") == 0
    {
        eprintln!("error: kill drill did not register a failover in the counters");
        return ExitCode::FAILURE;
    }

    let out = std::env::var("PACDS_BENCH_OUT").unwrap_or_else(|_| "BENCH_cluster.json".into());
    let rows: Vec<String> = points
        .iter()
        .map(|p| point_json(p, "scaling"))
        .chain(std::iter::once(point_json(&drill, "kill_drill")))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"cluster_scaling\",\n",
            "  \"comment\": \"GenCompute wheel (no_cache) through the coordinator; ",
            "wall-clock scaling only gates when machine_threads >= 4, ",
            "counters (routed spread, zero errors, observed failover) gate everywhere\",\n",
            "  \"machine_threads\": {},\n",
            "  \"duration_s\": {:.1}, \"concurrency\": {}, \"n\": {}, \"gen_seeds\": {},\n",
            "  \"scaling_gate\": \"{}\",\n",
            "  \"min_scaling\": {}, \"scaling_1_to_2\": {},\n",
            "  \"points\": [\n{}\n  ]\n",
            "}}\n"
        ),
        machine_threads,
        duration.as_secs_f64(),
        concurrency,
        env_or("PACDS_CLUSTER_N", 200usize),
        env_or("PACDS_CLUSTER_SEEDS", 64usize),
        if wall_clock_trusted { "wall_clock" } else { "counters" },
        min_scaling,
        scaling_1_to_2.map_or("null".into(), |s| format!("{s:.2}")),
        rows.join(",\n"),
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
