//! Figure 11: average number of update intervals until the first host
//! death, under drain model `d = 2/|G'|`.

use pacds_bench::{emit, sweep_from_env};
use pacds_energy::DrainModel;
use pacds_sim::experiments::lifetime_experiment;

fn main() {
    let sweep = sweep_from_env();
    eprintln!(
        "fig11: sizes={:?} trials={} seed={:#x}",
        sweep.sizes, sweep.trials, sweep.seed
    );
    let series = lifetime_experiment(&sweep, DrainModel::ConstantTotal);
    emit(
        "fig11_lifetime",
        "Figure 11 — average network lifetime, d = 2/|G'|",
        &series,
    );
}
