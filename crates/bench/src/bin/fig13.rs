//! Figure 13: average number of update intervals until the first host
//! death, under drain model `d = N(N-1)/2/(10|G'|)`.

use pacds_bench::{emit, sweep_from_env};
use pacds_energy::DrainModel;
use pacds_sim::experiments::lifetime_experiment;

fn main() {
    let sweep = sweep_from_env();
    eprintln!(
        "fig13: sizes={:?} trials={} seed={:#x}",
        sweep.sizes, sweep.trials, sweep.seed
    );
    let series = lifetime_experiment(&sweep, DrainModel::QuadraticInN);
    emit(
        "fig13_lifetime",
        "Figure 13 — average network lifetime, d = N(N-1)/2/(10|G'|)",
        &series,
    );
}
