//! Extension: lifetime milestones past the first death (the paper's only
//! metric). Dead hosts drop out of the topology and the run continues —
//! reported: first death, 25% dead, 50% dead, and the first partition of
//! the surviving topology.
//!
//! Each trial's interval loop runs on the zero-allocation hot path: the
//! survivor topology is re-masked into a retained CSR and the CDS is
//! recomputed in one `CdsWorkspace` (see `pacds_sim::run_extended_lifetime`).

use pacds_bench::sweep_from_env;
use pacds_core::Policy;
use pacds_energy::DrainModel;
use pacds_sim::montecarlo::run_trials;
use pacds_sim::{run_extended_lifetime, SimConfig, Summary};

fn main() {
    let sweep = sweep_from_env();
    let n = *sweep.sizes.last().unwrap_or(&60);
    eprintln!("extended_lifetime: n={n} trials={}", sweep.trials);
    println!("# Lifetime milestones (model 2, n = {n})");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14}",
        "policy", "first death", "25% dead", "50% dead", "1st partition"
    );
    for policy in Policy::ALL {
        let cfg = SimConfig::paper(n, policy, DrainModel::LinearInN);
        let rows = run_trials(sweep.seed ^ n as u64, sweep.trials, |_, rng| {
            let o = run_extended_lifetime(cfg, rng);
            (
                f64::from(o.first_death),
                f64::from(o.quarter_dead),
                f64::from(o.half_dead),
                f64::from(o.first_partition),
            )
        });
        let col = |f: fn(&(f64, f64, f64, f64)) -> f64| {
            Summary::from_slice(&rows.iter().map(f).collect::<Vec<_>>()).mean
        };
        // A first_partition of 0 means "no partition observed before 50%
        // dead"; average only over trials that did partition.
        let partitions: Vec<f64> = rows.iter().map(|r| r.3).filter(|&p| p > 0.0).collect();
        let partition = if partitions.is_empty() {
            "never".to_string()
        } else {
            format!(
                "{:.1} ({}/{})",
                Summary::from_slice(&partitions).mean,
                partitions.len(),
                rows.len()
            )
        };
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>12.1} {:>14}",
            policy.label(),
            col(|r| r.0),
            col(|r| r.1),
            col(|r| r.2),
            partition,
        );
    }
    println!("\nrotation narrows the gap between first and later deaths: the");
    println!("EL policies spend the whole fleet's energy more evenly.");
}
