//! Packet forwarding over the CDS backbone (`pacds-dataplane`).
//!
//! For each size in `PACDS_DP_SIZES` (default `100000,1000000`) the binary
//! places a constant-density unit-disk instance, opens a [`ChurnNet`]
//! (churn control plane + retained CSR adjacency), registers
//! `PACDS_DP_FLOWS` (default `256`) routable unicast flows, and drives
//! `PACDS_DP_WAVES` (default `20`) waves of `PACDS_DP_PACKETS` (default
//! `32`) packets per flow through the vector-dispatch engine. It measures:
//!
//! * **hops/s** — aggregate per-hop forwarding operations per second over
//!   the warm waves, gated by `PACDS_DP_MIN_PPS` (default `1000000`),
//! * **path stretch** — routed hop count vs a true shortest-path BFS on
//!   `PACDS_DP_STRETCH_PAIRS` (default `32`) sampled flows,
//! * **broadcast reduction** — gateway-relayed vs blind flood
//!   transmissions from the same source, gated by
//!   `PACDS_DP_MIN_FLOOD_REDUCTION` (default `0.60`),
//! * **kill → reroute** — one gateway on an active route is killed; the
//!   stale wave must NACK (never deliver into the dead node), and the
//!   refresh → reinstall → retransmit → redelivery sequence is timed end
//!   to end.
//!
//! The `misroutes` counter — packets forwarded into a dead node — is
//! asserted **zero** at exit; this is the structural NACK guarantee, not
//! a statistical observation. Exits non-zero on any gate failure.
//!
//! Writes `BENCH_dataplane.json` (override: `PACDS_BENCH_OUT`).
//! Hand-written JSON: the bench crate deliberately takes no serde
//! dependency.

use pacds_core::{CdsConfig, Policy};
use pacds_dataplane::{ChurnNet, Dataplane};
use pacds_graph::{CsrGraph, NodeId};
use pacds_shard::ShardSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

// Denser than bench_churn's radius-25 regime (~28.3 vs ~19.6 expected
// neighbours): the paper's ≈70% broadcast-saving claim is made for dense
// networks, where the Degree-rule backbone covers a smaller host fraction.
const RADIUS: f64 = 30.0;

fn arena(n: usize) -> pacds_geom::Rect {
    pacds_geom::Rect::square((100.0 * (n as f64 / 100.0).sqrt()).max(1.0))
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn sizes() -> Vec<usize> {
    match std::env::var("PACDS_DP_SIZES") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("PACDS_DP_SIZES: integers"))
            .collect(),
        Err(_) => vec![100_000, 1_000_000],
    }
}

/// Whole-graph BFS hop distances from `src` (the shortest-path oracle the
/// dense-table `stretch.rs` uses, restated over the CSR adjacency so it
/// scales to n = 10⁶).
fn bfs_distances(g: &CsrGraph, src: NodeId, dist: &mut Vec<u32>, queue: &mut Vec<NodeId>) {
    dist.clear();
    dist.resize(g.n(), u32::MAX);
    queue.clear();
    dist[src as usize] = 0;
    queue.push(src);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = dv + 1;
                queue.push(u);
            }
        }
    }
}

fn main() -> ExitCode {
    // Degree rule: the smallest backbone of the paper's tie-break rules,
    // hence the strongest broadcast-reduction case (EnergyDegree trades
    // a few points of reduction for lifetime, which bench_churn covers).
    let cfg = CdsConfig::policy(Policy::Degree);
    let flows = env_usize("PACDS_DP_FLOWS", 256);
    let packets = env_usize("PACDS_DP_PACKETS", 32);
    let waves = env_usize("PACDS_DP_WAVES", 20);
    let stretch_pairs = env_usize("PACDS_DP_STRETCH_PAIRS", 32);
    let min_pps = env_f64("PACDS_DP_MIN_PPS", 1e6);
    let min_reduction = env_f64("PACDS_DP_MIN_FLOOD_REDUCTION", 0.60);
    let machine_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut rows = Vec::new();

    for n in sizes() {
        let bounds = arena(n);
        let mut rng = StdRng::seed_from_u64(42);
        let points = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
        let energy: Vec<u64> = (0..n).map(|i| (i as u64 * 7919) % 100 + 1).collect();

        let t = Instant::now();
        let mut net = ChurnNet::open(ShardSpec::all_cores(), bounds, RADIUS, &points, &energy, &cfg)
            .expect("benchmark config is shardable");
        let open_ns = t.elapsed().as_nanos() as f64;
        let gateways = net.gateway_count();

        let mut dp = Dataplane::new();
        dp.install_tables(net.gateway(), net.alive());

        // Routable flows only; endpoints are protected from the kill so
        // every flow stays deliverable for the whole run.
        let mut protected = vec![false; n];
        let mut flow_ids = Vec::with_capacity(flows);
        let mut endpoints = Vec::with_capacity(flows);
        let mut probe = Vec::new();
        while flow_ids.len() < flows {
            let s = rng.random_range(0..n as u32);
            let t = rng.random_range(0..n as u32);
            if s == t || dp.routes_mut().assemble(net.graph(), s, t, &mut probe).is_err() {
                continue; // self-flow, disconnected, or undominated pick: redraw
            }
            protected[s as usize] = true;
            protected[t as usize] = true;
            endpoints.push((s, t));
            flow_ids.push(dp.add_flow(s, t));
        }

        // Warm wave: resolve every flow's route, grow every retained
        // buffer to its high-water mark.
        for &f in &flow_ids {
            dp.inject(f, 1);
        }
        dp.pump(net.graph(), net.alive());
        dp.reset_packets();
        let warm = dp.stats();
        assert_eq!(warm.delivered, flows as u64, "warm wave must deliver fully");

        // Timed forwarding waves (routes cached; the steady state).
        let t = Instant::now();
        for _ in 0..waves {
            for &f in &flow_ids {
                dp.inject(f, packets);
            }
            black_box(dp.pump(net.graph(), net.alive()));
            dp.reset_packets();
        }
        let forward_ns = t.elapsed().as_nanos() as f64;
        let steady = dp.stats();
        let hops = steady.forwarded_hops - warm.forwarded_hops;
        let delivered = steady.delivered - warm.delivered;
        let hops_per_s = hops as f64 * 1e9 / forward_ns.max(1.0);
        let delivered_per_s = delivered as f64 * 1e9 / forward_ns.max(1.0);
        let mean_hops = hops as f64 / delivered.max(1) as f64;

        // Path stretch vs the shortest-path oracle on sampled flows.
        let mut dist = Vec::new();
        let mut queue = Vec::new();
        let mut extra_sum = 0u64;
        let mut ratio_sum = 0.0f64;
        let mut max_extra = 0u32;
        let sampled = stretch_pairs.min(endpoints.len());
        for &(s, t) in endpoints.iter().take(sampled) {
            bfs_distances(net.graph(), s, &mut dist, &mut queue);
            let shortest = dist[t as usize];
            assert_ne!(shortest, u32::MAX, "flow endpoints are connected");
            dp.routes_mut()
                .assemble(net.graph(), s, t, &mut probe)
                .expect("probed routable at registration");
            let routed = (probe.len() - 1) as u32;
            let extra = routed - shortest;
            extra_sum += u64::from(extra);
            ratio_sum += f64::from(routed) / f64::from(shortest.max(1));
            max_extra = max_extra.max(extra);
        }
        let mean_extra = extra_sum as f64 / sampled.max(1) as f64;
        let mean_ratio = ratio_sum / sampled.max(1) as f64;

        // Broadcast: blind vs gateway-relayed flood from one flow source.
        let src = endpoints[0].0;
        dp.inject_broadcast(src, true);
        dp.pump(net.graph(), net.alive());
        let blind = dp.last_flood().expect("flood ran");
        dp.inject_broadcast(src, false);
        dp.pump(net.graph(), net.alive());
        let gateway_flood = dp.last_flood().expect("flood ran");
        dp.reset_packets();
        assert_eq!(
            blind.reached, gateway_flood.reached,
            "gateway flood must keep full coverage"
        );
        let reduction = 1.0 - gateway_flood.transmissions as f64 / blind.transmissions.max(1) as f64;

        // Kill → reroute: take one interior hop of an active route (a
        // gateway by construction), kill it, and drive the NACK →
        // refresh → retransmit → redelivery sequence.
        let victim = endpoints
            .iter()
            .find_map(|&(s, t)| {
                dp.routes_mut()
                    .assemble(net.graph(), s, t, &mut probe)
                    .expect("probed routable at registration");
                probe
                    .get(1..probe.len() - 1)
                    .unwrap_or(&[])
                    .iter()
                    .copied()
                    .find(|&v| !protected[v as usize])
            })
            .expect("some flow has an unprotected interior hop");
        net.kill(victim).expect("victim is alive");
        let before_kill = dp.stats();
        for &f in &flow_ids {
            dp.inject(f, packets);
        }
        dp.pump(net.graph(), net.alive());
        let stale = dp.stats();
        let nacked = stale.nacked - before_kill.nacked;
        assert!(nacked > 0, "the kill must strand at least flow 0's route");
        let t = Instant::now();
        net.refresh();
        let refresh_ns = t.elapsed().as_nanos() as f64;
        dp.install_tables(net.gateway(), net.alive());
        let requeued = dp.requeue_nacked();
        dp.pump(net.graph(), net.alive());
        let reroute_ns = t.elapsed().as_nanos() as f64;
        let rerouted = dp.stats();
        assert_eq!(dp.nacked_pending(), 0, "every NACKed packet redelivered");
        assert_eq!(
            rerouted.delivered - before_kill.delivered,
            (flows * packets) as u64,
            "the post-kill wave must deliver fully after the reroute"
        );
        dp.reset_packets();

        // The structural guarantee this subsystem exists for.
        assert_eq!(rerouted.misroutes, 0, "packets were forwarded into a dead node");

        println!(
            "n={n:>8}  gateways={gateways:>7}  {hops_per_s:>12.0} hops/s  \
             {delivered_per_s:>9.0} pkts/s  {mean_hops:>6.1} hops/pkt  \
             stretch +{mean_extra:.2} ({mean_ratio:.3}x)  \
             flood -{:.1}%  reroute {:.1} ms ({requeued} retransmits)",
            100.0 * reduction,
            reroute_ns / 1e6,
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {}, \"gateways\": {}, \"flows\": {}, ",
                "\"packets_per_flow_per_wave\": {}, \"waves\": {},\n",
                "      \"open_ns\": {:.0}, \"forward_ns\": {:.0},\n",
                "      \"delivered\": {}, \"forwarded_hops\": {}, ",
                "\"mean_hops_per_packet\": {:.2},\n",
                "      \"hops_per_s\": {:.0}, \"delivered_per_s\": {:.0},\n",
                "      \"stretch_sampled_pairs\": {}, \"stretch_mean_extra_hops\": {:.3}, ",
                "\"stretch_mean_ratio\": {:.4}, \"stretch_max_extra_hops\": {},\n",
                "      \"blind_transmissions\": {}, \"gateway_transmissions\": {}, ",
                "\"flood_reached\": {}, \"flood_reduction\": {:.4},\n",
                "      \"kill_nacked\": {}, \"kill_retransmits\": {}, ",
                "\"refresh_ns\": {:.0}, \"reroute_ns\": {:.0}, \"misroutes\": {}\n",
                "    }}"
            ),
            n,
            gateways,
            flows,
            packets,
            waves,
            open_ns,
            forward_ns,
            delivered,
            hops,
            mean_hops,
            hops_per_s,
            delivered_per_s,
            sampled,
            mean_extra,
            mean_ratio,
            max_extra,
            blind.transmissions,
            gateway_flood.transmissions,
            blind.reached,
            reduction,
            nacked,
            requeued,
            refresh_ns,
            reroute_ns,
            rerouted.misroutes,
        ));

        if hops_per_s < min_pps {
            eprintln!(
                "error: n={n}: {hops_per_s:.0} hops/s is below the \
                 PACDS_DP_MIN_PPS={min_pps:.0} gate"
            );
            return ExitCode::FAILURE;
        }
        if reduction < min_reduction {
            eprintln!(
                "error: n={n}: flood reduction {reduction:.3} is below the \
                 PACDS_DP_MIN_FLOOD_REDUCTION={min_reduction} gate"
            );
            return ExitCode::FAILURE;
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"dataplane_forwarding\",\n",
            "  \"description\": \"pacds-dataplane vector-dispatch forwarding engine on ",
            "constant-density unit-disk instances (radius 30, ~28.3 expected neighbours), ",
            "Degree-rule backbone: {} unicast flows x {} packets x {} timed waves with ",
            "routes cached after a warm wave. Schema per result: hops_per_s counts ",
            "per-hop forwarding operations (the aggregate rate the >=1e6 gate applies ",
            "to); stretch_* compare routed hop counts to a shortest-path BFS oracle on ",
            "sampled flows; flood_reduction = 1 - gateway/blind transmissions from the ",
            "same source at full coverage; kill_* time the gateway-death NACK -> churn ",
            "refresh -> table reinstall -> retransmit -> redelivery sequence end to end ",
            "(reroute_ns includes refresh_ns); misroutes counts packets forwarded into a ",
            "dead node and is asserted zero — the structural liveness-check guarantee. ",
            "Wall times depend on machine_threads\",\n",
            "  \"unit\": \"hops/s\",\n",
            "  \"machine_threads\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        flows,
        packets,
        waves,
        machine_threads,
        rows.join(",\n")
    );
    let out = std::env::var("PACDS_BENCH_OUT").unwrap_or_else(|_| "BENCH_dataplane.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => {
            eprintln!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}
