//! Broadcast-storm reduction: transmissions needed for a network-wide
//! flood, blind vs gateway-only, per policy — the quantitative form of
//! the paper's "reduce the searching space to the dominating set".

use pacds_bench::sweep_from_env;
use pacds_core::Policy;
use pacds_energy::DrainModel;
use pacds_routing::flood_cost;
use pacds_sim::montecarlo::run_trials;
use pacds_sim::{NetworkState, SimConfig, Summary};

fn main() {
    let sweep = sweep_from_env();
    eprintln!("flood_savings: sizes={:?} trials={}", sweep.sizes, sweep.trials);
    println!("# Flood transmissions: blind vs gateway-only relays");
    print!("{:>6} {:>10}", "n", "blind");
    for p in [Policy::NoPruning, Policy::Id, Policy::Degree, Policy::EnergyDegree] {
        print!("{:>10}", p.label());
    }
    println!("{:>12}", "best saving");
    for &n in &sweep.sizes {
        let cfg_nr = SimConfig::paper(n, Policy::NoPruning, DrainModel::LinearInN);
        let rows = run_trials(sweep.seed ^ n as u64, sweep.trials, |_, rng| {
            let mut st = NetworkState::init(cfg_nr, rng);
            let g = st.graph().clone();
            let blind = flood_cost(&g, 0, None).transmissions as f64;
            let levels = st.fleet().levels();
            let mut per_policy = Vec::new();
            for policy in [Policy::NoPruning, Policy::Id, Policy::Degree, Policy::EnergyDegree] {
                let cds = pacds_core::compute_cds(
                    &pacds_core::CdsInput::with_energy(&g, &levels),
                    &pacds_core::CdsConfig::policy(policy),
                );
                per_policy.push(flood_cost(&g, 0, Some(&cds)).transmissions as f64);
            }
            let _ = st.compute_gateways();
            (blind, per_policy)
        });
        let blind = Summary::from_slice(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
        print!("{:>6} {:>10.1}", n, blind.mean);
        let mut best = f64::INFINITY;
        for i in 0..4 {
            let s = Summary::from_slice(&rows.iter().map(|r| r.1[i]).collect::<Vec<_>>());
            best = best.min(s.mean);
            print!("{:>10.1}", s.mean);
        }
        println!("{:>11.1}%", 100.0 * (1.0 - best / blind.mean));
    }
}
