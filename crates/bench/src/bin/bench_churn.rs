//! Incremental churn on the sharded CDS engine (`pacds-shard`'s
//! [`ChurnEngine`]).
//!
//! For each size in `PACDS_CHURN_SIZES` (default `10000,100000,1000000`)
//! the binary places a constant-density unit-disk instance, opens a
//! persistent [`ChurnEngine`], and drives `PACDS_CHURN_STEPS` (default
//! `25`) churn steps of `PACDS_CHURN_EVENTS` (default `8`) mixed events
//! each — mobility hops, battery drains, host deaths and arrivals — with
//! one incremental refresh per step. It measures:
//!
//! * **events/s** over the whole applied-and-refreshed stream,
//! * **re-solved tiles per step** against the total tile count — the
//!   headline locality claim: a churn step at `n = 10⁶` re-solves a
//!   handful of the ~500 tiles, not all of them,
//! * **gateway churn per event** (verdict flips / events),
//! * the **from-scratch baseline** (`ShardedCds::compute_unit_disk` on
//!   the same instance) a non-incremental server would pay per step.
//!
//! After the stream, the final incremental state is asserted
//! **bit-identical** to a from-scratch masked recompute over the live
//! topology — the speedup column is only meaningful if both sides answer
//! the same question. Exits non-zero on divergence.
//!
//! Writes `BENCH_churn.json` (override: `PACDS_BENCH_OUT`).
//! Hand-written JSON: the bench crate deliberately takes no serde
//! dependency.

use pacds_core::{CdsConfig, Policy};
use pacds_geom::{Point2, Rect};
use pacds_shard::{ChurnEngine, ChurnEvent, ShardSpec, ShardedCds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

const RADIUS: f64 = 25.0;

fn arena(n: usize) -> Rect {
    Rect::square((100.0 * (n as f64 / 100.0).sqrt()).max(1.0))
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn sizes() -> Vec<usize> {
    match std::env::var("PACDS_CHURN_SIZES") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("PACDS_CHURN_SIZES: integers"))
            .collect(),
        Err(_) => vec![10_000, 100_000, 1_000_000],
    }
}

/// One step's worth of mixed events: mostly small mobility hops, some
/// drains, rare deaths and arrivals. Live-only events never target a
/// host killed earlier in the same batch, so every batch applies fully.
fn step_events(rng: &mut StdRng, engine: &ChurnEngine, bounds: Rect, count: usize) -> Vec<ChurnEvent> {
    let mut events = Vec::with_capacity(count);
    let mut killed = vec![false; engine.n()];
    while events.len() < count {
        let node = rng.random_range(0..engine.n() as u32);
        let alive = engine.alive()[node as usize] && !killed[node as usize];
        match rng.random_range(0..100u32) {
            0..=69 if alive => {
                let p = engine.positions()[node as usize];
                let to = Point2::new(
                    (p.x + rng.random_range(-RADIUS..RADIUS)).clamp(bounds.x0, bounds.x1),
                    (p.y + rng.random_range(-RADIUS..RADIUS)).clamp(bounds.y0, bounds.y1),
                );
                events.push(ChurnEvent::MoveNode { node, to });
            }
            70..=89 if alive => {
                let remaining = engine.energy()[node as usize].saturating_sub(1);
                events.push(ChurnEvent::DrainBattery { node, remaining });
            }
            90..=95 if alive => {
                killed[node as usize] = true;
                events.push(ChurnEvent::KillNode { node });
            }
            96..=99 => events.push(ChurnEvent::AddNode {
                pos: Point2::new(
                    rng.random_range(bounds.x0..bounds.x1),
                    rng.random_range(bounds.y0..bounds.y1),
                ),
                energy: rng.random_range(1..=10u64),
            }),
            _ => {} // dead host drawn for a live-only event: redraw
        }
    }
    events
}

fn main() -> ExitCode {
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let steps = env_usize("PACDS_CHURN_STEPS", 25);
    let per_step = env_usize("PACDS_CHURN_EVENTS", 8);
    let machine_threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut rows = Vec::new();

    for n in sizes() {
        let bounds = arena(n);
        let mut rng = StdRng::seed_from_u64(42);
        let points = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
        let energy: Vec<u64> = (0..n).map(|i| (i as u64 * 7919) % 100 + 1).collect();

        // From-scratch baseline: what a non-incremental server pays for
        // every churn step, on the identical instance and spec.
        let spec = ShardSpec::all_cores();
        let mut scratch = ShardedCds::new(spec).expect("default halo");
        let t = Instant::now();
        scratch
            .compute_unit_disk(bounds, RADIUS, &points, Some(&energy), &cfg)
            .expect("benchmark config is shardable");
        let scratch_ns = t.elapsed().as_nanos() as f64;
        black_box(scratch.gateway_count());

        let t = Instant::now();
        let mut engine = ChurnEngine::open(spec, bounds, RADIUS, &points, &energy, &cfg)
            .expect("benchmark config is shardable");
        let open_ns = t.elapsed().as_nanos() as f64;
        let tiles = engine.tiles();
        let initial = engine.totals();

        let mut max_step_resolved = 0usize;
        let mut step_ns_sum = 0.0f64;
        let mut max_step_ns = 0.0f64;
        for _ in 0..steps {
            let events = step_events(&mut rng, &engine, bounds, per_step);
            let t = Instant::now();
            let stats = engine.step(&events).expect("batches are pre-validated");
            let ns = t.elapsed().as_nanos() as f64;
            step_ns_sum += ns;
            max_step_ns = max_step_ns.max(ns);
            max_step_resolved = max_step_resolved.max(stats.resolved_tiles);
            black_box(engine.gateway_count());
        }
        let totals = engine.totals();
        let events = totals.events - initial.events;
        let resolved = totals.resolved_tiles - initial.resolved_tiles;
        let flips = totals.gateway_flips - initial.gateway_flips;
        let mean_step_ns = step_ns_sum / steps.max(1) as f64;
        let events_per_s = events as f64 * 1e9 / step_ns_sum.max(1.0);

        // Identity gate: the incremental end state vs a fresh masked solve
        // over the live topology.
        let off = engine.off_mask();
        let mut oracle = ShardedCds::new(spec).expect("default halo");
        oracle
            .compute_unit_disk_masked(
                bounds,
                RADIUS,
                engine.positions(),
                Some(&off),
                Some(engine.energy()),
                &cfg,
            )
            .expect("benchmark config is shardable");
        if engine.gateways() != oracle.gateways()
            || engine.marked() != oracle.marked()
            || engine.after_rule1() != oracle.after_rule1()
        {
            eprintln!("error: n={n}: incremental state diverged from the masked recompute");
            return ExitCode::FAILURE;
        }

        println!(
            "n={n:>8}  tiles={tiles:>5}  scratch {scratch_ns:>12.0} ns/solve  \
             step {mean_step_ns:>10.0} ns mean (max {max_step_ns:.0})  \
             {:.1} tiles/step re-solved (max {max_step_resolved})  \
             {events_per_s:>8.0} events/s  {:.3} flips/event  speedup {:.1}x",
            resolved as f64 / steps.max(1) as f64,
            flips as f64 / events.max(1) as f64,
            scratch_ns / mean_step_ns.max(1.0),
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {}, \"tiles\": {}, \"steps\": {}, \"events\": {},\n",
                "      \"open_ns\": {:.0}, \"scratch_solve_ns\": {:.0},\n",
                "      \"mean_step_ns\": {:.0}, \"max_step_ns\": {:.0},\n",
                "      \"resolved_tiles\": {}, \"resolved_tiles_per_step\": {:.2}, ",
                "\"max_step_resolved_tiles\": {},\n",
                "      \"gateway_flips\": {}, \"gateway_flips_per_event\": {:.4},\n",
                "      \"events_per_s\": {:.0}, \"speedup_vs_scratch\": {:.2}\n",
                "    }}"
            ),
            n,
            tiles,
            steps,
            events,
            open_ns,
            scratch_ns,
            mean_step_ns,
            max_step_ns,
            resolved,
            resolved as f64 / steps.max(1) as f64,
            max_step_resolved,
            flips,
            flips as f64 / events.max(1) as f64,
            events_per_s,
            scratch_ns / mean_step_ns.max(1.0),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"churn_incremental\",\n",
            "  \"description\": \"pacds-shard ChurnEngine on constant-density unit-disk ",
            "instances (radius 25, ~19.6 expected neighbours), EnergyDegree policy: ",
            "{} steps of {} mixed events (70% mobility hop, 20% battery drain, 6% death, ",
            "4% arrival) with one incremental refresh per step, final state asserted ",
            "bit-identical to a from-scratch masked recompute. Schema per result: ",
            "open_ns is the engine open (includes the initial full solve); ",
            "scratch_solve_ns is a fresh ShardedCds full solve on the same instance — the ",
            "per-step cost of not being incremental; mean/max_step_ns time apply+refresh ",
            "of one whole step; resolved_tiles_per_step vs tiles is the locality headline ",
            "(a handful re-solved, not all); gateway_flips_per_event is the churn a ",
            "routing layer absorbs; speedup_vs_scratch = scratch_solve_ns / mean_step_ns. ",
            "Wall times depend on machine_threads\",\n",
            "  \"unit\": \"ns/step\",\n",
            "  \"machine_threads\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        steps,
        per_step,
        machine_threads,
        rows.join(",\n")
    );
    let out = std::env::var("PACDS_BENCH_OUT").unwrap_or_else(|_| "BENCH_churn.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => {
            eprintln!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}
