//! Locality experiment: fraction of hosts whose gateway status changes per
//! update interval under the paper's mobility model (c = 0.5). Low churn is
//! the premise behind the marking process's cheap localized maintenance.

use pacds_bench::{emit, sweep_from_env};
use pacds_sim::experiments::locality_experiment;

fn main() {
    let sweep = sweep_from_env();
    eprintln!(
        "locality: sizes={:?} trials={} seed={:#x}",
        sweep.sizes, sweep.trials, sweep.seed
    );
    let series = locality_experiment(&sweep);
    emit(
        "locality_churn",
        "Gateway-status churn per interval (fraction of hosts)",
        &series,
    );
}
