//! Records the workspace-reuse speedup as a committed JSON artifact.
//!
//! Times one Monte-Carlo interval (mobility step + topology rebuild + CDS
//! recomputation + verification) under the v0 allocate-per-call pipeline
//! ([`pacds_bench::seed_baseline`]: fresh Graph/bitmap/key/masks, full-word
//! coverage scans) and under the retained [`CdsWorkspace`] + in-place CSR
//! hot path, at n in {100, 1000, 10000}, and writes `BENCH_workspace.json`
//! (override the path with `PACDS_BENCH_OUT`). Run with `--release`; the
//! acceptance target is a >= 2x speedup at n >= 1000.
//!
//! The JSON is written by hand — the bench crate deliberately takes no
//! serde dependency.

use pacds_bench::seed_baseline::compute_cds_seed;
use pacds_core::{verify_cds, CdsConfig, CdsWorkspace, Policy};
use pacds_geom::{Point2, Rect};
use pacds_graph::{gen, CsrGraph};
use pacds_mobility::{MobilityModel, PaperWalk};
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Instant;

const RADIUS: f64 = 25.0;

fn arena(n: usize) -> Rect {
    Rect::square((100.0 * (n as f64 / 100.0).sqrt()).max(1.0))
}

struct Interval {
    bounds: Rect,
    positions: Vec<Point2>,
    walk: PaperWalk,
    energy: Vec<u64>,
    rng: rand::rngs::StdRng,
}

impl Interval {
    fn new(n: usize, seed: u64) -> Self {
        let bounds = arena(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let positions = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
        let energy = (0..n).map(|i| (i as u64 * 7919) % 100).collect();
        Self { bounds, positions, walk: PaperWalk::paper(), energy, rng }
    }

    fn step(&mut self) {
        self.walk.step(&mut self.rng, self.bounds, &mut self.positions);
    }
}

/// Mean wall-clock nanoseconds per interval over `iters` runs of `f`,
/// after `warmup` unmeasured runs.
fn time_ns(warmup: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let iters_for = |n: usize| (200_000 / n).clamp(8, 400);
    let mut rows = Vec::new();

    for n in [100usize, 1000, 10000] {
        let iters = iters_for(n);

        let mut iv = Interval::new(n, 42);
        let alloc_ns = time_ns(5, iters, || {
            iv.step();
            let g = gen::unit_disk(iv.bounds, RADIUS, &iv.positions);
            let cds = compute_cds_seed(&g, Some(&iv.energy), &cfg);
            let _ = black_box(verify_cds(&g, &cds));
            black_box(cds);
        });

        let mut iv = Interval::new(n, 42);
        let mut csr = CsrGraph::new();
        let mut scratch = gen::UnitDiskScratch::new();
        let mut ws = CdsWorkspace::with_capacity(n);
        let reuse_ns = time_ns(5, iters, || {
            iv.step();
            gen::unit_disk_csr(iv.bounds, RADIUS, &iv.positions, None, &mut csr, &mut scratch);
            ws.compute(&csr, Some(&iv.energy), &cfg);
            let _ = black_box(ws.verify_last(&csr));
            black_box(ws.gateway_count());
        });

        let speedup = alloc_ns / reuse_ns;
        println!(
            "n={n:>6}  alloc {:>12.0} ns/interval  reuse {:>12.0} ns/interval  speedup {speedup:.2}x",
            alloc_ns, reuse_ns
        );
        rows.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"iters\": {},\n",
                "      \"alloc_ns_per_interval\": {:.0},\n",
                "      \"reuse_ns_per_interval\": {:.0},\n",
                "      \"speedup\": {:.3}\n",
                "    }}"
            ),
            n, iters, alloc_ns, reuse_ns, speedup
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"workspace\",\n",
            "  \"description\": \"one Monte-Carlo interval: mobility step + topology rebuild ",
            "+ CDS (EnergyDegree, single-pass) + verification; alloc = v0 pipeline ",
            "(fresh Graph + full-word-scan passes), reuse = in-place CSR + CdsWorkspace\",\n",
            "  \"unit\": \"ns/interval\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        rows.join(",\n")
    );
    let out = std::env::var("PACDS_BENCH_OUT").unwrap_or_else(|_| "BENCH_workspace.json".into());
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => eprintln!("warning: cannot write {out}: {e}"),
    }
}
