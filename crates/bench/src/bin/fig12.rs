//! Figure 12: average number of update intervals until the first host
//! death, under drain model `d = N/|G'|`.

use pacds_bench::{emit, sweep_from_env};
use pacds_energy::DrainModel;
use pacds_sim::experiments::lifetime_experiment;

fn main() {
    let sweep = sweep_from_env();
    eprintln!(
        "fig12: sizes={:?} trials={} seed={:#x}",
        sweep.sizes, sweep.trials, sweep.seed
    );
    let series = lifetime_experiment(&sweep, DrainModel::LinearInN);
    emit(
        "fig12_lifetime",
        "Figure 12 — average network lifetime, d = N/|G'|",
        &series,
    );
}
