//! Ablation: coarseness of the discrete energy levels the EL rules compare.
//!
//! The paper keeps energy on "multiple discrete levels" without giving the
//! granularity; its Figure 8 labels hosts with single-digit levels, which a
//! 0–100 battery reaches with quantum 10 (the workspace default). This
//! sweep shows why it matters: fine levels (quantum 1) eliminate EL ties,
//! so EL2's degree tie-break never fires and EL2's gateway sets drift away
//! from ND's — breaking Figure 10's "ND and EL2 are the best".

use pacds_bench::sweep_from_env;
use pacds_sim::experiments::quantum_ablation;

fn main() {
    let sweep = sweep_from_env();
    let n = *sweep.sizes.last().unwrap_or(&80);
    eprintln!("ablation_quantum: n={n} trials={}", sweep.trials);
    println!("# Energy-level quantum ablation (model 2, n = {n})");
    println!(
        "{:>8} {:>8} {:>14} {:>12}",
        "quantum", "policy", "mean gateways", "lifetime"
    );
    for (q, label, gw, life) in
        quantum_ablation(n, sweep.trials, sweep.seed, &[1.0, 5.0, 10.0, 25.0, 50.0])
    {
        println!("{:>8} {:>8} {:>14.2} {:>12.2}", q, label, gw, life);
    }
}
