//! Ablation: safe (min-of-three) vs paper-literal (case-analysis) Rule 2,
//! for set size and lifetime. This is the calibration experiment behind the
//! workspace's choice of default semantics — see EXPERIMENTS.md.

use pacds_bench::sweep_from_env;
use pacds_core::{CdsConfig, Policy};
use pacds_energy::DrainModel;
use pacds_sim::montecarlo::run_trials;
use pacds_sim::{SimConfig, Simulation, Summary};

fn main() {
    let sweep = sweep_from_env();
    eprintln!(
        "ablation_semantics: sizes={:?} trials={}",
        sweep.sizes, sweep.trials
    );
    println!("# Rule 2 semantics ablation (model 2 drain)");
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>12}",
        "n", "policy", "semantics", "lifetime", "|G'|"
    );
    for &n in &sweep.sizes {
        for policy in [Policy::Id, Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
            for (name, cds) in [
                ("safe", CdsConfig::policy(policy)),
                ("literal", CdsConfig::paper(policy)),
                ("seq", CdsConfig::sequential(policy)),
            ] {
                let mut cfg = SimConfig::paper(n, policy, DrainModel::LinearInN);
                cfg.cds = cds;
                let out = run_trials(sweep.seed ^ n as u64, sweep.trials, |_, rng| {
                    let sim = Simulation::new(cfg, rng).without_verification();
                    let o = sim.run_lifetime(rng);
                    (f64::from(o.intervals), o.mean_gateways)
                });
                let lives: Vec<f64> = out.iter().map(|o| o.0).collect();
                let gws: Vec<f64> = out.iter().map(|o| o.1).collect();
                println!(
                    "{:>6} {:>8} {:>10} {:>12.2} {:>12.2}",
                    n,
                    policy.label(),
                    name,
                    Summary::from_slice(&lives).mean,
                    Summary::from_slice(&gws).mean,
                );
            }
        }
    }
}
