//! Ablation: the two readings of the paper's drain Model 1.
//!
//! Taken literally, `d = 2/|G'|` makes gateways drain *slower* than the
//! `d' = 1` non-gateways whenever `|G'| > 2`, so every policy's lifetime
//! pins at 100 intervals and the policy choice cannot matter. The
//! alternative reading — a fixed per-gateway drain `d = 2` — restores the
//! gateway/non-gateway asymmetry. This binary runs both so EXPERIMENTS.md
//! can report them side by side.

use pacds_bench::{emit, sweep_from_env};
use pacds_energy::DrainModel;
use pacds_sim::experiments::lifetime_experiment;

fn main() {
    let sweep = sweep_from_env();
    eprintln!(
        "ablation_model1: sizes={:?} trials={} seed={:#x}",
        sweep.sizes, sweep.trials, sweep.seed
    );
    let literal = lifetime_experiment(&sweep, DrainModel::ConstantTotal);
    emit(
        "ablation_model1_literal",
        "Model 1 literal — d = 2/|G'| (lifetime)",
        &literal,
    );
    let fixed = lifetime_experiment(&sweep, DrainModel::ConstantPerGateway { value: 2.0 });
    emit(
        "ablation_model1_fixed",
        "Model 1 alternative — d = 2 per gateway (lifetime)",
        &fixed,
    );
}
