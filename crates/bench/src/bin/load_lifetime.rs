//! Extension experiment: network lifetime under *measured* bypass traffic.
//!
//! Instead of the paper's analytic drain models, every interval routes a
//! batch of random flows through the gateway overlay and charges each host
//! for the packets it actually forwarded. This tests the paper's thesis —
//! energy-aware gateway rotation extends lifetime — without assuming any
//! analytic form for `d`.

use pacds_bench::sweep_from_env;
use pacds_energy::DrainModel;
use pacds_sim::montecarlo::run_trials;
use pacds_sim::{load_aware_lifetime, LoadConfig, SimConfig, Summary};

fn main() {
    let sweep = sweep_from_env();
    let load = LoadConfig::default();
    eprintln!(
        "load_lifetime: sizes={:?} trials={} flows/interval={} cost/forward={}",
        sweep.sizes, sweep.trials, load.flows_per_interval, load.per_forward_cost
    );
    println!("# Lifetime under measured forwarding load (extension)");
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "n", "policy", "lifetime", "ci95", "|G'|", "hops/flow"
    );
    for &n in &sweep.sizes {
        for &policy in &sweep.policies {
            let mut cfg = SimConfig::paper(n, policy, DrainModel::LinearInN);
            cfg.max_intervals = 50_000;
            let out = run_trials(sweep.seed ^ n as u64, sweep.trials, |_, rng| {
                let o = load_aware_lifetime(cfg, load, rng);
                (f64::from(o.intervals), o.mean_gateways, o.mean_hops)
            });
            let lives: Vec<f64> = out.iter().map(|o| o.0).collect();
            let gws: Vec<f64> = out.iter().map(|o| o.1).collect();
            let hops: Vec<f64> = out.iter().map(|o| o.2).collect();
            let life = Summary::from_slice(&lives);
            println!(
                "{:>6} {:>8} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
                n,
                policy.label(),
                life.mean,
                life.ci95,
                Summary::from_slice(&gws).mean,
                Summary::from_slice(&hops).mean,
            );
        }
    }
}
