//! The tentpole benchmark: one Monte-Carlo interval (mobility step +
//! topology rebuild + CDS recomputation) with the allocating per-call
//! pipeline versus the retained [`CdsWorkspace`] + in-place CSR rebuild.
//!
//! `alloc_per_interval` is what the simulator did before the workspace
//! refactor: build a fresh adjacency-list `Graph` and run the frozen v0
//! pipeline ([`pacds_bench::seed_baseline`]), allocating every
//! intermediate mask, key table and bitmap. `reuse` is the current hot
//! path: `gen::unit_disk_csr` writes edges straight into retained CSR
//! arrays and the workspace reuses every buffer. Both sides verify the
//! resulting CDS, matching one full simulator interval.
//! `BENCH_workspace.json` (emitted by the `bench_workspace` binary)
//! records the same comparison as a committed artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pacds_bench::seed_baseline::compute_cds_seed;
use pacds_core::{verify_cds, CdsConfig, CdsWorkspace, Policy};
use pacds_geom::{Point2, Rect};
use pacds_graph::{gen, CsrGraph};
use pacds_mobility::{MobilityModel, PaperWalk};
use rand::SeedableRng;
use std::hint::black_box;

const RADIUS: f64 = 25.0;

/// Paper-density arena: scaled with sqrt(n) so average degree matches the
/// paper's n=100 in a 100x100 arena.
fn arena(n: usize) -> Rect {
    Rect::square((100.0 * (n as f64 / 100.0).sqrt()).max(1.0))
}

struct Interval {
    bounds: Rect,
    positions: Vec<Point2>,
    walk: PaperWalk,
    energy: Vec<u64>,
    rng: rand::rngs::StdRng,
}

impl Interval {
    fn new(n: usize, seed: u64) -> Self {
        let bounds = arena(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let positions = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
        let energy = (0..n).map(|i| (i as u64 * 7919) % 100).collect();
        Self { bounds, positions, walk: PaperWalk::paper(), energy, rng }
    }

    fn step(&mut self) {
        self.walk.step(&mut self.rng, self.bounds, &mut self.positions);
    }
}

fn bench_workspace(c: &mut Criterion) {
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let mut group = c.benchmark_group("workspace");
    group.sample_size(10);
    for n in [100usize, 1000, 10000] {
        group.bench_with_input(
            BenchmarkId::new("alloc_per_interval", n),
            &n,
            |b, &n| {
                let mut iv = Interval::new(n, 42);
                b.iter(|| {
                    iv.step();
                    let g = gen::unit_disk(iv.bounds, RADIUS, &iv.positions);
                    let cds = compute_cds_seed(&g, Some(&iv.energy), &cfg);
                    let _ = black_box(verify_cds(&g, &cds));
                    black_box(cds)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("reuse", n), &n, |b, &n| {
            let mut iv = Interval::new(n, 42);
            let mut csr = CsrGraph::new();
            let mut scratch = gen::UnitDiskScratch::new();
            let mut ws = CdsWorkspace::with_capacity(n);
            b.iter(|| {
                iv.step();
                gen::unit_disk_csr(
                    iv.bounds,
                    RADIUS,
                    &iv.positions,
                    None,
                    &mut csr,
                    &mut scratch,
                );
                ws.compute(&csr, Some(&iv.energy), &cfg);
                let _ = black_box(ws.verify_last(&csr));
                black_box(ws.gateway_count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workspace);
criterion_main!(benches);
