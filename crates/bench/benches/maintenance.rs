//! Full recomputation vs localized incremental maintenance of the gateway
//! set across a mobility trace — the quantitative form of the paper's
//! locality argument.
//!
//! Honest result (2-core reference machine): at the paper's density
//! (average degree ≈ 20) a 3-hop ball around even a *single* moved host
//! already covers hundreds of vertices, so the incremental path recomputes
//! nearly everything plus pays diffing overhead and never beats the plain
//! sweep. The locality win the paper argues for is real but lives at the
//! *protocol* level — only hosts near a change must re-broadcast
//! (`pacds-distributed::stats`) — not in centralized CPU time. The
//! incremental maintainer's value is therefore its per-host `last_recomputed`
//! accounting and its provable equality with the full computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pacds_core::{compute_cds, CdsConfig, CdsInput, IncrementalCds, Policy};
use pacds_geom::Rect;
use pacds_graph::{gen, Graph};
use pacds_mobility::{MobilityModel, PaperWalk};
use rand::SeedableRng;
use std::hint::black_box;

/// Pre-generates a trace of `steps` topologies under the paper's walk with
/// the given stay probability (`c = 0.5` is the paper's heavy churn;
/// `c = 0.98` models a quasi-static deployment where locality pays).
fn trace(n: usize, steps: usize, seed: u64, stay: f64) -> Vec<Graph> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let side = 100.0 * (n as f64 / 100.0).sqrt();
    let bounds = Rect::square(side);
    let mut pos = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
    let mut walk = PaperWalk::with_stay_probability(stay);
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        out.push(gen::unit_disk(bounds, 25.0, &pos));
        walk.step(&mut rng, bounds, &mut pos);
    }
    out
}

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance");
    group.sample_size(20);
    for (n, stay, label) in [
        (400usize, 0.5, "churn-paper"),
        (400, 0.98, "churn-low"),
        (1000, 0.98, "churn-low"),
    ] {
        let graphs = trace(n, 20, 9, stay);
        let energy: Vec<u64> = (0..n as u64).map(|i| (i * 13) % 10).collect();
        let cfg = CdsConfig::policy(Policy::EnergyDegree);
        let id = format!("{label}/{n}");

        group.bench_with_input(BenchmarkId::new("full", &id), &graphs, |b, graphs| {
            b.iter(|| {
                let mut acc = 0usize;
                for g in graphs {
                    let cds = compute_cds(&CdsInput::with_energy(g, &energy), &cfg);
                    acc += cds.iter().filter(|&&x| x).count();
                }
                black_box(acc)
            })
        });

        group.bench_with_input(BenchmarkId::new("incremental", &id), &graphs, |b, graphs| {
            b.iter(|| {
                let mut inc = IncrementalCds::new(graphs[0].clone(), energy.clone(), cfg);
                let mut acc = inc.gateways().iter().filter(|&&x| x).count();
                for g in &graphs[1..] {
                    let cds = inc.update(g.clone(), energy.clone());
                    acc += cds.iter().filter(|&&x| x).count();
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
