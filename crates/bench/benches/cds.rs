//! Micro-benchmarks of the CDS pipeline: marking, rule passes, and the
//! end-to-end computation per policy, on paper-scale and larger unit-disk
//! graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pacds_core::{
    compute_cds, marking, rule1_pass, rule2_pass, CdsConfig, CdsInput, Policy, PriorityKey,
    Rule2Semantics,
};
use pacds_graph::{gen, Graph, NeighborBitmap};
use rand::SeedableRng;
use std::hint::black_box;

/// A connected unit-disk graph of `n` hosts at paper density (the arena is
/// scaled with sqrt(n) to keep average degree comparable to n=100 at
/// 100x100 / r=25).
fn udg(n: usize, seed: u64) -> (Graph, Vec<u64>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let side = 100.0 * (n as f64 / 100.0).sqrt();
    let bounds = pacds_geom::Rect::square(side.max(1.0));
    let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
    let g = gen::unit_disk(bounds, 25.0, &pts);
    let energy = (0..n).map(|i| (i as u64 * 7919) % 100).collect();
    (g, energy)
}

fn bench_marking(c: &mut Criterion) {
    let mut group = c.benchmark_group("marking");
    for n in [50usize, 100, 500, 2000] {
        let (g, _) = udg(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| black_box(marking(g)))
        });
    }
    group.finish();
}

fn bench_rule_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_passes");
    let (g, energy) = udg(100, 43);
    let bm = NeighborBitmap::build(&g);
    let marked = marking(&g);
    for policy in [Policy::Id, Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
        let key = PriorityKey::build(policy, &g, Some(&energy));
        group.bench_function(format!("rule1/{}", policy.label()), |b| {
            b.iter(|| black_box(rule1_pass(&g, &bm, &marked, &key, None)))
        });
        let after1 = rule1_pass(&g, &bm, &marked, &key, None);
        group.bench_function(format!("rule2_safe/{}", policy.label()), |b| {
            b.iter(|| {
                black_box(rule2_pass(
                    &g,
                    &bm,
                    &after1,
                    &key,
                    Rule2Semantics::MinOfThree,
                    None,
                ))
            })
        });
        group.bench_function(format!("rule2_paper/{}", policy.label()), |b| {
            b.iter(|| {
                black_box(rule2_pass(
                    &g,
                    &bm,
                    &after1,
                    &key,
                    Rule2Semantics::CaseAnalysis,
                    None,
                ))
            })
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_cds");
    for n in [100usize, 500] {
        let (g, energy) = udg(n, 44);
        for policy in Policy::ALL {
            let cfg = CdsConfig::paper(policy);
            group.bench_function(format!("{}/{}", policy.label(), n), |b| {
                b.iter(|| {
                    black_box(compute_cds(
                        &CdsInput::with_energy(&g, &energy),
                        &cfg,
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    let mut rng = rand::rngs::StdRng::seed_from_u64(45);
    let g = gen::connected_gnp(&mut rng, 100, 0.08, 20);
    group.bench_function("greedy_mcds/100", |b| {
        b.iter(|| black_box(pacds_baselines::greedy_mcds(&g)))
    });
    group.bench_function("greedy_ds/100", |b| {
        b.iter(|| black_box(pacds_baselines::greedy_dominating_set(&g)))
    });
    group.bench_function("lowest_id_clusters/100", |b| {
        b.iter(|| black_box(pacds_baselines::lowest_id_clusters(&g)))
    });
    group.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(15);
    for n in [1000usize, 5000] {
        let (g, energy) = udg(n, 46);
        let cfg = CdsConfig::policy(Policy::EnergyDegree);
        group.bench_function(format!("sequential/{n}"), |b| {
            b.iter(|| {
                black_box(compute_cds(
                    &CdsInput::with_energy(&g, &energy),
                    &cfg,
                ))
            })
        });
        group.bench_function(format!("rayon/{n}"), |b| {
            b.iter(|| black_box(pacds_core::compute_cds_par(&g, Some(&energy), &cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_marking,
    bench_rule_passes,
    bench_end_to_end,
    bench_baselines,
    bench_parallel_speedup
);
criterion_main!(benches);
