//! Micro-benchmarks of dominating-set-based routing: table construction and
//! the three-step forwarding procedure.

use criterion::{criterion_group, criterion_main, Criterion};
use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy};
use pacds_graph::{algo, gen, Graph, NodeId};
use pacds_routing::{route, RoutingState};
use rand::SeedableRng;
use std::hint::black_box;

fn connected_udg(n: usize, seed: u64) -> Graph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let side = 100.0 * (n as f64 / 100.0).sqrt();
    let bounds = pacds_geom::Rect::square(side);
    loop {
        let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
        let g = gen::unit_disk(bounds, 25.0, &pts);
        if algo::is_connected(&g) {
            return g;
        }
    }
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    for n in [100usize, 300] {
        let g = connected_udg(n, 11);
        let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Degree));
        group.bench_function(format!("build_tables/{n}"), |b| {
            b.iter(|| black_box(RoutingState::build(&g, &cds)))
        });
        let state = RoutingState::build(&g, &cds);
        group.bench_function(format!("route_all_pairs/{n}"), |b| {
            b.iter(|| {
                let mut hops = 0usize;
                for s in (0..n as NodeId).step_by(7) {
                    for t in (0..n as NodeId).step_by(11) {
                        if let Ok(p) = route(&g, &state, s, t) {
                            hops += p.len();
                        }
                    }
                }
                black_box(hops)
            })
        });
        group.bench_function(format!("stretch_summary/{n}"), |b| {
            b.iter(|| black_box(pacds_routing::stretch_summary(&g, &state)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
