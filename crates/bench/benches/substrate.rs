//! Micro-benchmarks of the substrates: unit-disk construction (grid vs
//! naive), neighbourhood bitmaps, and BFS floods.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pacds_geom::{placement, Rect, SpatialGrid};
use pacds_graph::{algo, gen, NeighborBitmap};
use rand::SeedableRng;
use std::hint::black_box;

fn points(n: usize, side: f64, seed: u64) -> Vec<pacds_geom::Point2> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    placement::uniform_points(&mut rng, Rect::square(side), n)
}

fn bench_unit_disk(c: &mut Criterion) {
    let mut group = c.benchmark_group("unit_disk");
    for n in [100usize, 1000, 5000] {
        // Scale the arena to keep density constant.
        let side = 100.0 * (n as f64 / 100.0).sqrt();
        let pts = points(n, side, 7);
        let bounds = Rect::square(side);
        group.bench_with_input(BenchmarkId::new("grid", n), &pts, |b, pts| {
            b.iter(|| black_box(gen::unit_disk(bounds, 25.0, pts)))
        });
        if n <= 1000 {
            group.bench_with_input(BenchmarkId::new("naive", n), &pts, |b, pts| {
                b.iter(|| black_box(gen::unit_disk_naive(25.0, pts)))
            });
        }
    }
    group.finish();
}

fn bench_spatial_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_grid");
    let pts = points(2000, 450.0, 8);
    let bounds = Rect::square(450.0);
    group.bench_function("build/2000", |b| {
        b.iter(|| black_box(SpatialGrid::build(bounds, 25.0, &pts)))
    });
    let grid = SpatialGrid::build(bounds, 25.0, &pts);
    group.bench_function("query_all/2000", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for (i, &p) in pts.iter().enumerate() {
                grid.for_each_within(p, 25.0, i, |_| acc += 1);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_graph_algos(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_algos");
    let side = 100.0 * (2000f64 / 100.0).sqrt();
    let pts = points(2000, side, 9);
    let g = gen::unit_disk(Rect::square(side), 25.0, &pts);
    group.bench_function("bitmap_build/2000", |b| {
        b.iter(|| black_box(NeighborBitmap::build(&g)))
    });
    group.bench_function("bfs/2000", |b| {
        b.iter(|| black_box(algo::bfs_distances(&g, 0)))
    });
    group.bench_function("components/2000", |b| {
        b.iter(|| black_box(algo::connected_components(&g)))
    });
    group.finish();
}

criterion_group!(benches, bench_unit_disk, bench_spatial_grid, bench_graph_algos);
criterion_main!(benches);
