//! Benchmarks of the simulation loop itself: the cost of one full lifetime
//! run per drain model, and the distributed protocol engines.

use criterion::{criterion_group, criterion_main, Criterion};
use pacds_core::{CdsConfig, Policy};
use pacds_energy::DrainModel;
use pacds_sim::{SimConfig, Simulation};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_lifetime_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifetime_run");
    group.sample_size(10);
    for model in [DrainModel::LinearInN, DrainModel::QuadraticInN] {
        for policy in [Policy::Id, Policy::Energy] {
            let cfg = SimConfig::paper(50, policy, model);
            group.bench_function(
                format!("{}/{}", policy.label(), model.label()),
                |b| {
                    b.iter(|| {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
                        let sim = Simulation::new(cfg, &mut rng).without_verification();
                        black_box(sim.run_lifetime(&mut rng))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed");
    group.sample_size(20);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let g = pacds_graph::gen::connected_gnp(&mut rng, 80, 0.08, 20);
    let energy: Vec<u64> = (0..g.n()).map(|i| (i as u64 * 31) % 100).collect();
    let cfg = CdsConfig::paper(Policy::EnergyDegree);
    group.bench_function("sequential/80", |b| {
        b.iter(|| {
            black_box(pacds_distributed::run_distributed_sequential(
                &g,
                Some(&energy),
                &cfg,
            ))
        })
    });
    group.bench_function("threaded/80", |b| {
        b.iter(|| black_box(pacds_distributed::run_distributed(&g, Some(&energy), &cfg)))
    });
    group.finish();
}

criterion_group!(benches, bench_lifetime_runs, bench_distributed);
criterion_main!(benches);
