//! ASCII rendering of the arena, for terminal demos and quick debugging.
//!
//! Gateways render as `#`, plain hosts as `o`, off hosts as `.`; multiple
//! hosts in one character cell escalate to the strongest glyph.

use pacds_geom::{Point2, Rect};

/// Renders hosts into a `cols x rows` character grid.
///
/// `gateways[v]` marks gateway hosts; `off[v]` (optional) marks
/// switched-off hosts.
pub fn render_ascii(
    bounds: Rect,
    positions: &[Point2],
    gateways: &[bool],
    off: Option<&[bool]>,
    cols: usize,
    rows: usize,
) -> String {
    assert!(cols >= 2 && rows >= 2, "grid too small to render");
    assert_eq!(positions.len(), gateways.len());
    let mut grid = vec![vec![' '; cols]; rows];
    for (v, p) in positions.iter().enumerate() {
        let cx = (((p.x - bounds.x0) / bounds.width()) * (cols as f64 - 1.0)).round() as usize;
        let cy = (((p.y - bounds.y0) / bounds.height()) * (rows as f64 - 1.0)).round() as usize;
        let cx = cx.min(cols - 1);
        // Flip y so north is up.
        let cy = rows - 1 - cy.min(rows - 1);
        let glyph = if off.is_some_and(|o| o[v]) {
            '.'
        } else if gateways[v] {
            '#'
        } else {
            'o'
        };
        let cell = &mut grid[cy][cx];
        *cell = strongest(*cell, glyph);
    }
    let mut out = String::with_capacity((cols + 3) * (rows + 2));
    out.push('+');
    out.extend(std::iter::repeat_n('-', cols));
    out.push_str("+\n");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push_str("|\n");
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', cols));
    out.push_str("+\n");
    out
}

/// Glyph precedence: gateway > host > off > empty.
fn strongest(a: char, b: char) -> char {
    let rank = |c: char| match c {
        '#' => 3,
        'o' => 2,
        '.' => 1,
        _ => 0,
    };
    if rank(a) >= rank(b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_map_to_grid_corners() {
        let bounds = Rect::square(100.0);
        let pts = vec![
            Point2::new(0.0, 0.0),    // south-west -> bottom-left
            Point2::new(100.0, 100.0), // north-east -> top-right
        ];
        let s = render_ascii(bounds, &pts, &[false, true], None, 10, 5);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 7); // 5 rows + 2 border lines
        assert_eq!(&lines[1][10..11], "#"); // top-right interior
        assert_eq!(&lines[5][1..2], "o"); // bottom-left interior
    }

    #[test]
    fn gateway_glyph_wins_in_shared_cell() {
        let bounds = Rect::square(10.0);
        let pts = vec![Point2::new(5.0, 5.0), Point2::new(5.0, 5.0)];
        let s = render_ascii(bounds, &pts, &[false, true], None, 5, 5);
        assert!(s.contains('#'));
        assert!(!s.contains('o'));
    }

    #[test]
    fn off_hosts_render_dimmed() {
        let bounds = Rect::square(10.0);
        let pts = vec![Point2::new(2.0, 2.0)];
        let s = render_ascii(bounds, &pts, &[false], Some(&[true]), 8, 4);
        assert!(s.contains('.'));
    }

    #[test]
    #[should_panic]
    fn tiny_grid_rejected() {
        render_ascii(Rect::square(1.0), &[], &[], None, 1, 1);
    }
}
