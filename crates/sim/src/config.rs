//! Simulation configuration.

use pacds_core::{CdsConfig, Policy};
use pacds_energy::{DrainModel, EnergyConfig};
use pacds_geom::Rect;
use pacds_mobility::PaperWalk;
use serde::{Deserialize, Serialize};

/// What to do when random placement yields a disconnected topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ConnectivityMode {
    /// Re-sample initial placements until the unit-disk graph is connected
    /// (up to a retry cap), then accept whatever mobility produces later.
    /// This is the conventional reading of the paper's "an undirected graph
    /// is randomly generated".
    #[default]
    ResampleInitial,
    /// Accept any topology. The marking process and rules are local and
    /// remain well-defined per component.
    AcceptAny,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of hosts (the paper sweeps 3..=100).
    pub n: usize,
    /// The arena (the paper: 100 x 100).
    pub bounds: Rect,
    /// Transmission radius (the paper: 25).
    pub radius: f64,
    /// CDS policy and rule semantics.
    pub cds: CdsConfig,
    /// Energy model.
    pub energy: EnergyConfig,
    /// Mobility model parameters.
    pub walk: PaperWalk,
    /// Connectivity handling for the initial placement.
    pub connectivity: ConnectivityMode,
    /// Retry cap for [`ConnectivityMode::ResampleInitial`].
    pub placement_retries: usize,
    /// Hard cap on simulated intervals (guards degenerate configurations
    /// where no host ever dies).
    pub max_intervals: u32,
    /// Maintain the gateway set incrementally (localized 3-ball updates)
    /// instead of recomputing from scratch each interval. Produces
    /// identical results for simultaneous-application configs.
    pub incremental: bool,
    /// Per-interval probability that a host switches itself off (the
    /// paper's "switching on/off" form of mobility). Off hosts leave the
    /// topology for the interval and pay no energy.
    pub off_probability: f64,
    /// Maintain the gateway set through the sharded churn engine
    /// (`pacds_shard::ChurnEngine`): mobility, battery drain and deaths
    /// are fed as mutation events and only the dirty tiles are re-solved
    /// each interval. Produces identical gateway sets to the default
    /// from-scratch path. Requires a shardable configuration
    /// (`pacds_shard::check_shardable`), `off_probability == 0`, and is
    /// mutually exclusive with `incremental`.
    pub churn: bool,
}

impl SimConfig {
    /// The paper's evaluation setting for `n` hosts under `policy` and
    /// `model`.
    ///
    /// Uses the *safe* (min-of-three) Rule 2 semantics: EXPERIMENTS.md
    /// shows this is the variant whose behaviour matches the paper's own
    /// reported results ("EL1 ... does not generate the smallest set" yet
    /// wins on lifetime), whereas the literal case-analysis text
    /// over-prunes and inverts the lifetime ranking. Set
    /// `cds.rule2 = Rule2Semantics::CaseAnalysis` to run the literal rules.
    pub fn paper(n: usize, policy: Policy, model: DrainModel) -> Self {
        Self {
            n,
            bounds: Rect::paper_arena(),
            radius: 25.0,
            cds: CdsConfig::policy(policy),
            energy: EnergyConfig::paper(model),
            walk: PaperWalk::paper(),
            connectivity: ConnectivityMode::ResampleInitial,
            placement_retries: 200,
            max_intervals: 100_000,
            incremental: false,
            off_probability: 0.0,
            churn: false,
        }
    }

    /// Basic sanity checks; called by the simulation entry points.
    pub fn validate(&self) {
        assert!(self.n >= 1, "need at least one host");
        assert!(self.radius > 0.0, "radius must be positive");
        assert!(self.energy.initial > 0.0, "hosts must start alive");
        assert!(self.max_intervals > 0);
        assert!(
            (0.0..=1.0).contains(&self.off_probability),
            "off_probability out of range"
        );
        if self.churn {
            assert!(
                self.off_probability == 0.0,
                "churn mode has no event for on/off flapping"
            );
            assert!(
                !self.incremental,
                "churn and incremental maintenance are mutually exclusive"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section4() {
        let cfg = SimConfig::paper(50, Policy::Energy, DrainModel::LinearInN);
        assert_eq!(cfg.n, 50);
        assert_eq!(cfg.bounds, Rect::paper_arena());
        assert_eq!(cfg.radius, 25.0);
        assert_eq!(cfg.energy.initial, 100.0);
        assert_eq!(cfg.energy.non_gateway_drain, 1.0);
        assert_eq!(cfg.walk.stay_probability, 0.5);
        assert_eq!(cfg.walk.max_step, 6);
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn churn_with_off_flapping_rejected() {
        let mut cfg = SimConfig::paper(10, Policy::Energy, DrainModel::LinearInN);
        cfg.churn = true;
        cfg.off_probability = 0.1;
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn churn_with_incremental_rejected() {
        let mut cfg = SimConfig::paper(10, Policy::Energy, DrainModel::LinearInN);
        cfg.churn = true;
        cfg.incremental = true;
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn zero_hosts_rejected() {
        let mut cfg = SimConfig::paper(1, Policy::Id, DrainModel::ConstantTotal);
        cfg.n = 0;
        cfg.validate();
    }

    #[test]
    fn config_serialises() {
        let cfg = SimConfig::paper(10, Policy::Degree, DrainModel::QuadraticInN);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
