//! Declarative experiment scenarios.
//!
//! A [`Scenario`] bundles a full simulation configuration, an experiment
//! kind, a seed and a trial count into one serialisable document, so a
//! result can be reproduced from a single JSON file
//! (`pacds run --scenario exp.json`).

use crate::config::SimConfig;
use crate::load::{load_aware_lifetime, LoadConfig};
use crate::montecarlo::run_trials;
use crate::simulation::{run_extended_lifetime, Simulation};
use crate::stats::Summary;
use pacds_core::Policy;
use pacds_energy::DrainModel;
use serde::{Deserialize, Serialize};

/// Which measurement the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExperimentKind {
    /// Update intervals until the first host death (Figures 11–13).
    Lifetime,
    /// Mean gateway count over a dynamic run (Figure 10).
    CdsSize,
    /// Milestones past the first death (extension).
    Extended,
    /// Measured-forwarding-load lifetime (extension).
    Load(LoadConfig),
}

/// A fully-specified, reproducible experiment.
///
/// ```
/// let mut sc = pacds_sim::Scenario::template();
/// sc.trials = 2;
/// sc.sim.n = 10;
/// let result = sc.run();
/// assert_eq!(result.trials, 2);
/// assert!(result.primary.mean >= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name, echoed in the result.
    pub name: String,
    /// Master seed for the Monte-Carlo trials.
    pub seed: u64,
    /// Number of independent trials.
    pub trials: usize,
    /// The simulation configuration.
    pub sim: SimConfig,
    /// What to measure.
    pub experiment: ExperimentKind,
}

/// Aggregated scenario result (serialises to JSON).
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioResult {
    /// Echo of the scenario name.
    pub name: String,
    /// The primary metric's summary (lifetime intervals, or gateway count).
    pub primary: Summary,
    /// Metric label for the primary summary.
    pub metric: String,
    /// Trials executed.
    pub trials: usize,
}

impl Scenario {
    /// A ready-to-edit template at the paper's parameters.
    pub fn template() -> Self {
        Self {
            name: "paper-fig12-el1-n50".into(),
            seed: 0xC0FFEE,
            trials: 30,
            sim: SimConfig::paper(50, Policy::Energy, DrainModel::LinearInN),
            experiment: ExperimentKind::Lifetime,
        }
    }

    /// Runs the scenario and aggregates the primary metric.
    pub fn run(&self) -> ScenarioResult {
        assert!(self.trials >= 1, "a scenario needs at least one trial");
        self.sim.validate();
        let (metric, values): (&str, Vec<f64>) = match self.experiment {
            ExperimentKind::Lifetime => (
                "intervals_to_first_death",
                run_trials(self.seed, self.trials, |_, rng| {
                    let sim = Simulation::new(self.sim, rng).without_verification();
                    f64::from(sim.run_lifetime(rng).intervals)
                }),
            ),
            ExperimentKind::CdsSize => (
                "mean_gateways",
                run_trials(self.seed, self.trials, |_, rng| {
                    let sim = Simulation::new(self.sim, rng).without_verification();
                    sim.run_lifetime(rng).mean_gateways
                }),
            ),
            ExperimentKind::Extended => (
                "intervals_to_half_dead",
                run_trials(self.seed, self.trials, |_, rng| {
                    f64::from(run_extended_lifetime(self.sim, rng).half_dead)
                }),
            ),
            ExperimentKind::Load(load) => (
                "intervals_to_first_death_measured_load",
                run_trials(self.seed, self.trials, |_, rng| {
                    f64::from(load_aware_lifetime(self.sim, load, rng).intervals)
                }),
            ),
        };
        ScenarioResult {
            name: self.name.clone(),
            primary: Summary::from_slice(&values),
            metric: metric.to_string(),
            trials: self.trials,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_round_trips_through_json() {
        let sc = Scenario::template();
        let json = serde_json::to_string_pretty(&sc).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(sc, back);
    }

    #[test]
    fn scenario_runs_are_reproducible() {
        let mut sc = Scenario::template();
        sc.sim = SimConfig::paper(15, Policy::Id, DrainModel::LinearInN);
        sc.trials = 3;
        let a = sc.run();
        let b = sc.run();
        assert_eq!(a.primary.mean, b.primary.mean);
        assert_eq!(a.metric, "intervals_to_first_death");
        assert_eq!(a.trials, 3);
    }

    #[test]
    fn every_experiment_kind_runs() {
        let mut sc = Scenario::template();
        sc.sim = SimConfig::paper(12, Policy::Energy, DrainModel::LinearInN);
        sc.sim.max_intervals = 5_000;
        sc.trials = 2;
        for kind in [
            ExperimentKind::Lifetime,
            ExperimentKind::CdsSize,
            ExperimentKind::Extended,
            ExperimentKind::Load(LoadConfig {
                flows_per_interval: 5,
                per_forward_cost: 0.5,
                idle_drain: 0.5,
            }),
        ] {
            sc.experiment = kind;
            let r = sc.run();
            assert!(r.primary.mean >= 0.0, "{kind:?}");
        }
    }

    #[test]
    #[should_panic]
    fn zero_trials_rejected() {
        let mut sc = Scenario::template();
        sc.trials = 0;
        sc.run();
    }
}
