//! Plain-text emitters for experiment results.

use crate::experiments::Series;
use std::fmt::Write as _;

/// Renders series as CSV: `n,<label1>,<label1>_ci95,<label2>,...`.
pub fn series_to_csv(series: &[Series]) -> String {
    let mut out = String::from("n");
    for s in series {
        let _ = write!(out, ",{},{}_ci95", s.label, s.label);
    }
    out.push('\n');
    if series.is_empty() {
        return out;
    }
    let rows = series[0].points.len();
    for s in series {
        assert_eq!(s.points.len(), rows, "ragged series");
    }
    for r in 0..rows {
        let n = series[0].points[r].0;
        let _ = write!(out, "{n}");
        for s in series {
            assert_eq!(s.points[r].0, n, "misaligned sweep sizes");
            let _ = write!(out, ",{:.4},{:.4}", s.points[r].1.mean, s.points[r].1.ci95);
        }
        out.push('\n');
    }
    out
}

/// Renders series as a fixed-width table for terminal output, one row per
/// network size, one column per policy.
pub fn series_to_table(title: &str, series: &[Series]) -> String {
    let mut out = format!("# {title}\n");
    let _ = write!(out, "{:>6}", "n");
    for s in series {
        let _ = write!(out, "{:>12}", s.label);
    }
    out.push('\n');
    if series.is_empty() {
        return out;
    }
    for r in 0..series[0].points.len() {
        let _ = write!(out, "{:>6}", series[0].points[r].0);
        for s in series {
            let _ = write!(out, "{:>12.2}", s.points[r].1.mean);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    fn fake_series() -> Vec<Series> {
        let summary = |m: f64| Summary::from_slice(&[m, m]);
        vec![
            Series {
                label: "NR".into(),
                points: vec![(10, summary(8.0)), (20, summary(15.0))],
            },
            Series {
                label: "ID".into(),
                points: vec![(10, summary(5.0)), (20, summary(9.0))],
            },
        ]
    }

    #[test]
    fn csv_layout() {
        let csv = series_to_csv(&fake_series());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("n,NR,NR_ci95,ID,ID_ci95"));
        assert_eq!(lines.next(), Some("10,8.0000,0.0000,5.0000,0.0000"));
        assert_eq!(lines.next(), Some("20,15.0000,0.0000,9.0000,0.0000"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn table_contains_title_and_values() {
        let t = series_to_table("Figure 10", &fake_series());
        assert!(t.contains("# Figure 10"));
        assert!(t.contains("NR"));
        assert!(t.contains("15.00"));
    }

    #[test]
    fn empty_series() {
        assert_eq!(series_to_csv(&[]), "n\n");
    }

    #[test]
    #[should_panic]
    fn ragged_series_rejected() {
        let mut s = fake_series();
        s[1].points.pop();
        series_to_csv(&s);
    }
}
