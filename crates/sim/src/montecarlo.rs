//! Parallel Monte-Carlo trial execution.
//!
//! Trials are embarrassingly parallel: each gets its own ChaCha8 RNG
//! seeded from `(master_seed, trial_index)`, so results are identical
//! whatever the thread count — rayon only changes wall-clock time.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Runs `trials` independent evaluations of `f` in parallel and collects
/// the results in trial order.
///
/// `f` receives the trial index and a deterministic per-trial RNG.
pub fn run_trials<T, F>(master_seed: u64, trials: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut ChaCha8Rng) -> T + Sync,
{
    (0..trials)
        .into_par_iter()
        .map(|i| {
            let mut rng = trial_rng(master_seed, i);
            f(i, &mut rng)
        })
        .collect()
}

/// The deterministic RNG of trial `i` under `master_seed`.
pub fn trial_rng(master_seed: u64, i: usize) -> ChaCha8Rng {
    // SplitMix64-style mixing keeps nearby (seed, index) pairs uncorrelated.
    let mut z = master_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ChaCha8Rng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_are_in_trial_order_and_deterministic() {
        let a = run_trials(7, 32, |i, rng| (i, rng.random_range(0..1000u32)));
        let b = run_trials(7, 32, |i, rng| (i, rng.random_range(0..1000u32)));
        assert_eq!(a, b);
        for (i, (idx, _)) in a.iter().enumerate() {
            assert_eq!(i, *idx);
        }
    }

    #[test]
    fn different_master_seeds_decorrelate() {
        let a = run_trials(1, 16, |_, rng| rng.random_range(0..u64::MAX));
        let b = run_trials(2, 16, |_, rng| rng.random_range(0..u64::MAX));
        assert_ne!(a, b);
    }

    #[test]
    fn different_trials_get_different_streams() {
        let vals = run_trials(9, 64, |_, rng| rng.random_range(0..u64::MAX));
        let uniq: std::collections::HashSet<_> = vals.iter().collect();
        assert_eq!(uniq.len(), vals.len());
    }

    #[test]
    fn zero_trials_is_fine() {
        let out: Vec<u32> = run_trials(0, 0, |_, _| 1);
        assert!(out.is_empty());
    }
}
