//! The paper's two simulation studies, packaged as reusable experiments.
//!
//! * [`cds_size_experiment`] — Figure 10: average gateway count vs N for
//!   each policy.
//! * [`lifetime_experiment`] — Figures 11–13: average lifetime (update
//!   intervals until the first death) vs N for each policy under a drain
//!   model.

use crate::config::SimConfig;
use crate::montecarlo::run_trials;
use crate::network::NetworkState;
use crate::simulation::Simulation;
use crate::stats::Summary;
use pacds_core::Policy;
use pacds_energy::DrainModel;
use serde::Serialize;

/// One curve of a figure: a policy's measurements across network sizes.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label ("NR", "ID", "ND", "EL1", "EL2").
    pub label: String,
    /// `(N, summary)` per swept network size.
    pub points: Vec<(usize, Summary)>,
}

/// Shared sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Network sizes to sweep (the paper: 3..=100).
    pub sizes: Vec<usize>,
    /// Independent trials per (policy, size) point.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Policies to compare (defaults to the paper's five).
    pub policies: Vec<Policy>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            sizes: (1..=10).map(|k| k * 10).collect(),
            trials: 20,
            seed: 0xC0FFEE,
            policies: Policy::ALL.to_vec(),
        }
    }
}

/// Figure 10: average number of gateway hosts per policy and size.
///
/// Follows the paper's procedure: the gateway count is recorded at *every
/// update interval of a dynamic run* (step 2 of the simulation loop), so
/// the energy-aware policies are measured across the energy spread that
/// develops over time — on a fresh network with uniform batteries EL1/EL2
/// would degenerate to ID/ND. Each trial contributes its per-interval
/// average.
pub fn cds_size_experiment(sweep: &SweepConfig) -> Vec<Series> {
    sweep
        .policies
        .iter()
        .map(|&policy| Series {
            label: policy.label().to_string(),
            points: sweep
                .sizes
                .iter()
                .map(|&n| {
                    let cfg = SimConfig::paper(n, policy, DrainModel::LinearInN);
                    let counts = run_trials(
                        sweep.seed ^ (n as u64) << 8 ^ policy_tag(policy),
                        sweep.trials,
                        |_, rng| {
                            let sim = Simulation::new(cfg, rng).without_verification();
                            sim.run_lifetime(rng).mean_gateways
                        },
                    );
                    (n, Summary::from_slice(&counts))
                })
                .collect(),
        })
        .collect()
}

/// Figures 11–13: average lifetime per policy and size under `model`.
pub fn lifetime_experiment(sweep: &SweepConfig, model: DrainModel) -> Vec<Series> {
    sweep
        .policies
        .iter()
        .map(|&policy| Series {
            label: policy.label().to_string(),
            points: sweep
                .sizes
                .iter()
                .map(|&n| {
                    let cfg = SimConfig::paper(n, policy, model);
                    let lives = run_trials(
                        sweep.seed ^ (n as u64) << 8 ^ policy_tag(policy),
                        sweep.trials,
                        |_, rng| {
                            let sim = Simulation::new(cfg, rng).without_verification();
                            f64::from(sim.run_lifetime(rng).intervals)
                        },
                    );
                    (n, Summary::from_slice(&lives))
                })
                .collect(),
        })
        .collect()
}

/// Measures how often the paper-literal Rule 2 semantics breaks domination
/// or connectivity (the soundness-gap experiment documented in DESIGN.md).
/// Returns `(intervals_checked, violating_intervals)` per policy.
pub fn violation_rate_experiment(
    sweep: &SweepConfig,
    model: DrainModel,
) -> Vec<(Policy, u64, u64)> {
    sweep
        .policies
        .iter()
        .filter(|p| p.prunes())
        .map(|&policy| {
            let mut total = 0u64;
            let mut bad = 0u64;
            for &n in &sweep.sizes {
                let mut cfg = SimConfig::paper(n, policy, model);
                // The violation question only exists for the paper-literal
                // case-analysis semantics; the safe default never violates.
                cfg.cds = pacds_core::CdsConfig::paper(policy);
                let outcomes = run_trials(
                    sweep.seed ^ (n as u64) << 8 ^ policy_tag(policy),
                    sweep.trials,
                    |_, rng| {
                        let sim = Simulation::new(cfg, rng);
                        let out = sim.run_lifetime(rng);
                        (
                            u64::from(out.intervals - out.disconnected_intervals),
                            u64::from(out.violations),
                        )
                    },
                );
                for (checked, violations) in outcomes {
                    total += checked;
                    bad += violations;
                }
            }
            (policy, total, bad)
        })
        .collect()
}

/// Locality experiment: the paper argues the marking process only needs
/// *local* updates when hosts move. This measures, per update interval, the
/// fraction of hosts whose gateway status actually changed — low churn is
/// what makes the localized maintenance cheap.
pub fn locality_experiment(sweep: &SweepConfig) -> Vec<Series> {
    sweep
        .policies
        .iter()
        .map(|&policy| Series {
            label: policy.label().to_string(),
            points: sweep
                .sizes
                .iter()
                .map(|&n| {
                    let cfg = SimConfig::paper(n, policy, DrainModel::LinearInN);
                    let churns = run_trials(
                        sweep.seed ^ (n as u64) << 8 ^ policy_tag(policy),
                        sweep.trials,
                        |_, rng| {
                            let mut state = NetworkState::init(cfg, rng);
                            let mut prev = state.compute_gateways();
                            let mut cur = pacds_graph::VertexMask::new();
                            let mut changed = 0usize;
                            let intervals = 30u32;
                            for _ in 0..intervals {
                                state.advance_topology(rng);
                                state.compute_gateways_into(&mut cur);
                                changed += prev
                                    .iter()
                                    .zip(&cur)
                                    .filter(|(a, b)| a != b)
                                    .count();
                                std::mem::swap(&mut prev, &mut cur);
                            }
                            changed as f64 / (f64::from(intervals) * n as f64)
                        },
                    );
                    (n, Summary::from_slice(&churns))
                })
                .collect(),
        })
        .collect()
}

/// Quantum (energy-level coarseness) ablation: runs the Figure-10 and
/// Figure-12 measurements at one network size across level quanta.
/// Returns `(quantum, policy_label, mean_gateways, mean_lifetime)` rows.
pub fn quantum_ablation(
    n: usize,
    trials: usize,
    seed: u64,
    quanta: &[f64],
) -> Vec<(f64, &'static str, f64, f64)> {
    let mut rows = Vec::new();
    for &q in quanta {
        for policy in [Policy::Energy, Policy::EnergyDegree] {
            let mut cfg = SimConfig::paper(n, policy, DrainModel::LinearInN);
            cfg.energy.quantum = q;
            let out = run_trials(seed ^ policy_tag(policy), trials, |_, rng| {
                let sim = Simulation::new(cfg, rng).without_verification();
                let o = sim.run_lifetime(rng);
                (o.mean_gateways, f64::from(o.intervals))
            });
            let gw: Vec<f64> = out.iter().map(|o| o.0).collect();
            let life: Vec<f64> = out.iter().map(|o| o.1).collect();
            rows.push((
                q,
                policy.label(),
                Summary::from_slice(&gw).mean,
                Summary::from_slice(&life).mean,
            ));
        }
    }
    rows
}

fn policy_tag(policy: Policy) -> u64 {
    match policy {
        Policy::NoPruning => 1,
        Policy::Id => 2,
        Policy::Degree => 3,
        Policy::Energy => 4,
        Policy::EnergyDegree => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> SweepConfig {
        SweepConfig {
            sizes: vec![20, 40],
            trials: 5,
            seed: 7,
            policies: Policy::ALL.to_vec(),
        }
    }

    #[test]
    fn cds_size_series_have_expected_shape() {
        let series = cds_size_experiment(&tiny_sweep());
        assert_eq!(series.len(), 5);
        for s in &series {
            assert_eq!(s.points.len(), 2);
            for (_, summary) in &s.points {
                assert_eq!(summary.n, 5);
                assert!(summary.mean >= 0.0);
            }
        }
        // NR must be the largest set on average at every size.
        let nr = &series[0];
        assert_eq!(nr.label, "NR");
        for other in &series[1..] {
            for (p_nr, p_o) in nr.points.iter().zip(&other.points) {
                assert!(
                    p_nr.1.mean >= p_o.1.mean - 1e-9,
                    "{} exceeded NR at n={}",
                    other.label,
                    p_o.0
                );
            }
        }
    }

    #[test]
    fn lifetime_series_are_positive_and_bounded() {
        let series = lifetime_experiment(&tiny_sweep(), DrainModel::LinearInN);
        for s in &series {
            for (_, summary) in &s.points {
                assert!(summary.mean >= 1.0);
                assert!(summary.max <= 100.0, "d' = 1 bounds life at 100");
            }
        }
    }

    #[test]
    fn locality_churn_is_a_small_fraction() {
        let series = locality_experiment(&SweepConfig {
            sizes: vec![40],
            trials: 4,
            seed: 3,
            policies: vec![Policy::Id, Policy::Energy],
        });
        for s in &series {
            let (_, summary) = &s.points[0];
            assert!(
                summary.mean > 0.0 && summary.mean < 0.5,
                "{}: churn {} out of expected range",
                s.label,
                summary.mean
            );
        }
    }

    #[test]
    fn quantum_ablation_produces_rows() {
        let rows = quantum_ablation(30, 3, 9, &[1.0, 25.0]);
        assert_eq!(rows.len(), 4);
        for (q, label, gw, life) in rows {
            assert!(q > 0.0);
            assert!(!label.is_empty());
            assert!(gw >= 1.0);
            assert!(life >= 1.0);
        }
    }

    #[test]
    fn literal_rules_violate_often_id_never() {
        // Quantifies the documented soundness gap: the original ID rules
        // (min-of-three) never violate; the literal simultaneous
        // case-analysis rules violate on a *large* fraction of intervals
        // at paper densities — which is why the safe semantics is the
        // default for reproduction runs.
        let rates = violation_rate_experiment(&tiny_sweep(), DrainModel::LinearInN);
        for (policy, total, bad) in rates {
            assert!(total > 0);
            let rate = bad as f64 / total as f64;
            match policy {
                Policy::Id => assert_eq!(bad, 0, "ID rules are provably safe"),
                _ => assert!(
                    rate > 0.01,
                    "{policy:?}: expected the literal rules to violate \
                     regularly at paper densities, measured {rate}"
                ),
            }
        }
    }
}
