//! The ad hoc wireless network simulator of Section 4.
//!
//! One *update interval* consists of:
//!
//! 1. build the unit-disk graph of the current host positions;
//! 2. run the marking process and the configured rule family to obtain the
//!    gateway set `G'`, recording `|G'|`;
//! 3. drain every host's battery (`d` for gateways, `d'` for the rest); if
//!    a host dies the run ends and reports the interval count (the
//!    *network lifetime*);
//! 4. move hosts per the mobility model and start the next interval.
//!
//! [`experiments`] wraps this loop into the paper's two studies — average
//! gateway count (Figure 10) and average lifetime under three drain models
//! (Figures 11–13) — and [`montecarlo`] runs independent trials in parallel
//! (rayon) with per-trial deterministic seeding.

pub mod config;
pub mod csv;
pub mod experiments;
pub mod load;
pub mod montecarlo;
pub mod network;
pub mod render;
pub mod scenario;
pub mod simulation;
pub mod stats;
pub mod trace;

pub use config::{ConnectivityMode, SimConfig};
pub use load::{load_aware_lifetime, LoadConfig, LoadOutcome};
pub use network::NetworkState;
pub use render::render_ascii;
pub use scenario::{ExperimentKind, Scenario, ScenarioResult};
pub use simulation::{run_extended_lifetime, ExtendedOutcome, LifetimeOutcome, Simulation};
pub use stats::Summary;
pub use trace::{TraceRecord, TraceRecorder};
