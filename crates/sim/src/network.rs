//! The live network state: host positions, topology, batteries.

use crate::config::{ConnectivityMode, SimConfig};
use pacds_core::{CdsWorkspace, IncrementalCds};
use pacds_energy::Fleet;
use pacds_geom::{Point2, Rect};
use pacds_graph::{algo, gen, CsrGraph, Graph, VertexMask};
use pacds_mobility::{MobilityModel, PaperWalk};
use pacds_shard::{ChurnEngine, ChurnEvent, ShardSpec, REQUIRED_HALO};
use rand::Rng;

/// Mutable state of the simulated network.
///
/// Owns the whole zero-allocation hot path: the topology lives in a
/// [`CsrGraph`] rebuilt in place each interval straight from the host
/// positions ([`gen::unit_disk_csr`]), the CDS is recomputed through one
/// retained [`CdsWorkspace`], and the energy quantisation reuses one level
/// buffer. The per-interval CDS work —
/// [`NetworkState::compute_gateways_in_place`] / `_into`, verification and
/// drain — performs no heap allocation once warm (pinned by
/// `tests/zero_alloc.rs`); the topology rebuild is amortised-free, only
/// allocating when a buffer first reaches a new high-water mark.
#[derive(Debug, Clone)]
pub struct NetworkState {
    cfg: SimConfig,
    positions: Vec<Point2>,
    graph: Graph,
    csr: CsrGraph,
    fleet: Fleet,
    walk: PaperWalk,
    incremental: Option<IncrementalCds>,
    churn: Option<ChurnDriver>,
    off: Vec<bool>,
    ws: CdsWorkspace,
    udg_scratch: gen::UnitDiskScratch,
    levels: Vec<u64>,
}

/// Tile-grid size for [`SimConfig::churn`] mode: one tile per ~50 hosts,
/// at least a 4-tile grid so dirty-set locality is observable even at the
/// paper's scale, capped so the per-tile bookkeeping stays cheap.
fn churn_shards(n: usize) -> usize {
    (n / 50).clamp(4, 256)
}

/// The [`SimConfig::churn`] driver: a persistent [`ChurnEngine`] fed
/// mutation events diffed from the simulation state each interval —
/// [`ChurnEvent::MoveNode`] for hosts mobility displaced,
/// [`ChurnEvent::DrainBattery`] for hosts whose quantised level changed,
/// [`ChurnEvent::KillNode`] for deaths — so only the dirty tiles are
/// re-solved. Gateway sets are identical to the from-scratch path (pinned
/// by `simulation::tests`).
#[derive(Debug)]
struct ChurnDriver {
    engine: ChurnEngine,
    bounds: Rect,
    radius: f64,
    /// Positions as of the last refresh, for move diffing.
    prev_positions: Vec<Point2>,
    /// Quantised energy levels as of the last refresh, for drain diffing.
    prev_levels: Vec<u64>,
    /// The merged gateway mask of the last refresh.
    mask: VertexMask,
    /// Cumulative tiles re-solved across all refreshes.
    resolved_tiles: u64,
    /// Number of refreshes performed.
    refreshes: u64,
}

impl ChurnDriver {
    fn open(cfg: &SimConfig, positions: &[Point2], levels: Vec<u64>) -> Self {
        let engine = ChurnEngine::open(
            ShardSpec {
                shards: churn_shards(cfg.n),
                halo: REQUIRED_HALO,
                threads: 1,
            },
            cfg.bounds,
            cfg.radius,
            positions,
            &levels,
            &cfg.cds,
        )
        .expect("churn mode requires a shardable CDS configuration");
        let mask = engine.gateways().clone();
        Self {
            engine,
            bounds: cfg.bounds,
            radius: cfg.radius,
            prev_positions: positions.to_vec(),
            prev_levels: levels,
            mask,
            resolved_tiles: 0,
            refreshes: 0,
        }
    }

    /// Diffs the simulation state against the last refresh, feeds the
    /// resulting events, and re-solves the dirty tiles.
    fn absorb(&mut self, positions: &[Point2], levels: &[u64]) {
        for (i, prev) in self.prev_positions.iter_mut().enumerate() {
            let p = positions[i];
            if p != *prev {
                if self.engine.alive()[i] {
                    self.engine
                        .apply(&ChurnEvent::MoveNode {
                            node: i as u32,
                            to: p,
                        })
                        .expect("in-bounds move of a live host");
                }
                *prev = p;
            }
        }
        for (i, prev) in self.prev_levels.iter_mut().enumerate() {
            let lv = levels[i];
            if lv != *prev {
                if self.engine.alive()[i] {
                    self.engine
                        .apply(&ChurnEvent::DrainBattery {
                            node: i as u32,
                            remaining: lv,
                        })
                        .expect("drain of a live host");
                }
                *prev = lv;
            }
        }
        let stats = self.engine.refresh();
        self.resolved_tiles += stats.resolved_tiles as u64;
        self.refreshes += 1;
        self.mask.clone_from(self.engine.gateways());
    }
}

impl Clone for ChurnDriver {
    /// The engine owns a worker pool and cannot be cloned field-wise:
    /// reopen an equivalent instance from the current positions/energy
    /// and replay the deaths (bit-identical by the churn conformance
    /// contract).
    fn clone(&self) -> Self {
        let src = &self.engine;
        let mut engine = ChurnEngine::open(
            src.spec(),
            self.bounds,
            self.radius,
            src.positions(),
            src.energy(),
            src.cfg(),
        )
        .expect("reopening a previously-valid configuration");
        for (i, &alive) in src.alive().iter().enumerate() {
            if !alive {
                engine
                    .apply(&ChurnEvent::KillNode { node: i as u32 })
                    .expect("killing a live host");
            }
        }
        engine.refresh();
        Self {
            engine,
            bounds: self.bounds,
            radius: self.radius,
            prev_positions: self.prev_positions.clone(),
            prev_levels: self.prev_levels.clone(),
            mask: self.mask.clone(),
            resolved_tiles: self.resolved_tiles,
            refreshes: self.refreshes,
        }
    }
}

impl NetworkState {
    /// Places hosts per the config and builds the initial topology.
    pub fn init<R: Rng + ?Sized>(cfg: SimConfig, rng: &mut R) -> Self {
        cfg.validate();
        let positions = match cfg.connectivity {
            ConnectivityMode::AcceptAny => {
                pacds_geom::placement::uniform_points(rng, cfg.bounds, cfg.n)
            }
            ConnectivityMode::ResampleInitial => {
                // Uniform placement rarely connects at sparse densities (at
                // the paper's n=10 fewer than 1% of draws do), so a bounded
                // retry loop alone cannot promise a connected start. After
                // the cap, fall back to the anchored placement whose
                // construction guarantees a spanning tree within radius.
                let mut placed = None;
                for _ in 0..cfg.placement_retries.max(1) {
                    let pts = pacds_geom::placement::uniform_points(rng, cfg.bounds, cfg.n);
                    let g = gen::unit_disk(cfg.bounds, cfg.radius, &pts);
                    if algo::is_connected(&g) {
                        placed = Some(pts);
                        break;
                    }
                }
                placed.unwrap_or_else(|| {
                    pacds_geom::placement::connected_uniform_points(
                        rng, cfg.bounds, cfg.radius, cfg.n,
                    )
                })
            }
        };
        let graph = gen::unit_disk(cfg.bounds, cfg.radius, &positions);
        let csr = CsrGraph::from(&graph);
        let fleet = Fleet::new(cfg.n, cfg.energy);
        let walk = cfg.walk;
        let incremental = cfg.incremental.then(|| {
            IncrementalCds::new(graph.clone(), Fleet::new(cfg.n, cfg.energy).levels(), cfg.cds)
        });
        let churn = cfg
            .churn
            .then(|| ChurnDriver::open(&cfg, &positions, fleet.levels()));
        Self {
            off: vec![false; cfg.n],
            ws: CdsWorkspace::with_capacity(cfg.n),
            udg_scratch: gen::UnitDiskScratch::new(),
            levels: Vec::with_capacity(cfg.n),
            cfg,
            positions,
            graph,
            csr,
            fleet,
            walk,
            incremental,
            churn,
        }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current host positions.
    pub fn positions(&self) -> &[Point2] {
        &self.positions
    }

    /// Current unit-disk topology.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Current unit-disk topology in CSR form (identical edge set to
    /// [`NetworkState::graph`]; this is the copy the hot path computes on).
    pub fn csr(&self) -> &CsrGraph {
        &self.csr
    }

    /// Current batteries.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Computes the gateway set for the current topology and energy levels
    /// under the configured policy, returning a fresh mask. Prefer
    /// [`NetworkState::compute_gateways_in_place`] (or `_into`) inside
    /// interval loops — this wrapper clones the result.
    pub fn compute_gateways(&mut self) -> VertexMask {
        self.compute_gateways_in_place().clone()
    }

    /// Computes the gateway set without allocating: energy levels are
    /// quantised into a retained buffer and the CDS runs in the owned
    /// [`CdsWorkspace`] over the CSR topology. Uses the localized
    /// incremental maintainer when `cfg.incremental` is set (identical
    /// output). The returned reference stays valid until the next
    /// computation.
    pub fn compute_gateways_in_place(&mut self) -> &VertexMask {
        let _t = pacds_obs::phase_timer(pacds_obs::Phase::SimCds);
        self.fleet.levels_into(&mut self.levels);
        if let Some(d) = self.churn.as_mut() {
            d.absorb(&self.positions, &self.levels);
            return &d.mask;
        }
        match self.incremental.as_mut() {
            Some(inc) => inc.update(self.graph.clone(), self.levels.clone()),
            None => self.ws.compute(&self.csr, Some(&self.levels), &self.cfg.cds),
        }
    }

    /// [`NetworkState::compute_gateways_in_place`], copied into a
    /// caller-provided mask (cleared and refilled — no allocation once
    /// `out` has capacity `n`).
    pub fn compute_gateways_into(&mut self, out: &mut VertexMask) {
        let gw = self.compute_gateways_in_place();
        out.clone_from(gw);
    }

    /// Verifies a gateway mask against the current topology using the
    /// workspace's BFS scratch (allocation-free once warm).
    pub fn verify_gateways(&mut self, mask: &[bool]) -> Result<(), pacds_core::CdsViolation> {
        self.ws.verify(&self.csr, mask)
    }

    /// Vertices the incremental maintainer touched in the last update
    /// (`None` when running full recomputation).
    pub fn last_recomputed(&self) -> Option<usize> {
        self.incremental.as_ref().map(IncrementalCds::last_recomputed)
    }

    /// Cumulative churn-engine tile statistics: `(re-solved tiles across
    /// all refreshes, refreshes, tiles in the grid)`. `None` when
    /// [`SimConfig::churn`] is off.
    pub fn churn_tile_stats(&self) -> Option<(u64, u64, usize)> {
        self.churn
            .as_ref()
            .map(|d| (d.resolved_tiles, d.refreshes, d.engine.tiles()))
    }

    /// Which hosts are switched off this interval.
    pub fn off(&self) -> &[bool] {
        &self.off
    }

    /// Applies one interval's battery drain given the gateway roles.
    /// Returns the hosts that died. Off hosts pay nothing.
    pub fn drain(&mut self, gateways: &[bool]) -> Vec<usize> {
        let _t = pacds_obs::phase_timer(pacds_obs::Phase::SimDrain);
        let died = if self.off.iter().any(|&o| o) {
            self.fleet.drain_interval_with_off(gateways, &self.off)
        } else {
            self.fleet.drain_interval(gateways)
        };
        if let Some(d) = self.churn.as_mut() {
            // Deaths become kill events; their dirty tiles re-solve on
            // the next gateway computation.
            for &v in &died {
                d.engine
                    .apply(&ChurnEvent::KillNode { node: v as u32 })
                    .expect("first death of a live host");
            }
        }
        pacds_obs::add(pacds_obs::Counter::SimDeaths, died.len() as u64);
        died
    }

    /// Applies an arbitrary per-host drain (used by the load-aware
    /// extension). Returns `true` if any host died.
    pub fn drain_custom<F: Fn(usize) -> f64>(&mut self, amount: F) -> bool {
        !self.fleet.drain_each(amount).is_empty()
    }

    /// Like [`NetworkState::drain_custom`] but returns the hosts that died.
    pub fn drain_custom_collect<F: Fn(usize) -> f64>(&mut self, amount: F) -> Vec<usize> {
        self.fleet.drain_each(amount)
    }

    /// Moves hosts one interval, resamples on/off states, and rebuilds the
    /// topology in place (off hosts are isolated for the interval).
    ///
    /// The unit-disk graph is written straight into the retained CSR arrays
    /// (no intermediate adjacency-list build), and the mutable [`Graph`]
    /// view is refreshed from it reusing its per-vertex capacity. The step
    /// is amortised allocation-free: buffers grow monotonically, so it only
    /// allocates when mobility pushes an edge count or a vertex degree past
    /// its previous high-water mark.
    pub fn advance_topology<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        {
            let _t = pacds_obs::phase_timer(pacds_obs::Phase::SimPlacement);
            self.walk.step(rng, self.cfg.bounds, &mut self.positions);
            if self.cfg.off_probability > 0.0 {
                for o in self.off.iter_mut() {
                    *o = rng.random_range(0.0..1.0) < self.cfg.off_probability;
                }
            }
        }
        let off = (self.cfg.off_probability > 0.0).then_some(&self.off[..]);
        let _t = pacds_obs::phase_timer(pacds_obs::Phase::SimCsrRebuild);
        gen::unit_disk_csr(
            self.cfg.bounds,
            self.cfg.radius,
            &self.positions,
            off,
            &mut self.csr,
            &mut self.udg_scratch,
        );
        self.graph.rebuild_from(&self.csr);
        pacds_obs::inc(pacds_obs::Counter::SimTopologyRebuilds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::Policy;
    use pacds_energy::DrainModel;
    use rand::SeedableRng;

    fn cfg(n: usize) -> SimConfig {
        SimConfig::paper(n, Policy::Id, DrainModel::LinearInN)
    }

    #[test]
    fn init_resamples_to_a_connected_graph() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for n in [3usize, 10, 40] {
            let st = NetworkState::init(cfg(n), &mut rng);
            assert_eq!(st.positions().len(), n);
            assert!(
                algo::is_connected(st.graph()),
                "paper-density topologies should connect within the retry cap (n={n})"
            );
        }
    }

    #[test]
    fn gateways_dominate_connected_topologies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut st = NetworkState::init(cfg(30), &mut rng);
        let gw = st.compute_gateways();
        assert!(pacds_core::verify_cds(st.graph(), &gw).is_ok());
    }

    #[test]
    fn drain_kills_eventually() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut st = NetworkState::init(cfg(10), &mut rng);
        let mut died = Vec::new();
        for _ in 0..100_000 {
            let gw = st.compute_gateways();
            died = st.drain(&gw);
            if !died.is_empty() {
                break;
            }
        }
        assert!(!died.is_empty(), "model 2 must kill within the cap");
    }

    #[test]
    fn incremental_mode_matches_full_recompute_over_a_run() {
        let mut base = cfg(25);
        base.max_intervals = 40;
        let mut inc_cfg = base;
        inc_cfg.incremental = true;
        let run = |c: SimConfig| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(77);
            let mut st = NetworkState::init(c, &mut rng);
            let mut sets = Vec::new();
            for _ in 0..c.max_intervals {
                let gw = st.compute_gateways();
                sets.push(gw.clone());
                st.drain(&gw);
                st.advance_topology(&mut rng);
            }
            sets
        };
        assert_eq!(run(base), run(inc_cfg));
    }

    #[test]
    fn churn_mode_matches_full_recompute_over_a_run() {
        let mut base = cfg(25);
        base.cds = pacds_core::CdsConfig::policy(Policy::EnergyDegree);
        base.max_intervals = 40;
        let mut churn_cfg = base;
        churn_cfg.churn = true;
        let run = |c: SimConfig| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(77);
            let mut st = NetworkState::init(c, &mut rng);
            let mut sets = Vec::new();
            for _ in 0..c.max_intervals {
                let gw = st.compute_gateways();
                sets.push(gw.clone());
                st.drain(&gw);
                st.advance_topology(&mut rng);
            }
            sets
        };
        assert_eq!(run(base), run(churn_cfg));
    }

    #[test]
    fn churn_mode_survives_cloning_mid_run() {
        let mut c = cfg(25);
        c.cds = pacds_core::CdsConfig::policy(Policy::Energy);
        c.churn = true;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut st = NetworkState::init(c, &mut rng);
        for _ in 0..5 {
            let gw = st.compute_gateways();
            st.drain(&gw);
            st.advance_topology(&mut rng);
        }
        // The clone reopens the engine from current state: both copies
        // must compute the same mask from here on.
        let mut copy = st.clone();
        assert_eq!(st.compute_gateways(), copy.compute_gateways());
    }

    #[test]
    fn churn_mode_reports_tile_stats() {
        let mut c = cfg(30);
        c.cds = pacds_core::CdsConfig::policy(Policy::Energy);
        c.churn = true;
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let mut st = NetworkState::init(c, &mut rng);
        assert_eq!(st.churn_tile_stats(), Some((0, 0, 4)));
        for _ in 0..3 {
            let gw = st.compute_gateways();
            st.drain(&gw);
            st.advance_topology(&mut rng);
        }
        let _ = st.compute_gateways();
        let (resolved, refreshes, tiles) = st.churn_tile_stats().unwrap();
        assert_eq!(refreshes, 4);
        assert!(resolved <= refreshes * tiles as u64);
    }

    #[test]
    fn incremental_mode_touches_few_hosts() {
        let mut c = cfg(60);
        c.incremental = true;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut st = NetworkState::init(c, &mut rng);
        let _ = st.compute_gateways();
        // Second interval with mobility: churn should touch a strict subset.
        st.advance_topology(&mut rng);
        let _ = st.compute_gateways();
        let touched = st.last_recomputed().unwrap();
        assert!(touched <= 60);
    }

    #[test]
    fn off_hosts_are_isolated_and_preserved() {
        let mut c = cfg(30);
        c.off_probability = 0.4;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut st = NetworkState::init(c, &mut rng);
        let mut saw_off = false;
        for _ in 0..10 {
            st.advance_topology(&mut rng);
            let gw = st.compute_gateways();
            let off = st.off().to_vec();
            for (v, &gwv) in gw.iter().enumerate() {
                if off[v] {
                    saw_off = true;
                    assert_eq!(st.graph().degree(v as u32), 0, "off host must be isolated");
                    assert!(!gwv, "off host cannot be a gateway");
                }
            }
            let before: Vec<f64> = (0..30).map(|v| st.fleet().energy(v)).collect();
            st.drain(&gw);
            for (v, &b) in before.iter().enumerate() {
                if off[v] {
                    assert_eq!(st.fleet().energy(v), b, "off host pays nothing");
                }
            }
        }
        assert!(saw_off, "with p=0.4 some host must have switched off");
    }

    #[test]
    fn advance_topology_rebuilds_graph() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut st = NetworkState::init(cfg(25), &mut rng);
        let before = st.graph().clone();
        let mut changed = false;
        for _ in 0..10 {
            st.advance_topology(&mut rng);
            if *st.graph() != before {
                changed = true;
                break;
            }
        }
        assert!(changed, "mobility should alter the topology quickly");
        assert!(st.positions().iter().all(|&p| st.config().bounds.contains(p)));
    }
}
