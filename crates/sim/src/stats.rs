//! Summary statistics for Monte-Carlo aggregation.

use serde::Serialize;

/// Mean / dispersion summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub stddev: f64,
    /// Half-width of the normal-approximation 95% confidence interval.
    pub ci95: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarises `values`.
    ///
    /// # Panics
    /// Panics on an empty sample or non-finite values.
    pub fn from_slice(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise an empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "sample contains non-finite values"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        };
        let stddev = var.sqrt();
        let ci95 = if n < 2 {
            0.0
        } else {
            1.96 * stddev / (n as f64).sqrt()
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Self {
            n,
            mean,
            stddev,
            ci95,
            min,
            max,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3} (n={})", self.mean, self.ci95, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value() {
        let s = Summary::from_slice(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!((s.min, s.max), (5.0, 5.0));
    }

    #[test]
    fn known_sample() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Bessel-corrected stddev of this classic sample is ~2.138.
        assert!((s.stddev - 2.1380899).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn constant_sample_has_zero_spread() {
        let s = Summary::from_slice(&[3.0; 10]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_sample_panics() {
        Summary::from_slice(&[]);
    }

    #[test]
    #[should_panic]
    fn non_finite_rejected() {
        Summary::from_slice(&[1.0, f64::NAN]);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0]);
        assert!(format!("{s}").contains("n=3"));
    }
}
