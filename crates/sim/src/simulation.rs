//! The update-interval loop.

use crate::config::SimConfig;
use crate::network::NetworkState;
use pacds_core::CdsWorkspace;
use pacds_graph::{algo, CsrGraph, VertexMask};
use rand::Rng;
use serde::Serialize;
use std::collections::VecDeque;

/// Result of one lifetime run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LifetimeOutcome {
    /// Completed update intervals before the first host death (the paper's
    /// lifetime metric). Equals `max_intervals` if nothing died in time.
    pub intervals: u32,
    /// Whether any host actually died (false = hit the interval cap).
    pub died: bool,
    /// Mean gateway-set size across the simulated intervals.
    pub mean_gateways: f64,
    /// Intervals whose gateway set failed CDS verification (possible under
    /// the paper-literal Rule 2 semantics or on disconnected topologies).
    pub violations: u32,
    /// Intervals whose topology was disconnected before the CDS ran.
    pub disconnected_intervals: u32,
}

/// A configured simulation, stepping one update interval at a time.
#[derive(Debug, Clone)]
pub struct Simulation {
    state: NetworkState,
    verify: bool,
}

impl Simulation {
    /// Initialises the network from `cfg` with randomness from `rng`.
    pub fn new<R: Rng + ?Sized>(cfg: SimConfig, rng: &mut R) -> Self {
        Self {
            state: NetworkState::init(cfg, rng),
            verify: true,
        }
    }

    /// Disables per-interval CDS verification (for benchmarking the raw
    /// simulation loop).
    pub fn without_verification(mut self) -> Self {
        self.verify = false;
        self
    }

    /// Read-only access to the network state.
    pub fn state(&self) -> &NetworkState {
        &self.state
    }

    /// Runs until the first host dies (or the interval cap) and reports the
    /// outcome.
    pub fn run_lifetime<R: Rng + ?Sized>(mut self, rng: &mut R) -> LifetimeOutcome {
        let cap = self.state.config().max_intervals;
        let mut total_gateways = 0u64;
        let mut violations = 0u32;
        let mut disconnected = 0u32;
        let mut intervals = 0u32;
        let mut died = false;
        // One retained gateway mask for the whole run; each interval's CDS
        // is computed in the network's workspace and copied into it.
        let mut gateways = VertexMask::new();
        // Previous interval's roles, retained only when metrics are on, to
        // report gateway churn (hosts whose role flipped between intervals).
        let mut prev_gateways = VertexMask::new();

        while intervals < cap {
            // One trace id per update interval: with span sampling on, the
            // whole interval (connectivity check → CDS → drain → mobility)
            // lands as one reconstructible trace line.
            let trace = pacds_obs::next_trace_id();
            let _interval_span =
                pacds_obs::span(trace, pacds_obs::SpanKind::SimInterval, intervals);
            let connected = algo::is_connected(self.state.graph());
            if !connected {
                disconnected += 1;
            }
            self.state.compute_gateways_into(&mut gateways);
            if pacds_obs::enabled() {
                pacds_obs::inc(pacds_obs::Counter::SimIntervals);
                if intervals > 0 {
                    let churn = gateways
                        .iter()
                        .zip(prev_gateways.iter())
                        .filter(|(a, b)| a != b)
                        .count();
                    pacds_obs::add(pacds_obs::Counter::SimGatewayChurn, churn as u64);
                }
                prev_gateways.clone_from(&gateways);
            }
            total_gateways += gateways.iter().filter(|&&b| b).count() as u64;
            if self.verify && connected && self.state.verify_gateways(&gateways).is_err() {
                violations += 1;
            }

            let deaths = self.state.drain(&gateways);
            intervals += 1;
            if !deaths.is_empty() {
                died = true;
                break;
            }
            self.state.advance_topology(rng);
        }

        LifetimeOutcome {
            intervals,
            died,
            mean_gateways: if intervals == 0 {
                0.0
            } else {
                total_gateways as f64 / f64::from(intervals)
            },
            violations,
            disconnected_intervals: disconnected,
        }
    }
}

/// Lifetime milestones past the paper's first-death metric (extension):
/// dead hosts drop out of the topology and the run continues.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExtendedOutcome {
    /// Interval of the first host death (the paper's metric).
    pub first_death: u32,
    /// Interval when ≥ 25% of hosts have died.
    pub quarter_dead: u32,
    /// Interval when ≥ 50% of hosts have died.
    pub half_dead: u32,
    /// First interval at which the *surviving* hosts' topology was
    /// disconnected (0 if never observed before `half_dead`).
    pub first_partition: u32,
}

/// Runs past the first death, isolating dead hosts, until half the fleet
/// is gone (or the interval cap).
///
/// Dead hosts are treated like permanently-off hosts: they leave the
/// topology and pay no further energy. The gateway computation and drain
/// continue over the survivors.
pub fn run_extended_lifetime<R: Rng + ?Sized>(
    cfg: SimConfig,
    rng: &mut R,
) -> ExtendedOutcome {
    let mut state = NetworkState::init(cfg, rng);
    let n = cfg.n;
    let mut dead = vec![false; n];
    let mut dead_count = 0usize;
    // Persistent survivor-topology buffers: each interval re-masks the CSR
    // in place (no graph clone), recomputes the CDS in one retained
    // workspace, and reuses the level/alive/BFS scratch — the loop body is
    // allocation-free once warm.
    let mut survivors = CsrGraph::new();
    let mut ws = CdsWorkspace::with_capacity(n);
    let mut levels = Vec::with_capacity(n);
    let mut alive = Vec::with_capacity(n);
    let mut seen = Vec::with_capacity(n);
    let mut queue = VecDeque::with_capacity(n);
    let mut out = ExtendedOutcome {
        first_death: 0,
        quarter_dead: 0,
        half_dead: 0,
        first_partition: 0,
    };
    let mut intervals = 0u32;
    while intervals < cfg.max_intervals {
        // Survivor topology: isolate the dead.
        survivors.rebuild_from_masked(state.graph(), &dead);
        // Partition check among survivors only.
        if out.first_partition == 0 && dead_count > 0 {
            alive.clear();
            alive.extend(dead.iter().map(|&d| !d));
            if !algo::is_connected_within_scratch(&survivors, &alive, &mut seen, &mut queue) {
                out.first_partition = intervals + 1;
            }
        }
        pacds_obs::inc(pacds_obs::Counter::SimIntervals);
        state.fleet().levels_into(&mut levels);
        let gateways = ws.compute(&survivors, Some(&levels), &cfg.cds);
        // Dead hosts pay nothing; the rest follow gateway/non-gateway roles.
        let g_count = gateways.iter().filter(|&&b| b).count();
        let d_gw = cfg
            .energy
            .gateway_drain
            .gateway_drain(n, g_count);
        let dp = cfg.energy.non_gateway_drain;
        let additive = cfg.energy.additive_gateway_drain;
        let newly_dead = {
            let dead_ref = &dead;
            let gw = &gateways;
            state.drain_custom_collect(|v| {
                if dead_ref[v] {
                    0.0
                } else if gw[v] {
                    if additive {
                        d_gw + dp
                    } else {
                        d_gw
                    }
                } else {
                    dp
                }
            })
        };
        intervals += 1;
        for v in newly_dead {
            dead[v] = true;
            dead_count += 1;
            if out.first_death == 0 {
                out.first_death = intervals;
            }
            if out.quarter_dead == 0 && dead_count * 4 >= n {
                out.quarter_dead = intervals;
            }
            if out.half_dead == 0 && dead_count * 2 >= n {
                out.half_dead = intervals;
            }
        }
        if out.half_dead != 0 {
            break;
        }
        state.advance_topology(rng);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::Policy;
    use pacds_energy::DrainModel;
    use rand::SeedableRng;

    #[test]
    fn model2_lifetime_is_bounded_by_non_gateway_budget() {
        // d' = 1, initial 100: nothing survives past 100 intervals; model 2
        // gateways drain faster, so the first death is at most interval 100.
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let cfg = SimConfig::paper(20, Policy::Id, DrainModel::LinearInN);
        let out = Simulation::new(cfg, &mut rng).run_lifetime(&mut rng);
        assert!(out.died);
        assert!(out.intervals <= 100, "{out:?}");
        assert!(out.intervals >= 1);
        assert!(out.mean_gateways >= 1.0);
    }

    #[test]
    fn model1_literal_reading_hits_the_non_gateway_wall() {
        // d = 2/|G'| is usually < d' = 1: the first death comes from a
        // mostly-non-gateway host around interval 100 (a host that served
        // as a cheap gateway for some intervals lasts slightly longer, so
        // the wall is approached from above as roles churn).
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let cfg = SimConfig::paper(30, Policy::Id, DrainModel::ConstantTotal);
        let out = Simulation::new(cfg, &mut rng).run_lifetime(&mut rng);
        assert!(out.died);
        assert!((90..=160).contains(&out.intervals), "{out:?}");
    }

    #[test]
    fn energy_policy_lifetimes_are_reproducible_per_seed() {
        let cfg = SimConfig::paper(25, Policy::Energy, DrainModel::LinearInN);
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            Simulation::new(cfg, &mut rng).run_lifetime(&mut rng)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn churn_mode_lifetime_is_identical_to_the_default_path() {
        // The churn engine feeds mobility/drain/death events through the
        // sharded dirty-tile machinery; the whole lifetime outcome —
        // intervals, death, mean gateways, violations — must match the
        // from-scratch interval loop bit for bit.
        let base = SimConfig::paper(30, Policy::Energy, DrainModel::LinearInN);
        let mut churned = base;
        churned.churn = true;
        let run = |c: SimConfig, seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            Simulation::new(c, &mut rng).run_lifetime(&mut rng)
        };
        for seed in [3u64, 8, 21] {
            assert_eq!(run(base, seed), run(churned, seed), "seed {seed}");
        }
    }

    #[test]
    fn interval_cap_reports_no_death() {
        let mut cfg = SimConfig::paper(10, Policy::Id, DrainModel::ConstantTotal);
        cfg.max_intervals = 5; // far below any possible death
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let out = Simulation::new(cfg, &mut rng).run_lifetime(&mut rng);
        assert!(!out.died);
        assert_eq!(out.intervals, 5);
    }

    #[test]
    fn extended_lifetime_milestones_are_ordered() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let cfg = SimConfig::paper(20, Policy::Energy, DrainModel::LinearInN);
        let out = run_extended_lifetime(cfg, &mut rng);
        assert!(out.first_death >= 1);
        assert!(out.quarter_dead >= out.first_death);
        assert!(out.half_dead >= out.quarter_dead, "{out:?}");
        if out.first_partition != 0 {
            assert!(out.first_partition >= out.first_death);
        }
    }

    #[test]
    fn extended_lifetime_first_death_matches_basic_run() {
        let cfg = SimConfig::paper(25, Policy::Id, DrainModel::LinearInN);
        let basic = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(33);
            Simulation::new(cfg, &mut rng).without_verification().run_lifetime(&mut rng)
        };
        let extended = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(33);
            run_extended_lifetime(cfg, &mut rng)
        };
        assert_eq!(extended.first_death, basic.intervals);
    }

    #[test]
    fn rotation_extends_lifetime_versus_static_ids_on_average() {
        // The headline claim of the paper, at small scale: EL1 should meet
        // or beat ID for model 2 on average over a handful of seeds.
        let lifetime = |policy: Policy, seed: u64| {
            let cfg = SimConfig::paper(40, policy, DrainModel::LinearInN);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            Simulation::new(cfg, &mut rng).run_lifetime(&mut rng).intervals
        };
        let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let id: u32 = seeds.iter().map(|&s| lifetime(Policy::Id, s)).sum();
        let el: u32 = seeds.iter().map(|&s| lifetime(Policy::Energy, s)).sum();
        assert!(
            el >= id,
            "energy rotation should not lose to static IDs: EL1={el} ID={id}"
        );
    }
}
