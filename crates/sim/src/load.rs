//! Load-aware lifetime simulation (extension).
//!
//! The paper's drain models approximate bypass traffic analytically
//! (`d ∝ N`, `d ∝ N²`). This module measures it directly: each interval a
//! batch of random flows is routed through the gateway overlay with the
//! 3-step procedure, and every host pays energy per packet it *forwards*
//! (intermediate hops only). Gateways attract bypass traffic exactly as
//! the paper argues, so rotating the role by energy level should — and,
//! per EXPERIMENTS.md, does — extend the time to first death here too,
//! without assuming any analytic drain form.

use crate::config::SimConfig;
use crate::network::NetworkState;
use pacds_routing::{route, RoutingState};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Traffic and energy-cost parameters for the load-aware run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadConfig {
    /// Random (src, dst) flows injected per update interval.
    pub flows_per_interval: usize,
    /// Energy paid per packet forwarded (per intermediate hop served).
    pub per_forward_cost: f64,
    /// Baseline idle drain per interval for every host.
    pub idle_drain: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            flows_per_interval: 40,
            per_forward_cost: 0.25,
            idle_drain: 0.05,
        }
    }
}

/// Outcome of a load-aware lifetime run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LoadOutcome {
    /// Completed intervals before the first death (or the cap).
    pub intervals: u32,
    /// Whether a host actually died.
    pub died: bool,
    /// Mean gateway-set size over the run.
    pub mean_gateways: f64,
    /// Flows successfully delivered.
    pub delivered: u64,
    /// Flows that could not be routed (disconnected topology instants).
    pub undeliverable: u64,
    /// Mean hops per delivered flow.
    pub mean_hops: f64,
}

/// Runs the update-interval loop with measured (routed) bypass traffic.
pub fn load_aware_lifetime<R: Rng + ?Sized>(
    cfg: SimConfig,
    load: LoadConfig,
    rng: &mut R,
) -> LoadOutcome {
    cfg.validate();
    let mut state = NetworkState::init(cfg, rng);
    let n = cfg.n;
    let mut intervals = 0u32;
    let mut died = false;
    let mut total_gateways = 0u64;
    let mut delivered = 0u64;
    let mut undeliverable = 0u64;
    let mut total_hops = 0u64;
    let mut forwards = vec![0u32; n];

    while intervals < cfg.max_intervals {
        let gateways = state.compute_gateways();
        total_gateways += gateways.iter().filter(|&&b| b).count() as u64;
        let tables = RoutingState::build(state.graph(), &gateways);

        forwards.iter_mut().for_each(|f| *f = 0);
        for _ in 0..load.flows_per_interval {
            let src = rng.random_range(0..n) as u32;
            let dst = rng.random_range(0..n) as u32;
            match route(state.graph(), &tables, src, dst) {
                Ok(path) => {
                    delivered += 1;
                    total_hops += (path.len() - 1) as u64;
                    if path.len() > 2 {
                        for &hop in &path[1..path.len() - 1] {
                            forwards[hop as usize] += 1;
                        }
                    }
                }
                Err(_) => undeliverable += 1,
            }
        }

        // Drain: idle cost plus the measured forwarding load.
        let first_death = state.drain_custom(|v| {
            load.idle_drain + load.per_forward_cost * f64::from(forwards[v])
        });
        intervals += 1;
        if first_death {
            died = true;
            break;
        }
        state.advance_topology(rng);
    }

    LoadOutcome {
        intervals,
        died,
        mean_gateways: if intervals == 0 {
            0.0
        } else {
            total_gateways as f64 / f64::from(intervals)
        },
        delivered,
        undeliverable,
        mean_hops: if delivered == 0 {
            0.0
        } else {
            total_hops as f64 / delivered as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::Policy;
    use pacds_energy::DrainModel;
    use rand::SeedableRng;

    fn cfg(n: usize, policy: Policy) -> SimConfig {
        let mut c = SimConfig::paper(n, policy, DrainModel::LinearInN);
        c.max_intervals = 20_000;
        c
    }

    #[test]
    fn flows_are_delivered_and_hosts_eventually_die() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let out = load_aware_lifetime(cfg(25, Policy::Id), LoadConfig::default(), &mut rng);
        assert!(out.died, "{out:?}");
        assert!(out.delivered > 0);
        assert!(out.mean_hops >= 1.0 || out.delivered == 0);
        assert!(out.mean_gateways >= 1.0);
    }

    #[test]
    fn zero_traffic_reduces_to_idle_drain() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let load = LoadConfig {
            flows_per_interval: 0,
            per_forward_cost: 1.0,
            idle_drain: 10.0,
        };
        let out = load_aware_lifetime(cfg(10, Policy::Id), load, &mut rng);
        // Everyone drains 10/interval from 100: first death at interval 10.
        assert_eq!(out.intervals, 10);
        assert_eq!(out.delivered, 0);
    }

    #[test]
    fn energy_rotation_helps_under_measured_load() {
        let run = |policy: Policy, seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            load_aware_lifetime(cfg(30, policy), LoadConfig::default(), &mut rng).intervals
        };
        let seeds = [1u64, 2, 3, 4, 5];
        let id: u32 = seeds.iter().map(|&s| run(Policy::Id, s)).sum();
        let el: u32 = seeds.iter().map(|&s| run(Policy::Energy, s)).sum();
        assert!(el * 10 >= id * 9, "EL1 ({el}) should be competitive with ID ({id})");
    }
}
