//! Per-interval trace capture for visualisation and offline analysis.
//!
//! A [`TraceRecorder`] runs the same update-interval loop as
//! [`crate::Simulation`] but snapshots every interval: positions, gateway
//! set, energies, and topology stats. Records serialise to JSON lines, one
//! interval per line, so external tooling (plotting scripts, the CLI's
//! `trace` subcommand) can replay a run.

use crate::config::SimConfig;
use crate::network::NetworkState;
use rand::Rng;
use serde::Serialize;

/// One interval's snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct TraceRecord {
    /// Interval index (0-based).
    pub interval: u32,
    /// Host positions, `(x, y)` pairs.
    pub positions: Vec<(f64, f64)>,
    /// Gateway ids this interval.
    pub gateways: Vec<u32>,
    /// Remaining energy per host.
    pub energy: Vec<f64>,
    /// Hosts switched off this interval.
    pub off: Vec<u32>,
    /// Link count of the topology.
    pub links: usize,
    /// Whether the topology was connected.
    pub connected: bool,
    /// Hosts that died at the end of this interval.
    pub deaths: Vec<u32>,
}

/// Captures a full run as a sequence of [`TraceRecord`]s.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    records: Vec<TraceRecord>,
}

impl TraceRecorder {
    /// Runs the lifetime loop under `cfg`, recording every interval.
    /// Stops at the first death or after `max` intervals, whichever is
    /// first.
    pub fn record<R: Rng + ?Sized>(cfg: SimConfig, max: u32, rng: &mut R) -> Self {
        let mut state = NetworkState::init(cfg, rng);
        let mut records = Vec::new();
        for interval in 0..max {
            let gateways = state.compute_gateways();
            let connected = pacds_graph::algo::is_connected(state.graph());
            let links = state.graph().m();
            let positions = state
                .positions()
                .iter()
                .map(|p| (p.x, p.y))
                .collect();
            let energy = (0..cfg.n).map(|v| state.fleet().energy(v)).collect();
            let off = state
                .off()
                .iter()
                .enumerate()
                .filter_map(|(v, &o)| o.then_some(v as u32))
                .collect();
            let deaths: Vec<u32> = state
                .drain(&gateways)
                .into_iter()
                .map(|v| v as u32)
                .collect();
            let done = !deaths.is_empty();
            records.push(TraceRecord {
                interval,
                positions,
                gateways: pacds_graph::mask_to_vec(&gateways),
                energy,
                off,
                links,
                connected,
                deaths,
            });
            if done {
                break;
            }
            state.advance_topology(rng);
        }
        Self { records }
    }

    /// The captured records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Serialises the trace as JSON lines (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&serde_json::to_string(r).expect("trace records serialise"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::Policy;
    use pacds_energy::DrainModel;
    use rand::SeedableRng;

    fn cfg() -> SimConfig {
        SimConfig::paper(15, Policy::Energy, DrainModel::LinearInN)
    }

    #[test]
    fn trace_ends_at_first_death_or_cap() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = TraceRecorder::record(cfg(), 500, &mut rng);
        let records = t.records();
        assert!(!records.is_empty());
        let last = records.last().unwrap();
        assert!(
            !last.deaths.is_empty() || records.len() == 500,
            "trace must end at a death or the cap"
        );
        // No intermediate record has deaths.
        for r in &records[..records.len() - 1] {
            assert!(r.deaths.is_empty());
        }
    }

    #[test]
    fn records_are_internally_consistent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = TraceRecorder::record(cfg(), 50, &mut rng);
        for (i, r) in t.records().iter().enumerate() {
            assert_eq!(r.interval, i as u32);
            assert_eq!(r.positions.len(), 15);
            assert_eq!(r.energy.len(), 15);
            assert!(r.gateways.iter().all(|&g| (g as usize) < 15));
            // Energy is monotonically consumed across records.
            if i > 0 {
                let prev = &t.records()[i - 1];
                for v in 0..15 {
                    assert!(r.energy[v] <= prev.energy[v] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn jsonl_round_trips_through_serde() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = TraceRecorder::record(cfg(), 5, &mut rng);
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), t.records().len());
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("interval").is_some());
            assert!(v.get("gateways").is_some());
        }
    }
}
