//! Per-interval trace capture for visualisation and offline analysis.
//!
//! A [`TraceRecorder`] runs the same update-interval loop as
//! [`crate::Simulation`] but snapshots every interval: positions, gateway
//! set, energies, and topology stats. Records serialise to JSON lines, one
//! interval per line, so external tooling (plotting scripts, the CLI's
//! `trace` subcommand) can replay a run.

use crate::config::SimConfig;
use crate::network::NetworkState;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::io::{self, Write};

/// One interval's snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Interval index (0-based).
    pub interval: u32,
    /// Host positions, `(x, y)` pairs.
    pub positions: Vec<(f64, f64)>,
    /// Gateway ids this interval.
    pub gateways: Vec<u32>,
    /// Remaining energy per host.
    pub energy: Vec<f64>,
    /// Hosts switched off this interval.
    pub off: Vec<u32>,
    /// Link count of the topology.
    pub links: usize,
    /// Whether the topology was connected.
    pub connected: bool,
    /// Hosts that died at the end of this interval.
    pub deaths: Vec<u32>,
}

/// Captures a full run as a sequence of [`TraceRecord`]s.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    records: Vec<TraceRecord>,
}

impl TraceRecorder {
    /// Runs the lifetime loop under `cfg`, recording every interval.
    /// Stops at the first death or after `max` intervals, whichever is
    /// first.
    pub fn record<R: Rng + ?Sized>(cfg: SimConfig, max: u32, rng: &mut R) -> Self {
        let mut records = Vec::new();
        run_recording(cfg, max, rng, |r| {
            records.push(r.clone());
            Ok(())
        })
        .expect("in-memory sink cannot fail");
        Self { records }
    }

    /// Runs the same loop as [`TraceRecorder::record`] but streams each
    /// record straight into `w` as one JSON line, holding only a single
    /// interval in memory — the sink for long runs where buffering every
    /// snapshot would grow without bound. Returns the number of intervals
    /// written.
    pub fn record_jsonl<R: Rng + ?Sized, W: Write>(
        cfg: SimConfig,
        max: u32,
        rng: &mut R,
        w: &mut W,
    ) -> io::Result<u32> {
        run_recording(cfg, max, rng, |r| {
            w.write_all(r.to_json_line().as_bytes())?;
            w.write_all(b"\n")
        })
    }

    /// The captured records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Serialises the trace as JSON lines (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Writes the buffered trace to `w` as JSON lines (same bytes as
    /// [`TraceRecorder::to_jsonl`]).
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for r in &self.records {
            w.write_all(r.to_json_line().as_bytes())?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }
}

impl TraceRecord {
    /// Serialises to a single JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("trace records serialise")
    }
}

/// The shared interval loop: computes, snapshots, hands each record to
/// `sink`, and stops at the first death (or `max`). Returns the number of
/// recorded intervals, or the sink's first error.
fn run_recording<R: Rng + ?Sized, F>(
    cfg: SimConfig,
    max: u32,
    rng: &mut R,
    mut sink: F,
) -> io::Result<u32>
where
    F: FnMut(&TraceRecord) -> io::Result<()>,
{
    let mut state = NetworkState::init(cfg, rng);
    let mut recorded = 0u32;
    for interval in 0..max {
        let gateways = state.compute_gateways();
        let connected = pacds_graph::algo::is_connected(state.graph());
        let links = state.graph().m();
        let positions = state.positions().iter().map(|p| (p.x, p.y)).collect();
        let energy = (0..cfg.n).map(|v| state.fleet().energy(v)).collect();
        let off = state
            .off()
            .iter()
            .enumerate()
            .filter_map(|(v, &o)| o.then_some(v as u32))
            .collect();
        let deaths: Vec<u32> = state
            .drain(&gateways)
            .into_iter()
            .map(|v| v as u32)
            .collect();
        let done = !deaths.is_empty();
        let record = TraceRecord {
            interval,
            positions,
            gateways: pacds_graph::mask_to_vec(&gateways),
            energy,
            off,
            links,
            connected,
            deaths,
        };
        sink(&record)?;
        recorded += 1;
        if done {
            break;
        }
        state.advance_topology(rng);
    }
    Ok(recorded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::Policy;
    use pacds_energy::DrainModel;
    use rand::SeedableRng;

    fn cfg() -> SimConfig {
        SimConfig::paper(15, Policy::Energy, DrainModel::LinearInN)
    }

    #[test]
    fn trace_ends_at_first_death_or_cap() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = TraceRecorder::record(cfg(), 500, &mut rng);
        let records = t.records();
        assert!(!records.is_empty());
        let last = records.last().unwrap();
        assert!(
            !last.deaths.is_empty() || records.len() == 500,
            "trace must end at a death or the cap"
        );
        // No intermediate record has deaths.
        for r in &records[..records.len() - 1] {
            assert!(r.deaths.is_empty());
        }
    }

    #[test]
    fn records_are_internally_consistent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = TraceRecorder::record(cfg(), 50, &mut rng);
        for (i, r) in t.records().iter().enumerate() {
            assert_eq!(r.interval, i as u32);
            assert_eq!(r.positions.len(), 15);
            assert_eq!(r.energy.len(), 15);
            assert!(r.gateways.iter().all(|&g| (g as usize) < 15));
            // Energy is monotonically consumed across records.
            if i > 0 {
                let prev = &t.records()[i - 1];
                for v in 0..15 {
                    assert!(r.energy[v] <= prev.energy[v] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn streaming_sink_matches_in_memory_trace() {
        let in_memory = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            TraceRecorder::record(cfg(), 20, &mut rng).to_jsonl()
        };
        let streamed = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let mut buf = Vec::new();
            let n = TraceRecorder::record_jsonl(cfg(), 20, &mut rng, &mut buf).unwrap();
            assert_eq!(n as usize, in_memory.lines().count());
            String::from_utf8(buf).unwrap()
        };
        assert_eq!(streamed, in_memory);
    }

    #[test]
    fn write_jsonl_matches_to_jsonl() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let t = TraceRecorder::record(cfg(), 5, &mut rng);
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), t.to_jsonl());
    }

    #[test]
    fn records_round_trip_through_deserialize() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let t = TraceRecorder::record(cfg(), 5, &mut rng);
        for (line, original) in t.to_jsonl().lines().zip(t.records()) {
            let back: TraceRecord = serde_json::from_str(line).unwrap();
            assert_eq!(back.interval, original.interval);
            assert_eq!(back.positions, original.positions);
            assert_eq!(back.gateways, original.gateways);
            assert_eq!(back.energy, original.energy);
            assert_eq!(back.off, original.off);
            assert_eq!(back.links, original.links);
            assert_eq!(back.connected, original.connected);
            assert_eq!(back.deaths, original.deaths);
        }
    }

    #[test]
    fn jsonl_round_trips_through_serde() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = TraceRecorder::record(cfg(), 5, &mut rng);
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), t.records().len());
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("interval").is_some());
            assert!(v.get("gateways").is_some());
        }
    }
}
