//! Cross-cutting simulator properties: determinism per seed, agreement
//! between the trace recorder and the lifetime loop, and incremental
//! maintenance inside full runs.

use pacds_core::Policy;
use pacds_energy::DrainModel;
use pacds_sim::experiments::{lifetime_experiment, SweepConfig};
use pacds_sim::{run_extended_lifetime, SimConfig, Simulation, TraceRecorder};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn cfg(n: usize, policy: Policy) -> SimConfig {
    SimConfig::paper(n, policy, DrainModel::LinearInN)
}

#[test]
fn lifetime_is_a_pure_function_of_seed_and_config() {
    for policy in [Policy::Id, Policy::Energy] {
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Simulation::new(cfg(25, policy), &mut rng).run_lifetime(&mut rng)
        };
        assert_eq!(run(5), run(5));
        // Different seeds should (almost surely) differ in some field.
        let (a, b) = (run(5), run(6));
        assert!(
            a != b || a.intervals == b.intervals,
            "distinct seeds produced byte-identical outcomes repeatedly"
        );
    }
}

#[test]
fn trace_recorder_agrees_with_lifetime_loop() {
    let c = cfg(20, Policy::Energy);
    let lifetime = {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        Simulation::new(c, &mut rng)
            .without_verification()
            .run_lifetime(&mut rng)
    };
    let trace = {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        TraceRecorder::record(c, c.max_intervals, &mut rng)
    };
    // The trace ends on the interval of the first death; its record count
    // equals the lifetime interval count.
    assert_eq!(trace.records().len() as u32, lifetime.intervals);
    let last = trace.records().last().unwrap();
    assert!(!last.deaths.is_empty());
    // Gateway counts agree on average.
    let mean_gw: f64 = trace
        .records()
        .iter()
        .map(|r| r.gateways.len() as f64)
        .sum::<f64>()
        / trace.records().len() as f64;
    assert!((mean_gw - lifetime.mean_gateways).abs() < 1e-9);
}

#[test]
fn incremental_flag_never_changes_results() {
    for policy in [Policy::Id, Policy::Degree, Policy::EnergyDegree] {
        let mut base = cfg(30, policy);
        base.max_intervals = 60;
        let mut inc = base;
        inc.incremental = true;
        let run = |c: SimConfig| {
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            Simulation::new(c, &mut rng)
                .without_verification()
                .run_lifetime(&mut rng)
        };
        assert_eq!(run(base), run(inc), "{policy:?}");
    }
}

#[test]
fn experiments_are_reproducible_across_invocations() {
    let sweep = SweepConfig {
        sizes: vec![20],
        trials: 4,
        seed: 77,
        policies: vec![Policy::Id, Policy::Energy],
    };
    let a = lifetime_experiment(&sweep, DrainModel::LinearInN);
    let b = lifetime_experiment(&sweep, DrainModel::LinearInN);
    for (sa, sb) in a.iter().zip(&b) {
        assert_eq!(sa.label, sb.label);
        for (pa, pb) in sa.points.iter().zip(&sb.points) {
            assert_eq!(pa.1.mean, pb.1.mean);
        }
    }
}

#[test]
fn extended_lifetime_is_deterministic_and_ordered() {
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        run_extended_lifetime(cfg(24, Policy::EnergyDegree), &mut rng)
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b);
    assert!(a.first_death <= a.quarter_dead);
    assert!(a.quarter_dead <= a.half_dead);
}

#[test]
fn on_off_runs_are_deterministic() {
    let mut c = cfg(25, Policy::Energy);
    c.off_probability = 0.3;
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        Simulation::new(c, &mut rng)
            .without_verification()
            .run_lifetime(&mut rng)
    };
    assert_eq!(run(), run());
}
