//! Soundness probe: classifies how the paper-literal simultaneous
//! case-analysis Rule 2 fails (undominated vertex vs disconnected induced
//! subgraph) across random paper-scale topologies.

use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy, verify_cds, CdsViolation};
use pacds_graph::{algo, gen};
use rand::{Rng, SeedableRng};

fn main() {
    let bounds = pacds_geom::Rect::paper_arena();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for policy in [Policy::Id, Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
        let (mut total, mut notdom, mut notconn, mut empty) = (0u32, 0u32, 0u32, 0u32);
        for _ in 0..400 {
            let n = rng.random_range(10..=100);
            let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
            let g = gen::unit_disk(bounds, 25.0, &pts);
            if !algo::is_connected(&g) { continue; }
            let e: Vec<u64> = (0..n).map(|_| rng.random_range(0..10u64)).collect();
            let cds = compute_cds(&CdsInput::with_energy(&g, &e), &CdsConfig::paper(policy));
            total += 1;
            match verify_cds(&g, &cds) {
                Ok(()) => {}
                Err(CdsViolation::NotDominating{..}) => notdom += 1,
                Err(CdsViolation::NotConnected) => notconn += 1,
                Err(CdsViolation::Empty) => empty += 1,
            }
        }
        println!("{:>4}: total {total} notdom {notdom} notconn {notconn} empty {empty}", policy.label());
    }
}
