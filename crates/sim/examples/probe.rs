//! Calibration probe: lifetime and gateway-set size for every
//! (policy, Rule 2 semantics, application mode) combination, under each of
//! the paper's drain models. This is the experiment that selected the
//! workspace's reproduction defaults — see DESIGN.md "fidelity notes" and
//! EXPERIMENTS.md for the resulting table.
//!
//! Env knobs: `ADDITIVE=1` switches to the additive drain reading;
//! `QUANTUM=<f>` overrides the energy-level quantum.

use pacds_core::{CdsConfig, Policy};
use pacds_energy::DrainModel;
use pacds_sim::montecarlo::run_trials;
use pacds_sim::{SimConfig, Simulation, Summary};

fn main() {
    let n = 40;
    for model in [DrainModel::ConstantTotal, DrainModel::LinearInN, DrainModel::QuadraticInN] {
        println!("== model {} n={n}", model.label());
        for (name, cds) in [
            ("NR", CdsConfig::policy(Policy::NoPruning)),
            ("ID", CdsConfig::policy(Policy::Id)),
            ("ND-paper", CdsConfig::paper(Policy::Degree)),
            ("ND-safe", CdsConfig::policy(Policy::Degree)),
            ("EL1-paper", CdsConfig::paper(Policy::Energy)),
            ("EL1-safe", CdsConfig::policy(Policy::Energy)),
            ("EL2-paper", CdsConfig::paper(Policy::EnergyDegree)),
            ("EL2-safe", CdsConfig::policy(Policy::EnergyDegree)),
            ("ID-seq", CdsConfig::sequential(Policy::Id)),
            ("ND-seq", CdsConfig::sequential(Policy::Degree)),
            ("EL1-seq", CdsConfig::sequential(Policy::Energy)),
            ("EL2-seq", CdsConfig::sequential(Policy::EnergyDegree)),
        ] {
            let mut cfg = SimConfig::paper(n, Policy::Id, model);
            cfg.cds = cds;
            cfg.energy.additive_gateway_drain = std::env::var("ADDITIVE").is_ok();
            if let Ok(q) = std::env::var("QUANTUM") { cfg.energy.quantum = q.parse().unwrap(); }
            let out = run_trials(0xFEED ^ n as u64, 24, |_, rng| {
                let sim = Simulation::new(cfg, rng).without_verification();
                let o = sim.run_lifetime(rng);
                (f64::from(o.intervals), o.mean_gateways)
            });
            let lives: Vec<f64> = out.iter().map(|o| o.0).collect();
            let gws: Vec<f64> = out.iter().map(|o| o.1).collect();
            println!("{:>10}: life {}  |G'| {}", name,
                Summary::from_slice(&lives), Summary::from_slice(&gws));
        }
    }
}
