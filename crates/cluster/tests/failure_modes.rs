//! Live-socket cluster tests: real backends, real coordinator, real
//! failures.
//!
//! These pin the coordinator's failure semantics — the "cold, never
//! wrong" contract:
//!
//! * routing is digest-stable and cache-affine (a repeat request hits the
//!   same backend's cache through the proxy);
//! * a backend dying mid-run fails requests over to a survivor, visibly
//!   (counters) and losslessly (every request still gets a correct,
//!   typed answer);
//! * with *no* backends left the coordinator answers a typed `Rejected`
//!   promptly — it never hangs a client on a dead cluster;
//! * a subscriber that stalls behind the proxy is retired end to end
//!   (backend hub drains, coordinator holds no unbounded buffer) while
//!   the data path keeps answering;
//! * drain is graceful: the drained backend stops receiving new work,
//!   the ring reshards, and nothing errors.

use std::time::{Duration, Instant};

use pacds_cluster::{cluster, BackendSpec, ClusterConfig, ClusterHandle};
use pacds_core::{CdsConfig, Policy};
use pacds_serve::protocol::GenComputeRequest;
use pacds_serve::{serve, Client, ClientError, ErrorCode, ServerConfig, ServerHandle, SUB_FLIPS};

/// Backends sized for fronting: `pacds-serve` parks one worker per open
/// connection, and a coordinator holds persistent connections (pooled
/// relays + the prober), so backend workers must exceed the
/// coordinator's connection appetite — see the sizing note in
/// ARCHITECTURE.md. 6 covers pool + prober + a direct test client.
fn backend() -> ServerHandle {
    serve(
        "127.0.0.1:0",
        ServerConfig {
            workers: 6,
            queue: 8,
            cache_bytes: 4 << 20,
            shard: Default::default(),
            metrics_addr: None,
        },
    )
    .expect("bind backend")
}

/// A coordinator over `backends` with a fast probe cadence so tests see
/// health transitions quickly.
fn coordinator(backends: &[&ServerHandle]) -> ClusterHandle {
    let specs: Vec<BackendSpec> = backends
        .iter()
        .enumerate()
        .map(|(i, b)| BackendSpec::new(format!("b{i}"), b.addr().to_string()))
        .collect();
    cluster(
        "127.0.0.1:0",
        &specs,
        ClusterConfig {
            workers: 2,
            queue: 8,
            probe_interval: Duration::from_millis(50),
            connect_timeout: Duration::from_millis(500),
            ..ClusterConfig::default()
        },
    )
    .expect("bind coordinator")
}

fn gen_req(seed: u64) -> GenComputeRequest {
    GenComputeRequest {
        flags: 0,
        deadline_ms: 0,
        cfg: CdsConfig::policy(Policy::Degree),
        n: 40,
        seed,
        radius: 30.0,
        side: 100.0,
        connected: false,
        energy_seed: None,
    }
}

fn counter(c: &ClusterHandle, name: &str) -> u64 {
    c.state()
        .stats
        .entries(&c.state().backends)
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

#[test]
fn routes_through_the_proxy_with_cache_affinity() {
    let b0 = backend();
    let b1 = backend();
    let coord = coordinator(&[&b0, &b1]);
    let mut client = Client::connect(coord.addr()).unwrap();
    client.ping().unwrap();

    // The same compute twice: the second must hit the owning backend's
    // cache *through* the proxy — proof the coordinator's digest matches
    // the backend's cache key byte for byte.
    let cfg = CdsConfig::sequential(Policy::Degree);
    let edges = [(0u32, 1), (1, 2), (2, 3), (1, 3)];
    let a = client.compute_cds(&cfg, 4, &edges, None, 0, 0).unwrap();
    assert!(!a.cache_hit);
    let b = client.compute_cds(&cfg, 4, &edges, None, 0, 0).unwrap();
    assert!(b.cache_hit, "repeat request served from the backend cache");
    assert_eq!(a.mask, b.mask);

    // Distinct seeds spread across the ring: with 40 keys over 2 backends
    // both must see traffic.
    for seed in 0..40 {
        client.gen_compute(&gen_req(seed)).unwrap();
    }
    let state = coord.state();
    for b in &state.backends {
        let routed = b.routed.load(std::sync::atomic::Ordering::Relaxed);
        assert!(routed > 0, "backend {} received no traffic", b.id);
    }
    assert!(counter(&coord, "cluster.routed") >= 42);
    assert_eq!(counter(&coord, "cluster.no_backend"), 0);
}

#[test]
fn backend_death_mid_run_fails_over_without_errors() {
    let b0 = backend();
    let mut b1 = backend();
    let coord = coordinator(&[&b0, &b1]);
    let mut client = Client::connect(coord.addr()).unwrap();

    // Warm both backends.
    for seed in 0..30 {
        client.gen_compute(&gen_req(seed)).unwrap();
    }

    // Kill one backend, then replay the same keyspace. Every request must
    // still succeed: keys owned by the corpse fail over to the survivor
    // (cold — recomputed — but correct), keys owned by the survivor are
    // untouched cache hits.
    b1.shutdown();
    let mut hits = 0u32;
    for seed in 0..30 {
        let r = client
            .gen_compute(&gen_req(seed))
            .expect("every request answered after backend death");
        hits += u32::from(r.cache_hit);
    }
    assert!(
        counter(&coord, "cluster.failed_over") > 0,
        "failover is observable in the coordinator counters"
    );
    assert!(
        hits > 0,
        "survivor-owned keys kept their cache through the failover"
    );
    assert!(counter(&coord, "cluster.health_flips") >= 1);

    // The dead backend is marked down, so subsequent traffic routes
    // without burning an attempt on it (no further failed_over growth —
    // allow the handful racing the mark-down).
    let fo_before = counter(&coord, "cluster.failed_over");
    for seed in 0..30 {
        client.gen_compute(&gen_req(seed)).unwrap();
    }
    assert!(
        counter(&coord, "cluster.failed_over") <= fo_before + 2,
        "marked-down backend is skipped at routing time, not re-probed per request"
    );
}

#[test]
fn all_backends_down_is_a_fast_typed_rejection() {
    let mut b0 = backend();
    let coord = coordinator(&[&b0]);
    let mut client = Client::connect(coord.addr()).unwrap();
    client.gen_compute(&gen_req(1)).unwrap();

    b0.shutdown();
    let t0 = Instant::now();
    let err = client.gen_compute(&gen_req(2)).unwrap_err();
    match err {
        ClientError::Wire(e) => assert_eq!(e.code, ErrorCode::Rejected),
        other => panic!("expected typed Rejected, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "rejection is prompt, not a hang"
    );
    assert!(counter(&coord, "cluster.no_backend") >= 1);

    // The client connection survives the rejection (Rejected is not
    // connection-fatal) — and the coordinator itself stays alive.
    client.ping().expect("coordinator still answers after rejecting");
}

#[test]
fn stalled_subscriber_is_retired_through_the_proxy() {
    let b0 = backend();
    let coord = coordinator(&[&b0]);

    // A flip subscription (big frames once flooded) that never reads.
    let mut sub = Client::connect(coord.addr()).unwrap();
    let ack = sub.subscribe(SUB_FLIPS, 0, None).unwrap();
    assert_eq!(ack.flags & SUB_FLIPS, SUB_FLIPS);

    let state = b0.state();
    let deadline = Instant::now() + Duration::from_secs(30);
    while state.hub.is_empty() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(state.hub.len(), 1, "subscription reached the backend");

    // Flood the hub while hammering the data path through the same
    // coordinator: the stalled chain (backend → pump → stalled client)
    // must be retired — backend NACK/drop or pump write timeout — while
    // requests keep flowing. The coordinator holds one frame of buffer
    // per subscription, so "retired" also means "no unbounded queue".
    let big: Vec<u32> = (0..100_000).collect();
    let mut compute = Client::connect(coord.addr()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    while !state.hub.is_empty() && Instant::now() < deadline {
        for seq in 0..8 {
            state.hub.publish_flip("flood", seq, 1, 1, &big);
        }
        compute.gen_compute(&gen_req(7)).unwrap();
    }
    assert!(state.hub.is_empty(), "stalled proxied subscriber was retired");
    assert!(state.hub.dropped() > 0 || state.hub.lagged_total() > 0);
    compute.ping().unwrap();
}

#[test]
fn drain_moves_new_traffic_and_undrain_restores_it() {
    let b0 = backend();
    let b1 = backend();
    let coord = coordinator(&[&b0, &b1]);
    let mut client = Client::connect(coord.addr()).unwrap();
    for seed in 0..30 {
        client.gen_compute(&gen_req(seed)).unwrap();
    }

    assert!(coord.drain("b1"), "known id drains");
    assert!(!coord.drain("nope"), "unknown id is refused");
    let state = coord.state();
    let drained = &state.backends[1];
    let routed_at_drain = drained.routed.load(std::sync::atomic::Ordering::Relaxed);

    // Everything keeps succeeding; the drained backend gets nothing new.
    for seed in 0..30 {
        client.gen_compute(&gen_req(seed)).unwrap();
    }
    assert_eq!(
        drained.routed.load(std::sync::atomic::Ordering::Relaxed),
        routed_at_drain,
        "drained backend receives no new requests"
    );
    assert!(drained.healthy(), "draining is not unhealthiness");
    assert_eq!(counter(&coord, "cluster.drains"), 1);

    // Undrain: the backend resumes its old arcs (same ids → same ring),
    // so its cache is warm for exactly the keys it had before.
    assert!(coord.undrain("b1"));
    let mut hits_on_restored = 0u32;
    for seed in 0..30 {
        let r = client.gen_compute(&gen_req(seed)).unwrap();
        hits_on_restored += u32::from(r.cache_hit);
    }
    assert!(
        drained.routed.load(std::sync::atomic::Ordering::Relaxed) > routed_at_drain,
        "undrained backend resumes taking traffic"
    );
    assert!(hits_on_restored > 0);
}

#[test]
fn stateful_graphs_pin_to_one_backend_through_the_proxy() {
    let b0 = backend();
    let b1 = backend();
    let coord = coordinator(&[&b0, &b1]);
    let mut client = Client::connect(coord.addr()).unwrap();

    let cfg = CdsConfig::policy(Policy::Degree);
    let points: Vec<(f64, f64)> = (0..30)
        .map(|i| (f64::from(i % 6) * 15.0, f64::from(i / 6) * 15.0))
        .collect();
    let energy = vec![100u64; points.len()];
    let opened = client
        .open_graph("pinned", &cfg, 2, 40.0, (0.0, 0.0, 100.0, 100.0), &points, &energy)
        .expect("open through the proxy");
    assert!(opened.tiles >= 1);

    // Every stateful frame for this name must land on the same backend:
    // exactly one backend holds the graph.
    for tile in 0..opened.tiles.min(2) {
        client.query_tile("pinned", tile).unwrap();
    }
    let open_counts: Vec<usize> = [&b0, &b1].iter().map(|b| b.state().graphs.len()).collect();
    assert_eq!(
        open_counts.iter().sum::<usize>(),
        1,
        "graph lives on exactly one backend, got {open_counts:?}"
    );
    client.close_graph("pinned").unwrap();
    assert_eq!(
        [&b0, &b1].iter().map(|b| b.state().graphs.len()).sum::<usize>(),
        0
    );
    assert!(counter(&coord, "cluster.routed_stateful") >= 3);
}
