//! Backend membership state and the active health prober.
//!
//! The membership model is a reconcile loop: the **desired** set is the
//! configured backends (minus any the operator is draining), the **live**
//! set is what the prober currently believes is healthy, and the prober's
//! job is to converge belief to reality — with hysteresis in both
//! directions so one dropped probe never flaps a backend out of the ring:
//!
//! * a healthy backend is marked **down** only after `fail_threshold`
//!   *consecutive* probe failures (default 2);
//! * a down backend is marked **up** only after `rise_threshold`
//!   consecutive probe successes (default 2).
//!
//! The probe is the wire protocol's own cheap health form
//! ([`StatsFormat::Health`]): counters only, no obs snapshot render, so a
//! few-hundred-millisecond cadence costs the backends nothing measurable.
//! The last probe's health fields (uptime, queue depth, open graphs,
//! workers) are retained per backend and reported through the
//! coordinator's Stats answer.
//!
//! The data path supplies faster, stronger evidence than probes: when a
//! relay fails on a *freshly dialed* connection (pool retry exhausted),
//! the backend is unreachable right now — it is marked down immediately
//! and its idle sockets are dropped, without waiting out the probe
//! cadence. The prober then owns bringing it back with the usual rise
//! hysteresis. In-protocol answers, including typed errors, never count
//! against health: a backend saying `BadInput` is a backend *working*.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use pacds_serve::client::Client;
use pacds_serve::protocol::StatsResult;

use crate::pool::ConnPool;
use crate::ClusterStats;

/// Socket read timeout on prober connections.
const PROBE_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(2);

/// The health fields a backend reports in its Stats answer (PR 10's cheap
/// probe extension), as of the last successful probe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeHealth {
    /// Seconds since the backend started.
    pub uptime_s: u64,
    /// Accepted connections not yet picked up by a worker.
    pub queue_depth: u64,
    /// Open churn graphs.
    pub open_graphs: u64,
    /// Worker-pool size.
    pub workers: u64,
}

impl ProbeHealth {
    /// Extracts the health fields from a Stats answer (zeros for any field
    /// an older backend doesn't report — the probe still counts as alive).
    pub fn from_stats(stats: &StatsResult) -> Self {
        let f = |name| stats.counter(name).unwrap_or(0);
        Self {
            uptime_s: f("uptime_s"),
            queue_depth: f("queue_depth"),
            open_graphs: f("open_graphs"),
            workers: f("workers"),
        }
    }
}

/// One configured backend: identity, liveness belief, connection pool, and
/// always-on per-backend counters.
#[derive(Debug)]
pub struct Backend {
    /// Stable operator-chosen id — the ring hashes this, so moving a
    /// backend to a new address keeps its arcs.
    pub id: String,
    /// Dial address.
    pub addr: String,
    /// Index into the coordinator's backend list (== ring member index).
    pub index: u32,
    /// The bounded connection pool.
    pub pool: ConnPool,
    /// Requests relayed to this backend.
    pub routed: AtomicU64,
    /// Relay failures charged to this backend.
    pub errors: AtomicU64,
    /// Liveness belief. Starts `true`: optimistically routable, and the
    /// data path demotes an actually-dead backend on first contact.
    healthy: AtomicBool,
    /// Operator-requested drain: excluded from new routing, in-flight
    /// requests finish (they hold their sockets, nothing is severed).
    draining: AtomicBool,
    consec_fail: AtomicU32,
    consec_ok: AtomicU32,
    relay_ns: AtomicU64,
    relay_count: AtomicU64,
    probe: Mutex<ProbeHealth>,
}

impl Backend {
    /// A backend starting healthy and undrained.
    pub fn new(id: String, addr: String, index: u32, pool: ConnPool) -> Self {
        Self {
            id,
            addr,
            index,
            pool,
            routed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            healthy: AtomicBool::new(true),
            draining: AtomicBool::new(false),
            consec_fail: AtomicU32::new(0),
            consec_ok: AtomicU32::new(0),
            relay_ns: AtomicU64::new(0),
            relay_count: AtomicU64::new(0),
            probe: Mutex::new(ProbeHealth::default()),
        }
    }

    /// Routable: believed healthy and not draining.
    pub fn available(&self) -> bool {
        self.healthy.load(Ordering::Relaxed) && !self.draining.load(Ordering::Relaxed)
    }

    /// Current liveness belief.
    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Whether the operator is draining this backend.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    pub(crate) fn set_draining(&self, v: bool) {
        self.draining.store(v, Ordering::Relaxed);
    }

    /// Last successful probe's health fields.
    pub fn probe_health(&self) -> ProbeHealth {
        *self.probe.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one successful relay's wall time.
    pub(crate) fn record_relay_ns(&self, ns: u64) {
        self.relay_ns.fetch_add(ns, Ordering::Relaxed);
        self.relay_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Mean relay latency in microseconds (0 before any relay).
    pub fn mean_relay_us(&self) -> u64 {
        let count = self.relay_count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        self.relay_ns.load(Ordering::Relaxed) / count / 1_000
    }

    /// A successful probe: reset failure streak, maybe rise.
    pub(crate) fn probe_ok(&self, health: ProbeHealth, rise_threshold: u32, stats: &ClusterStats) {
        *self.probe.lock().unwrap_or_else(|e| e.into_inner()) = health;
        self.consec_fail.store(0, Ordering::Relaxed);
        let ok = self.consec_ok.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.healthy.load(Ordering::Relaxed) && ok >= rise_threshold {
            self.healthy.store(true, Ordering::Relaxed);
            stats.health_flips.fetch_add(1, Ordering::Relaxed);
            pacds_obs::inc(pacds_obs::Counter::ClusterHealthFlips);
        }
    }

    /// A failed probe: reset success streak, maybe fall. One missed probe
    /// never flips a healthy backend (`fail_threshold >= 2` by default).
    pub(crate) fn probe_failed(&self, fail_threshold: u32, stats: &ClusterStats) {
        self.consec_ok.store(0, Ordering::Relaxed);
        let fails = self.consec_fail.fetch_add(1, Ordering::Relaxed) + 1;
        if self.healthy.load(Ordering::Relaxed) && fails >= fail_threshold {
            self.mark_down(stats);
        }
    }

    /// Data-path verdict: a relay failed on a *fresh* connection, so the
    /// backend is unreachable now — down immediately, no probe hysteresis
    /// (the request itself has already failed over; this just stops the
    /// ring from offering the corpse to the next thousand requests).
    pub(crate) fn data_failure(&self, stats: &ClusterStats) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.consec_ok.store(0, Ordering::Relaxed);
        if self.healthy.load(Ordering::Relaxed) {
            self.mark_down(stats);
        }
    }

    fn mark_down(&self, stats: &ClusterStats) {
        self.healthy.store(false, Ordering::Relaxed);
        self.pool.clear_idle();
        stats.health_flips.fetch_add(1, Ordering::Relaxed);
        pacds_obs::inc(pacds_obs::Counter::ClusterHealthFlips);
    }
}

/// One prober pass: probe every backend once (drained backends included —
/// their health keeps being tracked so an undrain is instant). `clients`
/// is the prober's persistent per-backend connection slots; a slot holds
/// `None` until a connect succeeds and reverts to `None` when the probe
/// connection dies *and* reconnecting fails.
pub(crate) fn probe_all(
    backends: &[std::sync::Arc<Backend>],
    clients: &mut [Option<Client>],
    fail_threshold: u32,
    rise_threshold: u32,
    stats: &ClusterStats,
) {
    for (b, slot) in backends.iter().zip(clients.iter_mut()) {
        if slot.is_none() {
            *slot = Client::connect(&b.addr).ok().and_then(|mut c| {
                // A wedged backend must fail the probe, not hang the
                // prober: bound the wait for the health answer.
                c.set_read_timeout(Some(PROBE_READ_TIMEOUT)).ok()?;
                Some(c)
            });
        }
        let Some(client) = slot.as_mut() else {
            b.probe_failed(fail_threshold, stats);
            continue;
        };
        match client.health() {
            Ok(result) => b.probe_ok(ProbeHealth::from_stats(&result), rise_threshold, stats),
            Err(e) => {
                // The client reconnects once by itself on the next call;
                // only drop the slot if the connection is actually gone.
                if e.is_connection_lost() {
                    *slot = None;
                }
                b.probe_failed(fail_threshold, stats);
            }
        }
    }
}
