//! The consistent-hash ring: virtual nodes keyed by backend id.
//!
//! The 128-bit request digest space is treated as a circle. Each backend
//! contributes `vnodes` points, placed by hashing `(ring tag, backend id,
//! vnode index)` — so a backend's points depend only on its *id*, never on
//! membership, list order, or address. The owner of a key is the backend
//! of the first point clockwise from the key.
//!
//! Two invariants fall out of this construction and are pinned by the
//! tests below:
//!
//! * **Determinism** — any coordinator configured with the same ids
//!   computes the same ring, so several coordinators (or a restarted one)
//!   route identically without coordination.
//! * **Minimal disruption** — removing a backend reassigns *only* the
//!   keys it owned (each orphaned arc merges into its clockwise
//!   successor); every other key keeps its owner, which is why a backend
//!   loss makes its keys cold instead of invalidating the whole cluster's
//!   cache locality.
//!
//! Liveness is deliberately *not* baked into the ring: the point list is
//! built once over the configured membership, and [`HashRing::owner`]
//! skips unavailable backends at lookup time by walking to the next
//! distinct backend clockwise. Failover is therefore just "keep walking",
//! and a recovered backend resumes exactly its old arcs.

use pacds_graph::digest::{DigestSink, Fnv1a128};

/// Domain tag for ring point placement.
const RING_TAG: &[u8] = b"pacds.cluster.ring.v1";

/// Hard cap on cluster membership: the lookup walk tracks visited
/// backends in one `u64` bitmask so routing never allocates.
pub const MAX_BACKENDS: usize = 64;

/// Default virtual nodes per backend. At 256 vnodes the largest/smallest
/// arc-share ratio across a handful of backends stays within ~2× —
/// good enough for cache spreading; lookups stay O(log(members · vnodes)).
pub const DEFAULT_VNODES: u32 = 256;

/// Bijective finalizer applied to both point positions and lookup keys.
///
/// FNV-1a is a fine fingerprint but a poor point-placement hash: its high
/// bits avalanche weakly for short inputs, so raw digests cluster on the
/// circle and arc shares skew badly. Running *both* sides of the
/// comparison through the same strong mix (murmur3's 64-bit finalizer on
/// each half, cross-fed) makes placement uniform for any input
/// distribution without changing what the digest identifies — the mix is
/// invertible, so distinct keys stay distinct.
fn spread(x: u128) -> u128 {
    fn fmix64(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        x
    }
    let mut lo = x as u64;
    let mut hi = (x >> 64) as u64;
    lo = fmix64(lo ^ hi);
    hi = fmix64(hi ^ lo);
    ((hi as u128) << 64) | lo as u128
}

/// An immutable consistent-hash ring over a fixed membership.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(position, backend index)`, sorted by position.
    points: Vec<(u128, u32)>,
    members: u32,
}

impl HashRing {
    /// Builds the ring for `ids` (index order is the backend index used by
    /// [`owner`](HashRing::owner)). Panics on more than [`MAX_BACKENDS`]
    /// members or zero vnodes.
    pub fn build<S: AsRef<str>>(ids: &[S], vnodes: u32) -> Self {
        assert!(ids.len() <= MAX_BACKENDS, "at most {MAX_BACKENDS} backends");
        assert!(vnodes > 0, "vnodes must be positive");
        let mut points = Vec::with_capacity(ids.len() * vnodes as usize);
        for (i, id) in ids.iter().enumerate() {
            for v in 0..vnodes {
                let mut d = Fnv1a128::new();
                d.write(RING_TAG);
                d.write(id.as_ref().as_bytes());
                d.write_u32(v);
                points.push((spread(d.finish()), i as u32));
            }
        }
        // Position collisions (astronomically unlikely) tie-break by
        // backend index, deterministically.
        points.sort_unstable();
        Self {
            points,
            members: ids.len() as u32,
        }
    }

    /// Membership size the ring was built over.
    pub fn members(&self) -> u32 {
        self.members
    }

    /// The first *eligible* backend clockwise from `key`: walks the ring
    /// starting at the key's successor point, visits each distinct backend
    /// once in ring order, and returns the first for which `available`
    /// holds, skipping `exclude` (the backend a failed attempt already
    /// burned). `None` when nothing eligible remains. Allocation-free.
    pub fn owner<F: Fn(u32) -> bool>(
        &self,
        key: u128,
        available: F,
        exclude: Option<u32>,
    ) -> Option<u32> {
        let key = spread(key);
        let start = self.points.partition_point(|&(pos, _)| pos < key);
        let mut seen: u64 = 0;
        for off in 0..self.points.len() {
            let (_, b) = self.points[(start + off) % self.points.len()];
            if seen & (1 << b) != 0 {
                continue;
            }
            seen |= 1 << b;
            if Some(b) != exclude && available(b) {
                return Some(b);
            }
            if seen.count_ones() == self.members {
                break;
            }
        }
        None
    }

    /// The unconditional ring owner (everything available, nothing
    /// excluded) — the backend whose cache warms for `key` in a fully
    /// healthy cluster.
    pub fn primary(&self, key: u128) -> Option<u32> {
        self.owner(key, |_| true, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("backend-{i}")).collect()
    }

    /// Deterministic probe keys spread over the u128 space.
    fn keys(count: u64) -> impl Iterator<Item = u128> {
        (0..count).map(|i| {
            let mut d = Fnv1a128::new();
            d.write(b"ring-test-key");
            d.write_u64(i);
            d.finish()
        })
    }

    #[test]
    fn deterministic_across_builds() {
        let a = HashRing::build(&ids(4), DEFAULT_VNODES);
        let b = HashRing::build(&ids(4), DEFAULT_VNODES);
        for k in keys(500) {
            assert_eq!(a.primary(k), b.primary(k));
        }
    }

    #[test]
    fn covers_and_roughly_balances() {
        let ring = HashRing::build(&ids(4), DEFAULT_VNODES);
        let mut counts = [0u32; 4];
        for k in keys(4000) {
            counts[ring.primary(k).unwrap() as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Every backend owns a substantial share (mean = 1000).
            assert!(c > 300, "backend {i} owns only {c}/4000 keys");
        }
    }

    #[test]
    fn removing_a_backend_moves_only_its_keys() {
        let ring = HashRing::build(&ids(4), DEFAULT_VNODES);
        let dead = 2u32;
        for k in keys(2000) {
            let before = ring.primary(k).unwrap();
            let after = ring.owner(k, |b| b != dead, None).unwrap();
            if before != dead {
                // Keys owned by survivors never move: that is the whole
                // point of consistent hashing.
                assert_eq!(before, after);
            } else {
                assert_ne!(after, dead);
            }
        }
    }

    #[test]
    fn recovered_backend_resumes_its_arcs() {
        let ring = HashRing::build(&ids(3), DEFAULT_VNODES);
        for k in keys(1000) {
            let healthy = ring.primary(k).unwrap();
            let degraded = ring.owner(k, |b| b != healthy, None);
            // After recovery the original owner is the owner again.
            assert_eq!(ring.primary(k), Some(healthy));
            // And the failover target was a different live backend.
            assert_ne!(degraded, Some(healthy));
        }
    }

    #[test]
    fn exclude_skips_the_burned_backend() {
        let ring = HashRing::build(&ids(3), DEFAULT_VNODES);
        for k in keys(200) {
            let first = ring.primary(k).unwrap();
            let second = ring.owner(k, |_| true, Some(first)).unwrap();
            assert_ne!(first, second);
        }
    }

    #[test]
    fn none_when_nothing_available() {
        let ring = HashRing::build(&ids(3), DEFAULT_VNODES);
        assert_eq!(ring.owner(42, |_| false, None), None);
    }

    #[test]
    fn single_backend_owns_everything() {
        let ring = HashRing::build(&ids(1), DEFAULT_VNODES);
        for k in keys(100) {
            assert_eq!(ring.primary(k), Some(0));
        }
    }
}
