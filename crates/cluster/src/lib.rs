//! # pacds-cluster — horizontal scaling for `pacds-serve`
//!
//! A std-only coordinator that makes N `pacds-serve` backends look like
//! one: it speaks the serve wire protocol on the front, consistent-hashes
//! each request's **canonical 128-bit digest** (the same digest the
//! backends use as their cache key, via `pacds_serve::keys`) onto a ring
//! of backends, and relays frames **byte-for-byte** — the protocol passes
//! through unchanged, so existing clients, the loadgen, and the CLI all
//! work against a coordinator without knowing it is one.
//!
//! Routing by the *content* digest rather than by connection gives the
//! cluster cache affinity for free: two clients submitting the same
//! (graph, config, energy) compute land on the same backend and the
//! second one hits its LRU. Stateful frames (OpenGraph / Mutate /
//! QueryTile / CloseGraph / Subscribe) route by the graph-*name* digest
//! instead, pinning a named graph's whole lifetime to one backend.
//!
//! The moving parts, one module each:
//!
//! * [`ring`] — the consistent-hash ring: virtual nodes keyed by backend
//!   id, lookup-time liveness filtering, minimal-disruption reshard.
//! * [`pool`] — per-backend bounded connection pools; stale-socket retry;
//!   verbatim frame relay.
//! * [`health`] — membership belief: active Stats/Health probing with
//!   hysteresis both directions, plus immediate data-path demotion.
//! * [`proxy`] — the coordinator server: classification, routing,
//!   retry-once failover, subscribe push relay, drain, local Ping/Stats.
//!
//! Failure semantics in one line: a lost backend makes its keys **cold,
//! never wrong** — affected requests fail over to the next backend
//! clockwise (which recomputes from scratch), stateful requests for its
//! graphs surface typed `UnknownGraph`/`Rejected` errors, and nothing is
//! ever answered from the wrong state.

pub mod health;
pub mod pool;
pub mod proxy;
pub mod ring;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use health::{Backend, ProbeHealth};
pub use pool::ConnPool;
pub use proxy::{cluster, ClusterConfig, ClusterHandle, ClusterState};
pub use ring::{HashRing, DEFAULT_VNODES, MAX_BACKENDS};

/// One configured backend: a stable operator-chosen id (what the ring
/// hashes) and a dial address (what the pools connect to).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSpec {
    /// Ring identity. Re-addressing a backend under the same id keeps its
    /// arcs (and thus its cache locality).
    pub id: String,
    /// `host:port` the coordinator dials.
    pub addr: String,
}

impl BackendSpec {
    /// A spec from id + address.
    pub fn new(id: impl Into<String>, addr: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            addr: addr.into(),
        }
    }
}

/// Always-on coordinator counters (independent of the `obs` feature, like
/// `pacds_serve::handler::ServerStats`): answered to Stats probes against
/// the coordinator and asserted on by the failure-mode tests.
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// Request frames accepted for classification.
    pub requests: AtomicU64,
    /// Frames relayed to a backend (success path).
    pub routed: AtomicU64,
    /// Subset of `routed` that were stateful (graph-name-pinned) frames.
    pub routed_stateful: AtomicU64,
    /// Frames answered by the coordinator itself (Ping, Stats).
    pub local_answers: AtomicU64,
    /// Relays that succeeded on the second backend after the first failed.
    pub failed_over: AtomicU64,
    /// Requests refused because no healthy backend remained.
    pub no_backend: AtomicU64,
    /// Health transitions in either direction (up→down and down→up).
    pub health_flips: AtomicU64,
    /// Drains initiated by the operator.
    pub drains: AtomicU64,
    /// Subscriptions successfully established through the proxy.
    pub subscriptions: AtomicU64,
    /// Push frames pumped backend → subscriber.
    pub push_relayed: AtomicU64,
    /// Malformed / unversioned / unknown-kind frames from clients.
    pub protocol_errors: AtomicU64,
    /// Connections refused with `Rejected` because the queue was full.
    pub rejected: AtomicU64,
}

impl ClusterStats {
    /// Snapshot as named entries: the coordinator-global counters first,
    /// then per-backend rows (`backend.<id>.<field>`) covering traffic,
    /// belief, and the last probe's health fields.
    pub fn entries(&self, backends: &[Arc<Backend>]) -> Vec<(String, u64)> {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out: Vec<(String, u64)> = vec![
            ("cluster.requests".into(), g(&self.requests)),
            ("cluster.routed".into(), g(&self.routed)),
            ("cluster.routed_stateful".into(), g(&self.routed_stateful)),
            ("cluster.local_answers".into(), g(&self.local_answers)),
            ("cluster.failed_over".into(), g(&self.failed_over)),
            ("cluster.no_backend".into(), g(&self.no_backend)),
            ("cluster.health_flips".into(), g(&self.health_flips)),
            ("cluster.drains".into(), g(&self.drains)),
            ("cluster.subscriptions".into(), g(&self.subscriptions)),
            ("cluster.push_relayed".into(), g(&self.push_relayed)),
            ("cluster.protocol_errors".into(), g(&self.protocol_errors)),
            ("cluster.rejected".into(), g(&self.rejected)),
            ("cluster.backends".into(), backends.len() as u64),
            (
                "cluster.backends_available".into(),
                backends.iter().filter(|b| b.available()).count() as u64,
            ),
        ];
        for b in backends {
            let probe = b.probe_health();
            let rows: [(&str, u64); 8] = [
                ("routed", b.routed.load(Ordering::Relaxed)),
                ("errors", b.errors.load(Ordering::Relaxed)),
                ("healthy", u64::from(b.healthy())),
                ("draining", u64::from(b.draining())),
                ("mean_relay_us", b.mean_relay_us()),
                ("queue_depth", probe.queue_depth),
                ("open_graphs", probe.open_graphs),
                ("uptime_s", probe.uptime_s),
            ];
            for (field, value) in rows {
                out.push((format!("backend.{}.{field}", b.id), value));
            }
        }
        out
    }
}
