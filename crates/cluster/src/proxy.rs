//! The coordinator proxy: accept loop, request classification, routing,
//! and relay.
//!
//! The worker structure mirrors `pacds_serve::server` — one acceptor
//! feeding a bounded queue, a small worker pool, explicit backpressure
//! with a pre-encoded `Rejected` frame — because the coordinator *is* a
//! protocol server; it just answers most frames by asking someone else.
//!
//! Per frame kind:
//!
//! * `ComputeCds` / `GenCompute` — decoded just far enough to derive the
//!   canonical request digest (`pacds_serve::keys`), then relayed verbatim
//!   to the ring owner. The digest is the backends' cache key, so the ring
//!   and the backend LRUs agree by construction.
//! * `OpenGraph` / `Mutate` / `CloseGraph` / `QueryTile` — routed by the
//!   graph-*name* digest: a named graph and all frames touching it pin to
//!   one backend for the graph's lifetime.
//! * `Subscribe` — pinned like the other stateful frames (stats-only
//!   subscriptions route by a fixed key); on ack the connection pair is
//!   handed to a dedicated relay thread that pumps backend pushes to the
//!   client byte-for-byte.
//! * `Ping` / `Stats` — answered locally: a coordinator's liveness and
//!   counters are its own, not some backend's.
//!
//! Failover is retry-once: a relay that dies on its fresh connection marks
//! the backend down, and the request is re-sent to the next distinct
//! backend clockwise — at most one such hop, then a typed `Rejected`.
//! Retrying is always safe: a backend that died took its state with it
//! (there is nothing half-applied to double-apply), and a stateful frame
//! failing over to a backend that never saw the graph gets a typed
//! `UnknownGraph` — **cold, never wrong**.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pacds_serve::keys;
use pacds_serve::protocol::{
    self, encode_error, ComputeCdsRequest, ErrorCode, GenComputeRequest, RequestKind, ResponseKind,
    StatsFormat, WireWrite, DEFAULT_MAX_FRAME_LEN, LEN_PREFIX, PROTOCOL_VERSION,
};

use crate::health::{probe_all, Backend};
use crate::pool::{response_is_fatal_error, ConnPool};
use crate::ring::{HashRing, DEFAULT_VNODES, MAX_BACKENDS};
use crate::{BackendSpec, ClusterStats};

/// How often blocked reads poll the shutdown flag (mirrors serve).
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Write timeout towards subscribed clients: the relay holds no queue, so
/// a stalled client is disconnected rather than buffered for.
const PUSH_WRITE_TIMEOUT: Duration = Duration::from_millis(500);

/// Routing key for stats-only subscriptions (no graph name to pin by).
const SUBSCRIBE_STATS_KEY: u128 = 0;

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Proxy worker threads (0 = 4).
    pub workers: usize,
    /// Accept-queue depth (0 = 4 × workers).
    pub queue: usize,
    /// Virtual nodes per backend on the ring (0 = [`DEFAULT_VNODES`]).
    pub vnodes: u32,
    /// Idle connections retained per backend pool.
    pub max_idle: usize,
    /// Backend connect timeout.
    pub connect_timeout: Duration,
    /// Per-read timeout while awaiting a backend response (None = wait
    /// forever; the health prober still reaps wedged backends).
    pub relay_timeout: Option<Duration>,
    /// Health-probe cadence.
    pub probe_interval: Duration,
    /// Consecutive failed probes before a healthy backend is marked down.
    pub fail_threshold: u32,
    /// Consecutive successful probes before a down backend is marked up.
    pub rise_threshold: u32,
    /// Maximum accepted frame payload length.
    pub max_frame_len: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue: 0,
            vnodes: 0,
            max_idle: 2,
            connect_timeout: Duration::from_secs(2),
            relay_timeout: Some(Duration::from_secs(30)),
            probe_interval: Duration::from_millis(200),
            fail_threshold: 2,
            rise_threshold: 2,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// Shared coordinator state.
#[derive(Debug)]
pub struct ClusterState {
    /// Configured backends, ring-member order.
    pub backends: Vec<Arc<Backend>>,
    /// The consistent-hash ring over backend ids.
    pub ring: HashRing,
    /// Always-on coordinator counters.
    pub stats: ClusterStats,
    /// Maximum accepted frame payload length.
    pub max_frame_len: u32,
}

impl ClusterState {
    /// First available backend clockwise from `key`, skipping `exclude`.
    pub fn owner(&self, key: u128, exclude: Option<u32>) -> Option<&Arc<Backend>> {
        let idx = self
            .ring
            .owner(key, |b| self.backends[b as usize].available(), exclude)?;
        Some(&self.backends[idx as usize])
    }

    /// Starts draining the backend with `id`: it stops receiving new
    /// requests (its arcs fall to their clockwise successors), while
    /// requests already relaying on its sockets run to completion — the
    /// drain severs nothing. Returns `false` for an unknown id.
    pub fn drain(&self, id: &str) -> bool {
        let Some(b) = self.backends.iter().find(|b| b.id == id) else {
            return false;
        };
        b.set_draining(true);
        self.stats.drains.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Reverses a drain: the backend resumes exactly its old arcs (ring
    /// positions depend only on ids).
    pub fn undrain(&self, id: &str) -> bool {
        let Some(b) = self.backends.iter().find(|b| b.id == id) else {
            return false;
        };
        b.set_draining(false);
        true
    }
}

/// A running coordinator. Dropping it shuts it down.
#[derive(Debug)]
pub struct ClusterHandle {
    addr: SocketAddr,
    state: Arc<ClusterState>,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    prober: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ClusterHandle {
    /// The bound coordinator address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared coordinator state (ring, backends, counters).
    pub fn state(&self) -> &Arc<ClusterState> {
        &self.state
    }

    /// Starts draining the backend with `id` — see [`ClusterState::drain`].
    pub fn drain(&self, id: &str) -> bool {
        self.state.drain(id)
    }

    /// Reverses a drain — see [`ClusterState::undrain`].
    pub fn undrain(&self, id: &str) -> bool {
        self.state.undrain(id)
    }

    /// Stops accepting, drains queued and in-flight work, joins all
    /// threads. Idempotent. (Detached subscribe-relay threads observe the
    /// flag within one poll interval and exit on their own.)
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ClusterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` and starts coordinating `backends`. Returns once the
/// listener is live (backends may still be down: the ring starts
/// optimistic and the prober/data path converge it).
pub fn cluster(
    addr: &str,
    backends: &[BackendSpec],
    cfg: ClusterConfig,
) -> io::Result<ClusterHandle> {
    if backends.is_empty() || backends.len() > MAX_BACKENDS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "cluster needs 1..=64 backends",
        ));
    }
    for (i, b) in backends.iter().enumerate() {
        if b.id.is_empty() || backends[..i].iter().any(|o| o.id == b.id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "backend ids must be non-empty and distinct",
            ));
        }
    }
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let workers = if cfg.workers == 0 { 4 } else { cfg.workers };
    let queue = if cfg.queue == 0 { workers * 4 } else { cfg.queue };
    let vnodes = if cfg.vnodes == 0 { DEFAULT_VNODES } else { cfg.vnodes };

    let members: Vec<Arc<Backend>> = backends
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            Arc::new(Backend::new(
                spec.id.clone(),
                spec.addr.clone(),
                i as u32,
                ConnPool::new(
                    spec.addr.clone(),
                    cfg.max_idle,
                    cfg.connect_timeout,
                    cfg.relay_timeout,
                    cfg.max_frame_len,
                ),
            ))
        })
        .collect();
    let ids: Vec<&str> = backends.iter().map(|b| b.id.as_str()).collect();
    let state = Arc::new(ClusterState {
        backends: members,
        ring: HashRing::build(&ids, vnodes),
        stats: ClusterStats::default(),
        max_frame_len: cfg.max_frame_len,
    });
    let stop = Arc::new(AtomicBool::new(false));

    let (tx, rx) = sync_channel::<TcpStream>(queue);
    let rx = Arc::new(Mutex::new(rx));
    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("pacds-cluster-{i}"))
                .spawn(move || worker_loop(&rx, &state, &stop))?,
        );
    }

    let mut rejected_frame = Vec::new();
    encode_error(
        &mut rejected_frame,
        ErrorCode::Rejected,
        "coordinator queue full; retry later",
    );
    let acceptor = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("pacds-cluster-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    match tx.try_send(conn) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut conn)) => {
                            state.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            let _ = conn.write_all(&rejected_frame);
                            let _ = conn.flush();
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            })?
    };

    let prober = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        let (interval, fail_t, rise_t) = (cfg.probe_interval, cfg.fail_threshold, cfg.rise_threshold);
        std::thread::Builder::new()
            .name("pacds-cluster-probe".into())
            .spawn(move || {
                let mut clients = Vec::new();
                clients.resize_with(state.backends.len(), || None);
                while !stop.load(Ordering::SeqCst) {
                    probe_all(&state.backends, &mut clients, fail_t, rise_t, &state.stats);
                    // Stop-aware sleep in small steps.
                    let until = Instant::now() + interval;
                    while Instant::now() < until && !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(25).min(interval));
                    }
                }
            })?
    };

    Ok(ClusterHandle {
        addr,
        state,
        stop,
        acceptor: Some(acceptor),
        prober: Some(prober),
        workers: worker_handles,
    })
}

/// Per-worker retained buffers.
struct ProxyScratch {
    /// Canonicalised edge buffer for compute-key derivation.
    edges: Vec<(u32, u32)>,
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, state: &Arc<ClusterState>, stop: &Arc<AtomicBool>) {
    let mut scratch = ProxyScratch { edges: Vec::new() };
    let mut frame = Vec::new();
    let mut resp = Vec::new();
    loop {
        let conn = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv_timeout(POLL_INTERVAL)
        };
        match conn {
            Ok(conn) => serve_connection(conn, state, &mut scratch, &mut frame, &mut resp, stop),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// What the connection loop should do after a routed frame.
enum Outcome {
    /// `resp` holds a complete frame; write it, keep the connection.
    Reply,
    /// Write `resp`, then close (framing lost or backend went fatal).
    CloseAfterReply,
    /// The connection was handed to a subscribe-relay thread.
    Subscribed,
}

fn serve_connection(
    mut conn: TcpStream,
    state: &Arc<ClusterState>,
    scratch: &mut ProxyScratch,
    frame: &mut Vec<u8>,
    resp: &mut Vec<u8>,
    stop: &Arc<AtomicBool>,
) {
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        match read_frame(&mut conn, state, frame, stop) {
            FrameRead::Frame => {}
            FrameRead::Closed => return,
            FrameRead::TooLarge => {
                state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                resp.clear();
                encode_error(resp, ErrorCode::Oversized, "frame exceeds maximum length");
                let _ = conn.write_all(resp);
                return;
            }
        }
        resp.clear();
        let outcome = route_frame(state, scratch, frame, resp, &mut conn, stop);
        match outcome {
            Outcome::Reply => {
                if conn.write_all(resp).is_err() {
                    return;
                }
            }
            Outcome::CloseAfterReply => {
                let _ = conn.write_all(resp);
                return;
            }
            Outcome::Subscribed => return,
        }
        // Shutdown is observed between frames: a continuously-streaming
        // client never leaves the socket idle, so the idle check in
        // `read_frame` alone would let it pin this worker past
        // `shutdown()`.
        if stop.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Classifies one request frame (`frame` = prefix + payload) and answers
/// it — locally, or by relaying to the routed backend.
fn route_frame(
    state: &Arc<ClusterState>,
    scratch: &mut ProxyScratch,
    frame: &[u8],
    resp: &mut Vec<u8>,
    conn: &mut TcpStream,
    stop: &Arc<AtomicBool>,
) -> Outcome {
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    let route_timer = pacds_obs::phase_timer(pacds_obs::Phase::ClusterRoute);
    let payload = &frame[LEN_PREFIX..];
    if payload.len() < 2 {
        return protocol_error(state, resp, ErrorCode::Malformed, "payload shorter than header");
    }
    if payload[0] != PROTOCOL_VERSION {
        return protocol_error(state, resp, ErrorCode::UnsupportedVersion, "unsupported version");
    }
    let Some(kind) = RequestKind::from_wire(payload[1]) else {
        return protocol_error(state, resp, ErrorCode::UnknownKind, "unknown request kind");
    };
    let body = &payload[2..];
    let (key, stateful) = match kind {
        RequestKind::Ping => {
            state.stats.local_answers.fetch_add(1, Ordering::Relaxed);
            protocol::begin_frame(resp, ResponseKind::Pong as u8);
            protocol::end_frame(resp);
            return Outcome::Reply;
        }
        RequestKind::Stats => return local_stats(state, body, resp),
        RequestKind::ComputeCds => match compute_key_of(scratch, body) {
            Ok(key) => (key, false),
            Err(e) => return decode_failed(state, resp, &e),
        },
        RequestKind::GenCompute => match GenComputeRequest::decode(body) {
            Ok(req) => (keys::gen_key(&req), false),
            Err(e) => return decode_failed(state, resp, &e),
        },
        RequestKind::OpenGraph | RequestKind::Mutate | RequestKind::CloseGraph
        | RequestKind::QueryTile => match peek_graph_name(body) {
            Ok(name) => (keys::graph_name_key(name), true),
            Err(e) => return decode_failed(state, resp, &e),
        },
        RequestKind::Subscribe => {
            let key = match protocol::decode_subscribe(body) {
                Ok(req) => req
                    .graph
                    .map_or(SUBSCRIBE_STATS_KEY, keys::graph_name_key),
                Err(e) => return decode_failed(state, resp, &e),
            };
            drop(route_timer);
            return relay_subscribe(state, key, frame, resp, conn, stop);
        }
    };
    drop(route_timer);
    relay(state, key, stateful, frame, resp)
}

/// Relays `frame` to the ring owner of `key`, failing over at most once.
fn relay(
    state: &Arc<ClusterState>,
    key: u128,
    stateful: bool,
    frame: &[u8],
    resp: &mut Vec<u8>,
) -> Outcome {
    let _relay_timer = pacds_obs::phase_timer(pacds_obs::Phase::ClusterRelay);
    let mut exclude = None;
    for attempt in 0..2u32 {
        let Some(backend) = state.owner(key, exclude) else {
            break;
        };
        let t0 = Instant::now();
        match backend.pool.round_trip(frame, resp) {
            Ok(()) => {
                backend.record_relay_ns(t0.elapsed().as_nanos() as u64);
                backend.routed.fetch_add(1, Ordering::Relaxed);
                state.stats.routed.fetch_add(1, Ordering::Relaxed);
                pacds_obs::inc(pacds_obs::Counter::ClusterRouted);
                if stateful {
                    state.stats.routed_stateful.fetch_add(1, Ordering::Relaxed);
                }
                if attempt > 0 {
                    state.stats.failed_over.fetch_add(1, Ordering::Relaxed);
                    pacds_obs::inc(pacds_obs::Counter::ClusterFailedOver);
                }
                return if response_is_fatal_error(resp) {
                    // The backend is closing its end; mirror that to our
                    // client — the relayed frame still carries the typed
                    // error that explains why.
                    Outcome::CloseAfterReply
                } else {
                    Outcome::Reply
                };
            }
            Err(_) => {
                // A fresh dial failed: the backend is gone right now. Mark
                // it down and walk on — the next distinct backend answers
                // this request (cold at worst, never wrong).
                backend.data_failure(&state.stats);
                exclude = Some(backend.index);
            }
        }
    }
    state.stats.no_backend.fetch_add(1, Ordering::Relaxed);
    pacds_obs::inc(pacds_obs::Counter::ClusterNoBackend);
    resp.clear();
    encode_error(resp, ErrorCode::Rejected, "no healthy backend");
    Outcome::Reply
}

/// Relays a Subscribe frame to the pinned backend on a dedicated
/// connection; on a successful ack the `(backend, client)` socket pair is
/// handed to a detached pump thread and the worker is released.
fn relay_subscribe(
    state: &Arc<ClusterState>,
    key: u128,
    frame: &[u8],
    resp: &mut Vec<u8>,
    conn: &mut TcpStream,
    stop: &Arc<AtomicBool>,
) -> Outcome {
    let mut exclude = None;
    for _attempt in 0..2u32 {
        let Some(backend) = state.owner(key, exclude) else {
            break;
        };
        // Subscriptions own their socket for their whole lifetime; they
        // bypass the pool (and never return to it).
        let upstream = match backend.pool.dial().and_then(|mut up| {
            up.write_all(frame)?;
            read_one_frame(&mut up, state.max_frame_len, resp)?;
            Ok(up)
        }) {
            Ok(up) => up,
            Err(_) => {
                backend.data_failure(&state.stats);
                exclude = Some(backend.index);
                continue;
            }
        };
        backend.routed.fetch_add(1, Ordering::Relaxed);
        state.stats.routed.fetch_add(1, Ordering::Relaxed);
        pacds_obs::inc(pacds_obs::Counter::ClusterRouted);
        if resp.get(LEN_PREFIX + 1) != Some(&(ResponseKind::SubscribeAck as u8)) {
            // The backend declined (typed error — e.g. UnknownGraph after
            // a failover); relay its answer, stay in request mode.
            return if response_is_fatal_error(resp) {
                Outcome::CloseAfterReply
            } else {
                Outcome::Reply
            };
        }
        if conn.write_all(resp).is_err() {
            return Outcome::Subscribed; // client gone; nothing to pump
        }
        state.stats.subscriptions.fetch_add(1, Ordering::Relaxed);
        let client = match conn.try_clone() {
            Ok(c) => c,
            Err(_) => return Outcome::Subscribed,
        };
        let state = Arc::clone(state);
        let stop = Arc::clone(stop);
        let sub_id = state.stats.subscriptions.load(Ordering::Relaxed);
        let spawned = std::thread::Builder::new()
            .name(format!("pacds-cluster-push-{sub_id}"))
            .spawn(move || pump_pushes(upstream, client, &state, &stop));
        drop(spawned);
        return Outcome::Subscribed;
    }
    state.stats.no_backend.fetch_add(1, Ordering::Relaxed);
    pacds_obs::inc(pacds_obs::Counter::ClusterNoBackend);
    resp.clear();
    encode_error(resp, ErrorCode::Rejected, "no healthy backend");
    Outcome::Reply
}

/// Pumps pushed frames backend → client, one retained buffer, no queue:
/// the socket pair provides all the backpressure there is, and a client
/// that stalls past [`PUSH_WRITE_TIMEOUT`] is disconnected instead of
/// buffered for — the coordinator's subscribe path is O(1) memory per
/// subscriber by construction. A backend-side lag NACK
/// ([`ErrorCode::SubscriberLagged`]) is just another frame here: relayed
/// verbatim, then both sockets close (the backend closed its end).
fn pump_pushes(mut upstream: TcpStream, mut client: TcpStream, state: &ClusterState, stop: &AtomicBool) {
    let _ = upstream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = client.set_write_timeout(Some(PUSH_WRITE_TIMEOUT));
    let mut buf = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match read_one_frame_polling(&mut upstream, state.max_frame_len, &mut buf, stop) {
            Ok(true) => {}
            Ok(false) => continue, // idle poll tick
            Err(_) => return,      // backend closed (incl. after a lag NACK)
        }
        if client.write_all(&buf).is_err() {
            return;
        }
        state.stats.push_relayed.fetch_add(1, Ordering::Relaxed);
        pacds_obs::inc(pacds_obs::Counter::ClusterPushRelayed);
    }
}

/// Answers a Stats request with the coordinator's own counters (global +
/// per-backend), in the standard StatsResult frame shape. The text block
/// renders the same table/JSONL/Prometheus forms a backend would, from
/// the coordinator's obs snapshot; the Health form leaves it empty.
fn local_stats(state: &ClusterState, body: &[u8], resp: &mut Vec<u8>) -> Outcome {
    let mut r = protocol::Reader::new(body);
    let format = match r.u8().map(StatsFormat::from_wire) {
        Ok(Some(f)) => f,
        Ok(None) => {
            state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            encode_error(resp, ErrorCode::BadInput, "stats format");
            return Outcome::Reply;
        }
        Err(e) => return decode_failed(state, resp, &e),
    };
    if let Err(e) = r.finish() {
        return decode_failed(state, resp, &e);
    }
    state.stats.local_answers.fetch_add(1, Ordering::Relaxed);
    let entries = state.stats.entries(&state.backends);
    let mut text = Vec::new();
    match format {
        StatsFormat::Health => {}
        StatsFormat::Table => {
            for (name, value) in &entries {
                text.extend_from_slice(format!("{name:<32} {value}\n").as_bytes());
            }
        }
        StatsFormat::Jsonl => {
            let _ = pacds_obs::write_jsonl(&pacds_obs::Snapshot::capture(), &mut text);
        }
        StatsFormat::Prometheus => {
            let _ = pacds_obs::write_prometheus(&pacds_obs::Snapshot::capture(), &mut text);
        }
    }
    protocol::begin_frame(resp, ResponseKind::StatsResult as u8);
    resp.put_u32(entries.len() as u32);
    for (name, value) in &entries {
        resp.put_u16(name.len() as u16);
        resp.put(name.as_bytes());
        resp.put_u64(*value);
    }
    resp.put_u32(text.len() as u32);
    resp.put(&text);
    protocol::end_frame(resp);
    Outcome::Reply
}

/// Derives the canonical compute key: validates and canonicalises the edge
/// list exactly as a backend would, so coordinator and backend agree on
/// both the digest and what counts as `BadInput`.
fn compute_key_of(scratch: &mut ProxyScratch, body: &[u8]) -> Result<u128, protocol::DecodeError> {
    let req = ComputeCdsRequest::decode(body)?;
    let n = req.n;
    scratch.edges.clear();
    for (u, v) in req.edges() {
        if u >= n || v >= n {
            return Err(protocol::DecodeError::Bad("edge endpoint out of range"));
        }
        if u == v {
            return Err(protocol::DecodeError::Bad("self-loop"));
        }
        scratch.edges.push((u, v));
    }
    pacds_graph::canonicalize_edges(&mut scratch.edges);
    Ok(keys::compute_key(&req.cfg, req.energy_raw, n, &scratch.edges))
}

/// Reads the leading `name_len u16 | name` all stateful request bodies
/// start with — the only part the coordinator needs; the pinned backend
/// performs the full decode and answers any deeper malformation itself.
fn peek_graph_name(body: &[u8]) -> Result<&str, protocol::DecodeError> {
    let mut r = protocol::Reader::new(body);
    let len = r.u16()? as usize;
    if len == 0 || len > protocol::MAX_GRAPH_NAME {
        return Err(protocol::DecodeError::Bad("graph name length"));
    }
    std::str::from_utf8(r.bytes(len)?).map_err(|_| protocol::DecodeError::Bad("graph name utf-8"))
}

fn protocol_error(
    state: &ClusterState,
    resp: &mut Vec<u8>,
    code: ErrorCode,
    msg: &str,
) -> Outcome {
    state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
    resp.clear();
    encode_error(resp, code, msg);
    if code.is_connection_fatal() {
        Outcome::CloseAfterReply
    } else {
        Outcome::Reply
    }
}

/// Mirrors the backend's decode-failure mapping (`Bad` keeps the
/// connection, framing-level failures close it).
fn decode_failed(
    state: &ClusterState,
    resp: &mut Vec<u8>,
    err: &protocol::DecodeError,
) -> Outcome {
    match err {
        protocol::DecodeError::Bad(what) => {
            state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            resp.clear();
            encode_error(resp, ErrorCode::BadInput, what);
            Outcome::Reply
        }
        protocol::DecodeError::Truncated => {
            protocol_error(state, resp, ErrorCode::Malformed, "truncated body")
        }
        protocol::DecodeError::Trailing => {
            protocol_error(state, resp, ErrorCode::Malformed, "trailing bytes after body")
        }
    }
}

enum FrameRead {
    Frame,
    Closed,
    TooLarge,
}

/// Reads one length-prefixed frame — *prefix retained* in `frame`, ready
/// to forward verbatim — polling the shutdown flag while idle between
/// frames (same drain guarantee as the backend server: a frame whose
/// prefix has arrived completes, and its response is written, before the
/// worker exits).
fn read_frame(
    conn: &mut TcpStream,
    state: &ClusterState,
    frame: &mut Vec<u8>,
    stop: &AtomicBool,
) -> FrameRead {
    let mut prefix = [0u8; LEN_PREFIX];
    let mut got = 0usize;
    while got < LEN_PREFIX {
        match conn.read(&mut prefix[got..]) {
            Ok(0) => return FrameRead::Closed,
            Ok(k) => got += k,
            Err(e) if is_timeout(&e) => {
                if got == 0 && stop.load(Ordering::SeqCst) {
                    return FrameRead::Closed;
                }
            }
            Err(_) => return FrameRead::Closed,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > state.max_frame_len as usize {
        return FrameRead::TooLarge;
    }
    frame.clear();
    frame.extend_from_slice(&prefix);
    frame.resize(LEN_PREFIX + len, 0);
    let mut got = 0usize;
    while got < len {
        match conn.read(&mut frame[LEN_PREFIX + got..]) {
            Ok(0) => return FrameRead::Closed,
            Ok(k) => got += k,
            Err(e) if is_timeout(&e) => {}
            Err(_) => return FrameRead::Closed,
        }
    }
    FrameRead::Frame
}

/// Blocking read of one complete frame (prefix retained). Used for the
/// subscribe ack, where the socket has no poll loop yet.
fn read_one_frame(conn: &mut TcpStream, max_len: u32, buf: &mut Vec<u8>) -> io::Result<()> {
    let mut prefix = [0u8; LEN_PREFIX];
    read_exact_patient(conn, &mut prefix)?;
    finish_frame(conn, max_len, prefix, buf)
}

/// Poll-friendly read of one frame: `Ok(false)` when the read timed out
/// before any prefix byte arrived (idle tick — caller checks `stop`).
fn read_one_frame_polling(
    conn: &mut TcpStream,
    max_len: u32,
    buf: &mut Vec<u8>,
    stop: &AtomicBool,
) -> io::Result<bool> {
    let mut prefix = [0u8; LEN_PREFIX];
    let mut got = 0usize;
    while got < LEN_PREFIX {
        match conn.read(&mut prefix[got..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(k) => got += k,
            Err(e) if is_timeout(&e) => {
                if got == 0 {
                    return Ok(false);
                }
                if stop.load(Ordering::SeqCst) {
                    return Err(io::ErrorKind::TimedOut.into());
                }
            }
            Err(e) => return Err(e),
        }
    }
    finish_frame(conn, max_len, prefix, buf)?;
    Ok(true)
}

fn finish_frame(
    conn: &mut TcpStream,
    max_len: u32,
    prefix: [u8; LEN_PREFIX],
    buf: &mut Vec<u8>,
) -> io::Result<()> {
    let len = u32::from_le_bytes(prefix) as usize;
    if len < 2 || len > max_len as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length out of range",
        ));
    }
    buf.clear();
    buf.extend_from_slice(&prefix);
    buf.resize(LEN_PREFIX + len, 0);
    read_exact_patient(conn, &mut buf[LEN_PREFIX..])
}

/// `read_exact` that rides out socket-timeout ticks (the sockets here
/// carry read timeouts for poll loops; mid-frame we keep waiting).
fn read_exact_patient(conn: &mut TcpStream, out: &mut [u8]) -> io::Result<()> {
    let mut got = 0usize;
    while got < out.len() {
        match conn.read(&mut out[got..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(k) => got += k,
            Err(e) if is_timeout(&e) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}
