//! Per-backend bounded connection pools with byte-for-byte frame relay.
//!
//! The coordinator never re-encodes: a request frame is forwarded to the
//! backend exactly as received, and the backend's response frame is
//! returned exactly as sent (length prefix included), so every protocol
//! property — cache-hit flags, typed errors, versioning — passes through
//! untouched. Cache coherence survives proxying because the backends key
//! on canonical *content* (`pacds_serve::keys`), not wire bytes.
//!
//! Pooling is deliberately simple: at most `max_idle` idle sockets are
//! retained per backend (extras are closed on check-in), and a relay
//! failure on a *pooled* socket is retried once on a freshly dialed one —
//! idle connections go stale whenever a backend restarts, and that
//! staleness must not masquerade as a dead backend. Only a fresh dial's
//! verdict escalates to the caller.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use pacds_serve::protocol::{ErrorCode, ResponseKind, LEN_PREFIX};

/// A bounded pool of connections to one backend.
#[derive(Debug)]
pub struct ConnPool {
    addr: String,
    idle: Mutex<Vec<TcpStream>>,
    max_idle: usize,
    connect_timeout: Duration,
    /// Per-read socket timeout while awaiting a backend response; bounds
    /// how long a wedged (not dead) backend can pin a coordinator worker.
    relay_timeout: Option<Duration>,
    max_frame_len: u32,
}

impl ConnPool {
    /// A pool dialing `addr`.
    pub fn new(
        addr: String,
        max_idle: usize,
        connect_timeout: Duration,
        relay_timeout: Option<Duration>,
        max_frame_len: u32,
    ) -> Self {
        Self {
            addr,
            idle: Mutex::new(Vec::new()),
            max_idle,
            connect_timeout,
            relay_timeout,
            max_frame_len,
        }
    }

    /// The backend address this pool dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn resolve(&self) -> io::Result<SocketAddr> {
        self.addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))
    }

    /// Dials a fresh connection (also used directly for Subscribe relays,
    /// which own their socket for the subscription's lifetime and never
    /// return it to the pool).
    pub fn dial(&self) -> io::Result<TcpStream> {
        let conn = TcpStream::connect_timeout(&self.resolve()?, self.connect_timeout)?;
        conn.set_nodelay(true)?;
        conn.set_read_timeout(self.relay_timeout)?;
        Ok(conn)
    }

    fn pop_idle(&self) -> Option<TcpStream> {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    fn put_idle(&self, conn: TcpStream) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
        // Over the bound: drop — the socket closes, the backend reaps it.
    }

    /// Closes all idle connections (called when the backend flips down, so
    /// a recovery starts from fresh sockets instead of a graveyard).
    pub fn clear_idle(&self) {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// Forwards one complete request frame and reads one complete response
    /// frame into `resp` (length prefix included, relayable verbatim).
    ///
    /// A failure on a pooled socket falls through to one fresh dial; a
    /// failure on the fresh socket is the backend's answer and surfaces as
    /// the error. On success the socket is pooled again — unless the
    /// response is a connection-fatal error frame, after which the backend
    /// closes its end.
    pub fn round_trip(&self, frame: &[u8], resp: &mut Vec<u8>) -> io::Result<()> {
        if let Some(mut conn) = self.pop_idle() {
            if self.relay(&mut conn, frame, resp).is_ok() {
                self.maybe_reuse(conn, resp);
                return Ok(());
            }
        }
        let mut conn = self.dial()?;
        self.relay(&mut conn, frame, resp)?;
        self.maybe_reuse(conn, resp);
        Ok(())
    }

    /// One write + one framed read on an established connection.
    fn relay(&self, conn: &mut TcpStream, frame: &[u8], resp: &mut Vec<u8>) -> io::Result<()> {
        conn.write_all(frame)?;
        let mut prefix = [0u8; LEN_PREFIX];
        conn.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len < 2 || len > self.max_frame_len as usize {
            // The backend broke framing; treated like a dead backend by
            // the caller (fail over), which is safe — the request is
            // simply re-answered by a sane one.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "backend response frame length out of range",
            ));
        }
        resp.clear();
        resp.extend_from_slice(&prefix);
        resp.resize(LEN_PREFIX + len, 0);
        conn.read_exact(&mut resp[LEN_PREFIX..])?;
        Ok(())
    }

    fn maybe_reuse(&self, conn: TcpStream, resp: &[u8]) {
        if !response_is_fatal_error(resp) {
            self.put_idle(conn);
        }
    }
}

/// Whether a relayed response frame (prefix included) is a typed error
/// the backend considers connection-fatal — it will close its end, so the
/// socket must not be pooled and the client side should be closed too.
pub fn response_is_fatal_error(resp: &[u8]) -> bool {
    resp.get(LEN_PREFIX + 1) == Some(&(ResponseKind::Error as u8))
        && resp
            .get(LEN_PREFIX + 2)
            .and_then(|&b| ErrorCode::from_wire(b))
            .is_some_and(ErrorCode::is_connection_fatal)
}
