//! Protocol execution engines.
//!
//! [`run_distributed`] spawns one OS thread per host, connected by
//! crossbeam channels — a real concurrent actor system in which the only
//! information flow is explicit messages between radio neighbours.
//! [`run_distributed_sequential`] runs the identical per-node code
//! round-robin on one thread (useful inside tight simulation loops and for
//! deterministic debugging).

use crate::node::{LocalView, NeighborInfo, NodeState};
use crossbeam::channel::{unbounded, Receiver, Sender};
use pacds_core::{CdsConfig, EnergyLevel, Policy, PruneSchedule, Rule2Semantics};
use pacds_graph::{Graph, NodeId, VertexMask};
use std::collections::HashMap;

/// A protocol message between radio neighbours.
#[derive(Debug, Clone)]
enum Message {
    /// Round 1: neighbour set + energy level.
    Hello {
        from: NodeId,
        neighbors: Vec<NodeId>,
        energy: EnergyLevel,
    },
    /// Rounds 2–3: marker status after marking / after Rule 1. Tagged with
    /// the round number: a fast neighbour may send its round-3 marker
    /// before a slow one sends round-2, and both land in the same mailbox.
    Marker {
        from: NodeId,
        round: u8,
        marked: bool,
    },
}

fn effective_semantics(cfg: &CdsConfig) -> Rule2Semantics {
    match cfg.policy {
        Policy::Id => Rule2Semantics::MinOfThree,
        _ => cfg.rule2,
    }
}

/// Runs the full protocol with one thread per host.
///
/// `energy[v]` defaults to 0 for all hosts when `None` (only consulted by
/// the energy-aware policies).
///
/// # Panics
/// Panics if `cfg.schedule` is [`PruneSchedule::Fixpoint`]: fixpoint
/// iteration needs global termination detection, which the localized
/// protocol deliberately does not have.
pub fn run_distributed(g: &Graph, energy: Option<&[EnergyLevel]>, cfg: &CdsConfig) -> VertexMask {
    assert_eq!(
        cfg.schedule,
        PruneSchedule::SinglePass,
        "the distributed protocol runs the paper's single-pass schedule"
    );
    assert_eq!(
        cfg.application,
        pacds_core::Application::Simultaneous,
        "a sequential in-place sweep has no localized implementation: every \
         host would need to observe removals by all lower-priority hosts"
    );
    run_distributed_counted(g, energy, cfg).0
}

/// Like [`run_distributed`], additionally returning the total number of
/// messages the hosts actually sent (used to validate the analytic
/// [`crate::stats::protocol_stats`]).
pub fn run_distributed_counted(
    g: &Graph,
    energy: Option<&[EnergyLevel]>,
    cfg: &CdsConfig,
) -> (VertexMask, u64) {
    let n = g.n();
    pacds_obs::inc(pacds_obs::Counter::DistRuns);
    if n == 0 {
        return (Vec::new(), 0);
    }
    // Wire the mailboxes: one channel per host; every host gets the Senders
    // of its radio neighbours and nothing else.
    let mut senders: Vec<Sender<Message>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<Message>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let cfg = *cfg;
    let sent = std::sync::atomic::AtomicU64::new(0);
    let results = parking_lot::Mutex::new(vec![false; n]);
    std::thread::scope(|scope| {
        for v in 0..n as NodeId {
            let inbox = receivers[v as usize].take().expect("receiver taken once");
            let outboxes: Vec<(NodeId, Sender<Message>)> = g
                .neighbors(v)
                .iter()
                .map(|&u| (u, senders[u as usize].clone()))
                .collect();
            let my_neighbors = g.neighbors(v).to_vec();
            let my_energy = energy.map_or(0, |e| e[v as usize]);
            let results = &results;
            let sent = &sent;
            scope.spawn(move || {
                let (marked, count) =
                    host_main(v, my_neighbors, my_energy, inbox, &outboxes, &cfg);
                sent.fetch_add(count, std::sync::atomic::Ordering::Relaxed);
                results.lock()[v as usize] = marked;
            });
        }
    });
    (
        results.into_inner(),
        sent.load(std::sync::atomic::Ordering::Relaxed),
    )
}

/// The per-host protocol body. Receives exactly `deg(v)` messages per
/// round, so rounds self-synchronise through the channels.
fn host_main(
    id: NodeId,
    neighbors: Vec<NodeId>,
    energy: EnergyLevel,
    inbox: Receiver<Message>,
    outboxes: &[(NodeId, Sender<Message>)],
    cfg: &CdsConfig,
) -> (bool, u64) {
    let deg = neighbors.len();
    let sent = std::cell::Cell::new(0u64);
    let broadcast = |msg: Message| {
        for (_, tx) in outboxes {
            // A send can only fail if the peer already finished — which
            // cannot happen before it has received all our messages.
            let _ = tx.send(msg.clone());
            sent.set(sent.get() + 1);
        }
    };

    // Round 1: hello.
    broadcast(Message::Hello {
        from: id,
        neighbors: neighbors.clone(),
        energy,
    });
    pacds_obs::add(pacds_obs::Counter::DistHelloMessages, deg as u64);
    // Early markers from fast neighbours (who finished their hello round
    // before we did) are stashed until their round is processed.
    let mut stash: Vec<Message> = Vec::new();
    let mut neighbor_info = HashMap::with_capacity(deg);
    let mut hellos = 0usize;
    while hellos < deg {
        match inbox.recv().expect("hello round") {
            Message::Hello {
                from,
                neighbors,
                energy,
            } => {
                neighbor_info.insert(from, NeighborInfo { neighbors, energy });
                hellos += 1;
            }
            marker @ Message::Marker { .. } => stash.push(marker),
        }
    }

    let view = LocalView {
        id,
        energy,
        neighbors,
        neighbor_info,
    };
    let mut state = NodeState::new(view);

    // Round 2: marking + marker exchange.
    state.marked = state.view.decide_marker();
    broadcast(Message::Marker {
        from: id,
        round: 2,
        marked: state.marked,
    });
    pacds_obs::add(pacds_obs::Counter::DistMarkerMessages, deg as u64);
    receive_markers(&inbox, deg, 2, &mut stash, &mut state);

    if !cfg.policy.prunes() {
        return (state.marked, sent.get());
    }

    // Round 3: Rule 1 on the snapshot, then exchange updated markers.
    let unmark1 = state.rule1_decides_unmark(cfg.policy);
    if unmark1 {
        state.marked = false;
    }
    broadcast(Message::Marker {
        from: id,
        round: 3,
        marked: state.marked,
    });
    pacds_obs::add(pacds_obs::Counter::DistMarkerMessages, deg as u64);
    receive_markers(&inbox, deg, 3, &mut stash, &mut state);

    // Round 4: Rule 2 on the post-Rule-1 markers. No further exchange is
    // needed: the decision is final for this update interval.
    if state.rule2_decides_unmark(cfg.policy, effective_semantics(cfg)) {
        state.marked = false;
    }
    (state.marked, sent.get())
}

/// Consumes exactly `deg` markers of round `want`, applying them to
/// `state`. Markers of *later* rounds that arrive early (per-sender FIFO
/// only orders messages from the same neighbour) are stashed and replayed
/// when their round comes up.
fn receive_markers(
    inbox: &Receiver<Message>,
    deg: usize,
    want: u8,
    stash: &mut Vec<Message>,
    state: &mut NodeState,
) {
    let mut got = 0usize;
    // Replay stashed messages for this round first.
    let mut i = 0;
    while i < stash.len() {
        if let Message::Marker { round, .. } = &stash[i] {
            if *round == want {
                if let Message::Marker { from, marked, .. } = stash.swap_remove(i) {
                    state.neighbor_marked.insert(from, marked);
                    got += 1;
                }
                continue;
            }
        }
        i += 1;
    }
    while got < deg {
        match inbox.recv().expect("marker round") {
            Message::Marker {
                from,
                round,
                marked,
            } => {
                if round == want {
                    state.neighbor_marked.insert(from, marked);
                    got += 1;
                } else {
                    debug_assert!(round > want, "a past round cannot reappear");
                    stash.push(Message::Marker {
                        from,
                        round,
                        marked,
                    });
                }
            }
            other => unreachable!("unexpected message in marker round: {other:?}"),
        }
    }
}

/// Runs the identical per-node logic deterministically on one thread.
///
/// Every host still only reads its own [`LocalView`] and its neighbours'
/// broadcast markers — the information flow is the same as
/// [`run_distributed`], just scheduled round-robin.
pub fn run_distributed_sequential(
    g: &Graph,
    energy: Option<&[EnergyLevel]>,
    cfg: &CdsConfig,
) -> VertexMask {
    assert_eq!(cfg.schedule, PruneSchedule::SinglePass);
    assert_eq!(cfg.application, pacds_core::Application::Simultaneous);
    let n = g.n();

    // Round 1 (hello): build each host's local view from its neighbours'
    // broadcasts.
    let mut states: Vec<NodeState> = (0..n as NodeId)
        .map(|v| {
            let mut neighbor_info = HashMap::new();
            for &u in g.neighbors(v) {
                neighbor_info.insert(
                    u,
                    NeighborInfo {
                        neighbors: g.neighbors(u).to_vec(),
                        energy: energy.map_or(0, |e| e[u as usize]),
                    },
                );
            }
            NodeState::new(LocalView {
                id: v,
                energy: energy.map_or(0, |e| e[v as usize]),
                neighbors: g.neighbors(v).to_vec(),
                neighbor_info,
            })
        })
        .collect();

    // Round 2: marking, then marker exchange.
    let markers: Vec<bool> = states.iter().map(|s| s.view.decide_marker()).collect();
    for (v, s) in states.iter_mut().enumerate() {
        s.marked = markers[v];
        for &u in g.neighbors(v as NodeId) {
            s.neighbor_marked.insert(u, markers[u as usize]);
        }
    }
    if !cfg.policy.prunes() {
        return markers;
    }

    // Round 3: Rule 1 (simultaneous), exchange.
    let after1: Vec<bool> = states
        .iter()
        .map(|s| s.marked && !s.rule1_decides_unmark(cfg.policy))
        .collect();
    for (v, s) in states.iter_mut().enumerate() {
        s.marked = after1[v];
        for &u in g.neighbors(v as NodeId) {
            s.neighbor_marked.insert(u, after1[u as usize]);
        }
    }

    // Round 4: Rule 2 (simultaneous).
    let semantics = effective_semantics(cfg);
    states
        .iter()
        .map(|s| s.marked && !s.rule2_decides_unmark(cfg.policy, semantics))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::{compute_cds, CdsInput};
    use pacds_graph::gen;
    use rand::SeedableRng;

    fn energies(n: usize, seed: u64) -> Vec<u64> {
        (0..n).map(|i| (seed.wrapping_mul(i as u64 + 1) >> 11) % 10).collect()
    }

    #[test]
    fn sequential_matches_centralized_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..30 {
            let n = 5 + (trial % 40);
            let g = gen::connected_gnp(&mut rng, n, 0.15, 8);
            let e = energies(n, trial as u64);
            for policy in Policy::ALL {
                for cfg in [CdsConfig::policy(policy), CdsConfig::paper(policy)] {
                    let central = compute_cds(&CdsInput::with_energy(&g, &e), &cfg);
                    let dist = run_distributed_sequential(&g, Some(&e), &cfg);
                    assert_eq!(central, dist, "trial {trial} policy {policy:?}");
                }
            }
        }
    }

    #[test]
    fn threaded_matches_centralized() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..5 {
            let n = 20 + trial * 10;
            let g = gen::connected_gnp(&mut rng, n, 0.12, 8);
            let e = energies(n, trial as u64);
            for policy in [Policy::Id, Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
                let cfg = CdsConfig::paper(policy);
                let central = compute_cds(&CdsInput::with_energy(&g, &e), &cfg);
                let dist = run_distributed(&g, Some(&e), &cfg);
                assert_eq!(central, dist, "trial {trial} policy {policy:?}");
            }
        }
    }

    #[test]
    fn threaded_handles_unit_disk_topologies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bounds = pacds_geom::Rect::paper_arena();
        let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, 60);
        let g = gen::unit_disk(bounds, 25.0, &pts);
        let e = energies(g.n(), 5);
        let cfg = CdsConfig::paper(Policy::EnergyDegree);
        // Works on possibly-disconnected graphs too: the protocol is local.
        let central = compute_cds(&CdsInput::with_energy(&g, &e), &cfg);
        let dist = run_distributed(&g, Some(&e), &cfg);
        assert_eq!(central, dist);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let cfg = CdsConfig::policy(Policy::Id);
        assert!(run_distributed(&Graph::new(0), None, &cfg).is_empty());
        assert_eq!(run_distributed(&Graph::new(1), None, &cfg), vec![false]);
        assert_eq!(
            run_distributed_sequential(&Graph::new(1), None, &cfg),
            vec![false]
        );
    }

    #[test]
    #[should_panic]
    fn fixpoint_schedule_is_rejected() {
        let g = gen::path(4);
        run_distributed(&g, None, &CdsConfig::fixpoint(Policy::Id));
    }
}
