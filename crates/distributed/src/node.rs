//! Per-host state and the purely local decision procedures.
//!
//! Everything in this module operates on a [`LocalView`]: the host's own
//! id, energy and neighbour list, plus what its neighbours told it. There
//! is deliberately no `Graph` anywhere in these signatures — a host cannot
//! consult global topology.

use pacds_core::{Policy, Rule2Semantics};
use pacds_graph::NodeId;
use std::collections::HashMap;

/// What a host knows after the hello round: its 2-hop neighbourhood.
#[derive(Debug, Clone)]
pub struct LocalView {
    /// This host's id.
    pub id: NodeId,
    /// This host's energy level.
    pub energy: u64,
    /// This host's open neighbour set, sorted.
    pub neighbors: Vec<NodeId>,
    /// For each neighbour: its open neighbour set (sorted) and energy.
    pub neighbor_info: HashMap<NodeId, NeighborInfo>,
}

/// One neighbour's hello payload.
#[derive(Debug, Clone)]
pub struct NeighborInfo {
    /// The neighbour's open neighbour set, sorted.
    pub neighbors: Vec<NodeId>,
    /// The neighbour's energy level.
    pub energy: u64,
}

/// Marker state a host tracks for itself and each neighbour.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// The local view (static during one update interval).
    pub view: LocalView,
    /// This host's marker.
    pub marked: bool,
    /// Last received marker of each neighbour.
    pub neighbor_marked: HashMap<NodeId, bool>,
}

impl LocalView {
    /// Whether neighbour lists know `b ∈ N(a)` — only valid when `a` is
    /// this host or one of its neighbours.
    fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        if a == self.id {
            return self.neighbors.binary_search(&b).is_ok();
        }
        self.neighbor_info
            .get(&a)
            .map(|i| i.neighbors.binary_search(&b).is_ok())
            .unwrap_or(false)
    }

    /// Step 3 of the marking process, decided purely locally: does this
    /// host have two neighbours that are not connected to each other?
    pub fn decide_marker(&self) -> bool {
        for (i, &x) in self.neighbors.iter().enumerate() {
            for &y in &self.neighbors[i + 1..] {
                if !self.adjacent(x, y) {
                    return true;
                }
            }
        }
        false
    }

    /// The priority key of `who` (this host or a neighbour) under `policy`,
    /// computed from exchanged information only.
    fn key(&self, policy: Policy, who: NodeId) -> [u64; 3] {
        let (deg, el) = if who == self.id {
            (self.neighbors.len() as u64, self.energy)
        } else {
            let info = &self.neighbor_info[&who];
            (info.neighbors.len() as u64, info.energy)
        };
        let id = who as u64;
        match policy {
            Policy::NoPruning | Policy::Id => [id, 0, 0],
            Policy::Degree => [deg, id, 0],
            Policy::Energy => [el, id, 0],
            Policy::EnergyDegree => [el, deg, id],
        }
    }

    /// `N[self] ⊆ N[u]` from local data.
    fn closed_covered_by(&self, u: NodeId) -> bool {
        // self must be adjacent to u (given: u is a neighbour), and every
        // neighbour of self must be u itself or adjacent to u.
        self.neighbors
            .iter()
            .all(|&x| x == u || self.adjacent(u, x))
    }

    /// `N(a) ⊆ N(b) ∪ N(c)` where `a, b, c` are this host or neighbours.
    fn open_covered_by_pair(&self, a: NodeId, b: NodeId, c: NodeId) -> bool {
        let a_nbrs: &[NodeId] = if a == self.id {
            &self.neighbors
        } else {
            &self.neighbor_info[&a].neighbors
        };
        a_nbrs
            .iter()
            .all(|&x| self.adjacent(b, x) || self.adjacent(c, x))
    }
}

impl NodeState {
    /// Initialises a host from its local view (markers unknown yet).
    pub fn new(view: LocalView) -> Self {
        Self {
            marked: false,
            neighbor_marked: HashMap::new(),
            view,
        }
    }

    /// Rule 1, decided locally: should this (marked) host unmark itself?
    pub fn rule1_decides_unmark(&self, policy: Policy) -> bool {
        if !self.marked {
            return false;
        }
        let v = self.view.id;
        self.view.neighbors.iter().any(|&u| {
            self.neighbor_marked.get(&u).copied().unwrap_or(false)
                && self.view.key(policy, v) < self.view.key(policy, u)
                && self.view.closed_covered_by(u)
        })
    }

    /// Rule 2, decided locally on the post-Rule-1 markers.
    pub fn rule2_decides_unmark(&self, policy: Policy, semantics: Rule2Semantics) -> bool {
        if !self.marked {
            return false;
        }
        let v = self.view.id;
        let marked_nbrs: Vec<NodeId> = self
            .view
            .neighbors
            .iter()
            .copied()
            .filter(|u| self.neighbor_marked.get(u).copied().unwrap_or(false))
            .collect();
        for (i, &u) in marked_nbrs.iter().enumerate() {
            for &w in &marked_nbrs[i + 1..] {
                if !self.view.open_covered_by_pair(v, u, w) {
                    continue;
                }
                let kv = self.view.key(policy, v);
                let ku = self.view.key(policy, u);
                let kw = self.view.key(policy, w);
                let ok = match semantics {
                    Rule2Semantics::MinOfThree => kv < ku && kv < kw,
                    Rule2Semantics::CaseAnalysis => {
                        let cu = self.view.open_covered_by_pair(u, v, w);
                        let cw = self.view.open_covered_by_pair(w, v, u);
                        match (cu, cw) {
                            (false, false) => true,
                            (true, false) => kv < ku,
                            (false, true) => kv < kw,
                            (true, true) => kv < ku && kv < kw,
                        }
                    }
                };
                if ok {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built local view of vertex 1 in Figure 1 (v, with neighbours
    /// u=0, w=2, y=4).
    fn fig1_view_of_v() -> LocalView {
        let mut neighbor_info = HashMap::new();
        neighbor_info.insert(
            0,
            NeighborInfo {
                neighbors: vec![1, 4],
                energy: 100,
            },
        );
        neighbor_info.insert(
            2,
            NeighborInfo {
                neighbors: vec![1, 3],
                energy: 100,
            },
        );
        neighbor_info.insert(
            4,
            NeighborInfo {
                neighbors: vec![0, 1],
                energy: 100,
            },
        );
        LocalView {
            id: 1,
            energy: 100,
            neighbors: vec![0, 2, 4],
            neighbor_info,
        }
    }

    #[test]
    fn marker_decision_from_local_view() {
        let view = fig1_view_of_v();
        // Neighbours 0 and 2 are unconnected: v marks itself.
        assert!(view.decide_marker());
    }

    #[test]
    fn marker_negative_when_neighbors_form_clique() {
        let mut neighbor_info = HashMap::new();
        neighbor_info.insert(
            1,
            NeighborInfo {
                neighbors: vec![0, 2],
                energy: 1,
            },
        );
        neighbor_info.insert(
            2,
            NeighborInfo {
                neighbors: vec![0, 1],
                energy: 1,
            },
        );
        let view = LocalView {
            id: 0,
            energy: 1,
            neighbors: vec![1, 2],
            neighbor_info,
        };
        assert!(!view.decide_marker());
    }

    #[test]
    fn local_coverage_checks() {
        let view = fig1_view_of_v();
        // N[1] = {0,1,2,4}; N[0] = {0,1,4}: not covered by 0.
        assert!(!view.closed_covered_by(0));
        // N(0) = {1,4} ⊆ N(1) ∪ N(2)? 4 ∈ N(1) ✓ (view.adjacent(1=self)).
        assert!(view.open_covered_by_pair(0, 1, 2));
    }

    #[test]
    fn rule1_requires_marked_higher_priority_cover() {
        let mut st = NodeState::new(fig1_view_of_v());
        st.marked = true;
        st.neighbor_marked = HashMap::from([(0, false), (2, true), (4, false)]);
        // N[1] ⊄ N[2], so no unmark.
        assert!(!st.rule1_decides_unmark(Policy::Id));
    }
}
