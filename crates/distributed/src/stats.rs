//! Protocol overhead accounting.
//!
//! The marking process is attractive partly because its message complexity
//! is low and local: every host broadcasts its neighbour set once and its
//! marker up to twice. This module provides the exact per-round counts for
//! a given topology, verified against an instrumented run of the engine.

use pacds_core::CdsConfig;
use pacds_graph::Graph;
use serde::Serialize;

/// Message counts for one protocol execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ProtocolStats {
    /// Hello messages (round 1): one per directed edge.
    pub hello_messages: u64,
    /// Marker messages (rounds 2–3): one per directed edge per exchange.
    pub marker_messages: u64,
    /// Total node-id entries carried inside hello payloads
    /// (`Σ_v deg(v)²`): the bandwidth-dominating term.
    pub hello_payload_entries: u64,
    /// `hello_messages + marker_messages`, materialised so serialized
    /// stats carry the headline number; [`ProtocolStats::new`] keeps it
    /// consistent.
    pub total_messages: u64,
}

impl ProtocolStats {
    /// Builds stats from the per-round counts, deriving `total_messages`.
    pub fn new(hello_messages: u64, marker_messages: u64, hello_payload_entries: u64) -> Self {
        ProtocolStats {
            hello_messages,
            marker_messages,
            hello_payload_entries,
            total_messages: hello_messages + marker_messages,
        }
    }

    /// Total messages.
    pub fn total_messages(&self) -> u64 {
        self.hello_messages + self.marker_messages
    }
}

/// The exact message counts the protocol in [`crate::engine`] produces on
/// `g` under `cfg`.
///
/// ```
/// use pacds_core::{CdsConfig, Policy};
/// use pacds_distributed::protocol_stats;
/// let g = pacds_graph::gen::path(5); // 4 links
/// let s = protocol_stats(&g, &CdsConfig::policy(Policy::Id));
/// assert_eq!(s.hello_messages, 8);   // one per directed edge
/// assert_eq!(s.total_messages(), 24);
/// ```
///
/// * Round 1 (hello): every host sends `N(v)` to each neighbour — `2m`
///   messages carrying `Σ deg(v)²` id entries in total.
/// * Round 2 (markers): `2m` messages.
/// * Round 3 (post-Rule-1 markers): another `2m`, only when `cfg` prunes.
pub fn protocol_stats(g: &Graph, cfg: &CdsConfig) -> ProtocolStats {
    let directed_edges = 2 * g.m() as u64;
    let marker_rounds = if cfg.policy.prunes() { 2 } else { 1 };
    let payload: u64 = g
        .vertices()
        .map(|v| {
            let d = g.degree(v) as u64;
            d * d
        })
        .sum();
    ProtocolStats::new(directed_edges, directed_edges * marker_rounds, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::Policy;
    use pacds_graph::gen;

    #[test]
    fn counts_on_classic_families() {
        let g = gen::path(5); // m = 4
        let s = protocol_stats(&g, &CdsConfig::policy(Policy::Id));
        assert_eq!(s.hello_messages, 8);
        assert_eq!(s.marker_messages, 16);
        // degrees 1,2,2,2,1 -> payload 1+4+4+4+1 = 14
        assert_eq!(s.hello_payload_entries, 14);
        assert_eq!(s.total_messages(), 24);
    }

    #[test]
    fn no_pruning_skips_the_second_marker_round() {
        let g = gen::cycle(6); // m = 6
        let nr = protocol_stats(&g, &CdsConfig::policy(Policy::NoPruning));
        assert_eq!(nr.marker_messages, 12);
        let id = protocol_stats(&g, &CdsConfig::policy(Policy::Id));
        assert_eq!(id.marker_messages, 24);
    }

    #[test]
    fn message_count_matches_instrumented_engine() {
        // The threaded engine counts every channel send it performs; the
        // analytic formula must agree exactly.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for (n, p) in [(12usize, 0.2), (30, 0.1), (50, 0.08)] {
            let g = gen::connected_gnp(&mut rng, n, p, 8);
            for cfg in [
                CdsConfig::policy(Policy::NoPruning),
                CdsConfig::policy(Policy::Id),
                CdsConfig::paper(Policy::EnergyDegree),
            ] {
                let expected = protocol_stats(&g, &cfg);
                let energy = vec![5u64; n];
                let (_, sent) =
                    crate::engine::run_distributed_counted(&g, Some(&energy), &cfg);
                assert_eq!(
                    sent,
                    expected.total_messages(),
                    "n={n} cfg={cfg:?}"
                );
            }
        }
    }

    #[test]
    fn serialization_includes_total_messages() {
        let g = gen::path(5);
        let s = protocol_stats(&g, &CdsConfig::policy(Policy::Id));
        assert_eq!(s.total_messages, s.total_messages());
        let json = serde_json::to_string(&s).unwrap();
        assert!(
            json.contains("\"total_messages\":24"),
            "serialized stats must carry the headline count: {json}"
        );
    }

    #[test]
    fn payload_grows_quadratically_with_degree() {
        let star = gen::star(11); // center degree 10, leaves degree 1
        let s = protocol_stats(&star, &CdsConfig::policy(Policy::Id));
        assert_eq!(s.hello_payload_entries, 100 + 10);
    }
}
