//! Distributed (message-passing) execution of the marking process and the
//! selective-removal rules.
//!
//! The centralised functions in `pacds-core` compute on the whole graph at
//! once. The paper's algorithm, however, is *localized*: each host acts
//! only on information received from its neighbours. This crate executes
//! exactly that protocol — one actor per host, communicating over channels,
//! with **no shared view of the topology** — and the test-suite proves the
//! outcome is identical to the centralised computation for every policy.
//!
//! Protocol rounds (each host expects exactly `deg(v)` messages per round,
//! which makes channel reads self-synchronising — no global barrier):
//!
//! 1. **Hello** — send `(id, N(v), el(v))` to every neighbour. Afterwards a
//!    host knows its distance-2 neighbourhood, each neighbour's degree and
//!    energy level.
//! 2. **Marker** — compute `m(v)` (two unconnected neighbours?) and send it.
//! 3. **Rule 1** — unmark per Rule 1 using neighbours' markers; send the
//!    updated marker (the extra exchange step the paper notes is needed
//!    before Rule 2).
//! 4. **Rule 2** — unmark per Rule 2 on the updated markers.

pub mod engine;
pub mod node;
pub mod stats;

pub use engine::{run_distributed, run_distributed_counted, run_distributed_sequential};
pub use node::{LocalView, NodeState};
pub use stats::{protocol_stats, ProtocolStats};
