//! # pacds-shard — the spatially-sharded CDS engine
//!
//! The paper's marking process and (simultaneous, single-pass,
//! min-of-three) Rules 1/2 are *local*: every decision about a node is a
//! pure function of its bounded neighbourhood and static priorities. This
//! crate exploits that to compute gateway sets of million-node unit-disk
//! instances that a single whole-graph workspace cannot touch (its dense
//! neighbour bitmap is `O(n²)` bits), while staying **bit-identical** to
//! the whole-graph pipeline.
//!
//! ## How it works
//!
//! 1. **Partition** — the instance is split into shards: grid tiles of the
//!    geometry ([`ShardedCds::compute_unit_disk`]) or contiguous id blocks
//!    of an existing graph ([`ShardedCds::compute_graph`]).
//! 2. **Halo** — each shard is expanded by [`REQUIRED_HALO`] hops (a
//!    geometric margin of `halo * sqrt(r² + EPS)`, or a BFS) and the
//!    induced subgraph of the expanded set is built — directly from the
//!    points in the spatial mode, so the whole-graph adjacency never
//!    materialises.
//! 3. **Solve** — each tile runs the ordinary marking + rule passes on its
//!    own retained [`pacds_core::CdsWorkspace`]. Tiles are scheduled
//!    big-first (LPT) over a persistent worker pool: each executor owns a
//!    stride of the size-ordered schedule and steals from the others when
//!    its stripe runs dry ([`ShardedCds::thread_work`] reports the
//!    distribution). Halo construction happens *inside* the per-tile job,
//!    so it parallelises along with the solve. Both `threads == 1` and the
//!    parallel path are free of steady-state heap allocations — the pool
//!    spawns once, and every per-run buffer is retained.
//! 4. **Merge** — each node's verdict is taken only from the shard that
//!    owns it; every node is owned by exactly one shard.
//!
//! ## Why 2 hops suffice (sketch; see ARCHITECTURE.md for the full
//! argument)
//!
//! A judged node `v`'s decisions compare it against marked neighbours
//! `u ∈ N(v)` using `deg(u)`, priority keys, and subset tests
//! `N[v] ⊆ N[u]` / `N(v) ⊆ N(u) ∪ N(w)`. With every node within 2 hops of
//! `v` present, `v`'s and all `u ∈ N(v)`'s neighbour lists are *complete*,
//! so each comparison evaluates exactly as in the whole graph; truncated
//! data beyond the halo can only belong to comparands whose subset test is
//! already exactly false. Priorities are static and local ids ascend in
//! global id order, so tie-breaks agree too. One hop is *not* enough —
//! `tests/props.rs` holds a corridor topology where a halo-1 tile
//! miscounts a dominator's degree and keeps a node the whole graph
//! removes.
//!
//! ## What does not shard
//!
//! Sequential application (global visit order), the fixpoint schedule
//! (unbounded dependency radius), and effective case-analysis Rule 2 are
//! rejected with a typed [`ShardError::Unshardable`] before any work —
//! [`check_shardable`] is the predicate. Of the 40-configuration matrix,
//! 7 configurations shard; the conformance suite pins both halves.

mod churn;
mod engine;
mod error;
mod pool;

pub use churn::{ChurnEngine, ChurnEvent, ChurnStats, ChurnTotals};
pub use engine::{ShardSpec, ShardStats, ShardedCds, ThreadWork};
pub use error::{check_shardable, ChurnError, ShardError, UnshardableReason};

/// Minimum halo width (in hops) for bit-identity, and the default of
/// [`ShardSpec`].
///
/// Marking needs 1 complete hop around a judged node; the rules compare
/// the judged node against its *neighbours'* neighbourhoods, adding one
/// more. Equivalently: rule decisions draw on information up to 2
/// node-hops away, and every node within 2 hops of an owned node must
/// carry its complete adjacency.
pub const REQUIRED_HALO: usize = 2;
