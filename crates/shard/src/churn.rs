//! The churn engine: persistent sharded state under a stream of mutation
//! events, re-solving only the tiles each event can actually reach.
//!
//! ## Dirty-set derivation
//!
//! A tile's solve is a pure function of the points within the 2-hop
//! geometric margin of its rectangle (`REQUIRED_HALO * sqrt(r² + EPS)`,
//! the same licence the batch engine's halo rests on). An event that
//! touches position `p` — adding a node there, moving a node from or to
//! there, killing the node that sits there — can therefore only change
//! the solve of tiles whose rectangle lies within that margin of `p`;
//! every other tile's stored verdicts remain exact and are *not*
//! recomputed. Battery drains reach only one hop (priorities are compared
//! strictly between a node and its direct neighbours), so they dirty the
//! 1-hop margin — and when the active policy ignores energy entirely they
//! dirty nothing at all.
//!
//! After [`ChurnEngine::refresh`], the merged masks are bit-identical to
//! a from-scratch [`ShardedCds::compute_unit_disk_masked`] (and hence to
//! the whole-graph pipeline) on the current points / off-mask / energy —
//! the testkit's differential churn harness pins this after every event.

use crate::engine::{
    grid_for, run_tiles, schedule_order, solve_locals, ShardSpec, WorkerSlot,
};
use crate::error::{check_shardable, ChurnError, ShardError};
use crate::pool::WorkerPool;
use crate::REQUIRED_HALO;
use pacds_core::CdsConfig;
use pacds_geom::{Point2, Rect, EPS};
use pacds_graph::{NodeId, VertexMask};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// One mutation against a [`ChurnEngine`]'s persistent graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// A new host appears at `pos` with `energy` residual units; it takes
    /// the next free id (`engine.n()` before the event).
    AddNode {
        /// Where the host appears (must lie in the engine's domain).
        pos: Point2,
        /// Initial residual energy level.
        energy: u64,
    },
    /// Host `node` moves to `to`.
    MoveNode {
        /// The moving host.
        node: NodeId,
        /// Its new position (must lie in the engine's domain).
        to: Point2,
    },
    /// Host `node` switches off permanently: it keeps its id slot but is
    /// isolated (no edges in either direction) and carries all-false
    /// verdicts — the same dead-host model as
    /// [`pacds_graph::gen::unit_disk_csr`]'s off-mask.
    KillNode {
        /// The dying host.
        node: NodeId,
    },
    /// Host `node`'s residual energy becomes `remaining` (drain schedules
    /// set absolute levels, so replaying a trace never depends on history).
    DrainBattery {
        /// The draining host.
        node: NodeId,
        /// The new residual level.
        remaining: u64,
    },
}

/// Totals of one [`ChurnEngine::refresh`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Events applied since the previous refresh.
    pub events: u64,
    /// Tiles that were dirty when the refresh started.
    pub dirty_tiles: usize,
    /// Tiles actually re-solved (equals `dirty_tiles` except under the
    /// diagnostics-only partial refresh).
    pub resolved_tiles: usize,
    /// Total tiles in the fixed grid — the denominator of the headline
    /// "re-solved « total" claim.
    pub total_tiles: usize,
    /// Nodes whose gateway verdict flipped in this refresh.
    pub gateway_flips: u64,
    /// Time gathering halos and building per-tile subgraphs.
    pub halo_build_ns: u64,
    /// Time in per-tile marking + rule passes.
    pub solve_ns: u64,
    /// Time scattering re-solved tiles into the merged masks.
    pub scatter_ns: u64,
    /// Tiles taken cross-stripe by the worker pool.
    pub stolen_tiles: u64,
}

/// Lifetime totals of a [`ChurnEngine`] (across all refreshes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnTotals {
    /// Events accepted since [`ChurnEngine::open`].
    pub events: u64,
    /// Refreshes run (the initial full solve counts as one).
    pub refreshes: u64,
    /// Tiles re-solved, summed over refreshes.
    pub resolved_tiles: u64,
    /// Gateway verdict flips, summed over refreshes (the initial solve
    /// counts every initial gateway as a flip from the empty set).
    pub gateway_flips: u64,
}

/// The fixed tile grid: same axis arithmetic as
/// [`pacds_graph::gen::TilePartition`], but retained for the engine's
/// lifetime so ownership updates are O(tile population), never O(n).
#[derive(Debug, Clone, Copy, Default)]
struct GridGeom {
    tx: usize,
    ty: usize,
    x0: f64,
    y0: f64,
    w: f64,
    h: f64,
}

impl GridGeom {
    #[inline]
    fn axis_tile(c: f64, lo: f64, span: f64, k: usize) -> usize {
        if span <= 0.0 {
            return 0;
        }
        // Casting a negative f64 to usize saturates to 0.
        (((c - lo) / span * k as f64) as usize).min(k - 1)
    }

    #[inline]
    fn tile_of(&self, p: Point2) -> usize {
        Self::axis_tile(p.y, self.y0, self.h, self.ty) * self.tx
            + Self::axis_tile(p.x, self.x0, self.w, self.tx)
    }

    fn tiles(&self) -> usize {
        self.tx * self.ty
    }

    fn contains(&self, p: Point2) -> bool {
        p.x >= self.x0 && p.x <= self.x0 + self.w && p.y >= self.y0 && p.y <= self.y0 + self.h
    }

    fn tile_span(&self, t: usize) -> (f64, f64, f64, f64) {
        let cx = (t % self.tx) as f64;
        let cy = (t / self.tx) as f64;
        let (tx, ty) = (self.tx as f64, self.ty as f64);
        (
            self.x0 + self.w * cx / tx,
            self.y0 + self.h * cy / ty,
            self.x0 + self.w * (cx + 1.0) / tx,
            self.y0 + self.h * (cy + 1.0) / ty,
        )
    }

    /// Distance from `p` to tile `t`'s rectangle is at most `m`.
    #[inline]
    fn within(&self, t: usize, p: Point2, m: f64) -> bool {
        let (rx0, ry0, rx1, ry1) = self.tile_span(t);
        let dx = (rx0 - p.x).max(p.x - rx1).max(0.0);
        let dy = (ry0 - p.y).max(p.y - ry1).max(0.0);
        dx * dx + dy * dy <= m * m
    }

    /// Calls `f(t)` for every tile within distance `m` of `p`. The
    /// candidate index window is widened by one tile per side so exact
    /// boundary hits can never fall outside it; the rectangle-distance
    /// test inside keeps the set tight.
    fn for_tiles_within<F: FnMut(usize)>(&self, p: Point2, m: f64, mut f: F) {
        let cx_lo = Self::axis_tile(p.x - m, self.x0, self.w, self.tx).saturating_sub(1);
        let cx_hi = (Self::axis_tile(p.x + m, self.x0, self.w, self.tx) + 1).min(self.tx - 1);
        let cy_lo = Self::axis_tile(p.y - m, self.y0, self.h, self.ty).saturating_sub(1);
        let cy_hi = (Self::axis_tile(p.y + m, self.y0, self.h, self.ty) + 1).min(self.ty - 1);
        for cy in cy_lo..=cy_hi {
            for cx in cx_lo..=cx_hi {
                let t = cy * self.tx + cx;
                if self.within(t, p, m) {
                    f(t);
                }
            }
        }
    }

    /// Collects into `out` (ascending) every point within distance `m` of
    /// tile `t`'s rectangle — the same margin neighbourhood
    /// `TilePartition::gather_expanded` produces, read from the retained
    /// per-tile ownership lists instead of a counting-sort index.
    fn gather(&self, t: usize, m: f64, points: &[Point2], owned: &[Vec<u32>], out: &mut Vec<u32>) {
        out.clear();
        let (rx0, ry0, rx1, ry1) = self.tile_span(t);
        let m2 = m * m;
        let cx_lo = Self::axis_tile(rx0 - m, self.x0, self.w, self.tx).saturating_sub(1);
        let cx_hi = (Self::axis_tile(rx1 + m, self.x0, self.w, self.tx) + 1).min(self.tx - 1);
        let cy_lo = Self::axis_tile(ry0 - m, self.y0, self.h, self.ty).saturating_sub(1);
        let cy_hi = (Self::axis_tile(ry1 + m, self.y0, self.h, self.ty) + 1).min(self.ty - 1);
        for cy in cy_lo..=cy_hi {
            for cx in cx_lo..=cx_hi {
                for &i in &owned[cy * self.tx + cx] {
                    let p = points[i as usize];
                    let dx = (rx0 - p.x).max(p.x - rx1).max(0.0);
                    let dy = (ry0 - p.y).max(p.y - ry1).max(0.0);
                    if dx * dx + dy * dy <= m2 {
                        out.push(i);
                    }
                }
            }
        }
        out.sort_unstable();
    }
}

/// Inflates a margin exactly as `gather_expanded` does, so the dirty
/// predicate and the halo membership predicate can never disagree at the
/// rim.
#[inline]
fn inflate(margin: f64) -> f64 {
    margin * (1.0 + 1e-12) + 1e-9
}

/// Base pointer of the per-tile result table, shared with the pool job.
/// `run_tiles` claims each tile exactly once, so the mutable accesses are
/// disjoint by construction.
#[derive(Clone, Copy)]
struct TileResultsPtr(*mut Vec<(u32, u8)>);
unsafe impl Send for TileResultsPtr {}
unsafe impl Sync for TileResultsPtr {}

impl TileResultsPtr {
    /// # Safety
    /// The caller must ensure `t` is in bounds and that no other live
    /// reference aliases entry `t`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn entry(&self, t: usize) -> &mut Vec<(u32, u8)> {
        &mut *self.0.add(t)
    }
}

/// A persistent sharded unit-disk CDS instance that absorbs a stream of
/// [`ChurnEvent`]s and re-solves only the dirty tiles.
///
/// Usage: [`ChurnEngine::open`] performs the initial full solve; then any
/// number of [`ChurnEngine::apply`] calls accumulate events and their
/// dirty tiles, and [`ChurnEngine::refresh`] re-solves the dirty set on
/// the worker pool and folds the verdicts into the merged masks.
/// Rejected events ([`ChurnError`]) leave all state untouched.
#[derive(Debug)]
pub struct ChurnEngine {
    spec: ShardSpec,
    cfg: CdsConfig,
    radius: f64,
    /// 2-hop margin (inflated): topology events dirty tiles within it.
    margin_topo: f64,
    /// 1-hop margin (inflated): energy events dirty tiles within it.
    margin_energy: f64,
    geom: GridGeom,
    points: Vec<Point2>,
    energy: Vec<u64>,
    alive: Vec<bool>,
    /// Owning tile of each node (dead nodes keep their tile).
    node_tile: Vec<u32>,
    /// Per-tile owned ids, each list ascending; together a partition of
    /// `0..n`.
    owned: Vec<Vec<u32>>,
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
    /// Per-tile verdicts of the last solve of that tile, sorted by id:
    /// `(global id, marked | after1 << 1 | gateway << 2)`.
    tile_results: Vec<Vec<(u32, u8)>>,
    slots: Vec<WorkerSlot>,
    pool: WorkerPool,
    order: Vec<u32>,
    weights: Vec<u64>,
    cursors: Vec<AtomicUsize>,
    marked: VertexMask,
    after1: VertexMask,
    gateways: VertexMask,
    events_pending: u64,
    stats: ChurnStats,
    totals: ChurnTotals,
    /// Trace id the next refresh's spans are attributed to.
    trace: pacds_obs::TraceId,
}

impl ChurnEngine {
    /// Opens a persistent instance over `points` / `energy` inside
    /// `bounds` and runs the initial full solve. The tile grid is fixed
    /// here — `spec.shards` (or the automatic count for the initial `n`)
    /// tiles over `bounds` expanded to the initial points' bounding box —
    /// and later events must stay inside that domain.
    ///
    /// Rejects unshardable configurations and too-narrow halos with the
    /// same typed errors as the batch engine.
    ///
    /// # Panics
    /// Panics if `radius <= 0` or `energy.len() != points.len()` (energy
    /// is engine state here — [`ChurnEvent::DrainBattery`] mutates it —
    /// so it is required even for policies that ignore it).
    pub fn open(
        spec: ShardSpec,
        bounds: Rect,
        radius: f64,
        points: &[Point2],
        energy: &[u64],
        cfg: &CdsConfig,
    ) -> Result<Self, ChurnError> {
        check_shardable(cfg)?;
        if spec.halo < REQUIRED_HALO {
            return Err(ChurnError::Shard(ShardError::HaloTooSmall {
                halo: spec.halo,
                required: REQUIRED_HALO,
            }));
        }
        assert!(radius > 0.0, "transmission radius must be positive");
        assert_eq!(energy.len(), points.len(), "energy length must equal point count");

        let n = points.len();
        let (mut x0, mut y0, mut x1, mut y1) = (bounds.x0, bounds.y0, bounds.x1, bounds.y1);
        for p in points {
            x0 = x0.min(p.x);
            y0 = y0.min(p.y);
            x1 = x1.max(p.x);
            y1 = y1.max(p.y);
        }
        let (tx, ty) = grid_for(spec.resolved_shards(n), x1 - x0, y1 - y0);
        let geom = GridGeom {
            tx,
            ty,
            x0,
            y0,
            w: x1 - x0,
            h: y1 - y0,
        };
        let tiles = geom.tiles();

        let mut owned = vec![Vec::new(); tiles];
        let mut node_tile = Vec::with_capacity(n);
        for (i, &p) in points.iter().enumerate() {
            let t = geom.tile_of(p);
            owned[t].push(i as u32);
            node_tile.push(t as u32);
        }
        // Ids are pushed in ascending order, so every list is ascending.

        let hop = (radius * radius + EPS).sqrt();
        let mut engine = Self {
            spec,
            cfg: *cfg,
            radius,
            margin_topo: inflate(REQUIRED_HALO as f64 * hop),
            margin_energy: inflate(hop),
            geom,
            points: points.to_vec(),
            energy: energy.to_vec(),
            alive: vec![true; n],
            node_tile,
            owned,
            dirty: vec![true; tiles],
            dirty_list: (0..tiles as u32).collect(),
            tile_results: vec![Vec::new(); tiles],
            slots: Vec::new(),
            pool: WorkerPool::default(),
            order: Vec::new(),
            weights: Vec::new(),
            cursors: Vec::new(),
            marked: VertexMask::new(),
            after1: VertexMask::new(),
            gateways: VertexMask::new(),
            events_pending: 0,
            stats: ChurnStats::default(),
            totals: ChurnTotals::default(),
            trace: pacds_obs::TraceId::NONE,
        };
        engine.refresh();
        Ok(engine)
    }

    /// Validates and applies one event, accumulating (but not solving) the
    /// tiles it dirties. On error the engine state is untouched.
    pub fn apply(&mut self, ev: &ChurnEvent) -> Result<(), ChurnError> {
        match *ev {
            ChurnEvent::AddNode { pos, energy } => {
                if !self.geom.contains(pos) {
                    return Err(ChurnError::OutOfBounds { x: pos.x, y: pos.y });
                }
                let id = self.points.len() as u32;
                let t = self.geom.tile_of(pos);
                self.points.push(pos);
                self.energy.push(energy);
                self.alive.push(true);
                self.node_tile.push(t as u32);
                // The new id is the largest, so appending keeps the
                // owned list ascending.
                self.owned[t].push(id);
                self.mark_dirty_around(pos, self.margin_topo);
            }
            ChurnEvent::MoveNode { node, to } => {
                self.check_live(node)?;
                if !self.geom.contains(to) {
                    return Err(ChurnError::OutOfBounds { x: to.x, y: to.y });
                }
                let from = self.points[node as usize];
                let old_t = self.node_tile[node as usize] as usize;
                let new_t = self.geom.tile_of(to);
                if new_t != old_t {
                    let i = self.owned[old_t]
                        .binary_search(&node)
                        .expect("ownership lists partition the id space");
                    self.owned[old_t].remove(i);
                    let i = self.owned[new_t]
                        .binary_search(&node)
                        .expect_err("a node is owned by exactly one tile");
                    self.owned[new_t].insert(i, node);
                    self.node_tile[node as usize] = new_t as u32;
                }
                self.points[node as usize] = to;
                self.mark_dirty_around(from, self.margin_topo);
                self.mark_dirty_around(to, self.margin_topo);
            }
            ChurnEvent::KillNode { node } => {
                self.check_live(node)?;
                self.alive[node as usize] = false;
                self.mark_dirty_around(self.points[node as usize], self.margin_topo);
            }
            ChurnEvent::DrainBattery { node, remaining } => {
                self.check_live(node)?;
                if self.energy[node as usize] != remaining {
                    self.energy[node as usize] = remaining;
                    // Priorities are only ever compared between direct
                    // neighbours, so an energy change reaches one hop —
                    // and nothing at all when the policy ignores energy.
                    if self.cfg.policy.needs_energy() {
                        self.mark_dirty_around(self.points[node as usize], self.margin_energy);
                    }
                }
            }
        }
        self.events_pending += 1;
        self.totals.events += 1;
        Ok(())
    }

    fn check_live(&self, node: NodeId) -> Result<(), ChurnError> {
        if node as usize >= self.points.len() {
            return Err(ChurnError::UnknownNode {
                node,
                n: self.points.len(),
            });
        }
        if !self.alive[node as usize] {
            return Err(ChurnError::DeadNode { node });
        }
        Ok(())
    }

    fn mark_dirty_around(&mut self, p: Point2, m: f64) {
        let geom = self.geom;
        let (dirty, dirty_list) = (&mut self.dirty, &mut self.dirty_list);
        geom.for_tiles_within(p, m, |t| {
            if !dirty[t] {
                dirty[t] = true;
                dirty_list.push(t as u32);
            }
        });
    }

    /// Attributes the next refresh's spans to `trace` (the serving layer
    /// threads each Mutate request's id through here). Sticky until
    /// changed; [`pacds_obs::TraceId::NONE`] turns attribution back off.
    #[inline]
    pub fn set_trace(&mut self, trace: pacds_obs::TraceId) {
        self.trace = trace;
    }

    /// Re-solves every dirty tile on the worker pool, scatters the new
    /// verdicts into the merged masks, and clears the dirty set.
    pub fn refresh(&mut self) -> ChurnStats {
        self.refresh_where(|_| true)
    }

    /// Diagnostics-only partial refresh: re-solves only the dirty tiles
    /// `keep` accepts, *clearing the whole dirty set regardless*. Skipped
    /// tiles keep stale verdicts — this exists so the minimality proptests
    /// can demonstrate that every tile in the dirty set is load-bearing.
    /// Production code must call [`ChurnEngine::refresh`].
    #[doc(hidden)]
    pub fn refresh_where<K: Fn(usize) -> bool>(&mut self, keep: K) -> ChurnStats {
        let n = self.points.len();
        let dirty_count = self.dirty_list.len();
        let trace = self.trace;
        let _refresh_span =
            pacds_obs::span(trace, pacds_obs::SpanKind::ChurnRefresh, dirty_count as u32);
        let _refresh_timer = pacds_obs::phase_timer(pacds_obs::Phase::ChurnRefresh);

        // Solve list: dirty tiles passing the filter, largest-owned first.
        self.order.clear();
        self.order
            .extend(self.dirty_list.iter().filter(|&&t| keep(t as usize)));
        let solve = std::mem::take(&mut self.order);
        let owned_lists = &self.owned;
        self.weights.clear();
        self.weights
            .extend(solve.iter().map(|&t| owned_lists[t as usize].len() as u64));
        schedule_order(&mut self.order, &self.weights);
        // `order` holds indexes into `solve`; map back to tile ids so the
        // run closure receives real tiles.
        for slot in self.order.iter_mut() {
            *slot = solve[*slot as usize];
        }

        let nthreads = self
            .spec
            .resolved_threads()
            .clamp(1, self.order.len().max(1));
        self.ensure_slots(nthreads);

        let geom = self.geom;
        let (radius, margin) = (self.radius, self.margin_topo);
        let (points, energy, alive, owned) =
            (&self.points, &self.energy, &self.alive, &self.owned);
        let cfg = &self.cfg;
        let results_ptr = TileResultsPtr(self.tile_results.as_mut_ptr());
        run_tiles(
            &mut self.pool,
            &mut self.slots[..nthreads],
            &self.order,
            &self.cursors[..nthreads],
            |slot, t| {
                let _s = pacds_obs::span(trace, pacds_obs::SpanKind::ChurnTile, t as u32);
                let hb = Instant::now();
                {
                    let _t = pacds_obs::phase_timer(pacds_obs::Phase::ShardHaloBuild);
                    geom.gather(t, margin, points, owned, &mut slot.locals);
                    slot.locals.retain(|&g| alive[g as usize]);
                    pacds_graph::gen::unit_disk_csr_subset(
                        radius,
                        points,
                        &slot.locals,
                        &mut slot.csr,
                        &mut slot.uds,
                    );
                }
                slot.halo_build_ns += hb.elapsed().as_nanos() as u64;

                // SAFETY: each tile id appears exactly once in `order`
                // and run_tiles claims each position exactly once, so
                // this entry is not aliased; the pool's completion
                // barrier orders the writes before run_tiles returns.
                let out = unsafe { results_ptr.entry(t) };
                std::mem::swap(out, &mut slot.results);
                slot.results.clear();

                let tile_owned = &owned[t];
                slot.owned_flags.clear();
                slot.owned_flags.resize(slot.locals.len(), false);
                let mut li = 0;
                let mut owned_live = 0;
                for &g in tile_owned {
                    if !alive[g as usize] {
                        slot.results.push((g, 0));
                        continue;
                    }
                    while slot.locals[li] < g {
                        li += 1;
                    }
                    debug_assert_eq!(slot.locals[li], g, "tile {t} halo lost an owned node");
                    slot.owned_flags[li] = true;
                    li += 1;
                    owned_live += 1;
                }
                solve_locals(slot, owned_live, Some(energy), cfg);
                slot.results.sort_unstable_by_key(|&(g, _)| g);
                std::mem::swap(out, &mut slot.results);
            },
        );

        // Scatter: only re-solved tiles changed, and ownership makes the
        // writes disjoint. Gateway churn is counted here against the
        // previous merged mask.
        let sc = Instant::now();
        self.marked.resize(n, false);
        self.after1.resize(n, false);
        self.gateways.resize(n, false);
        let mut flips = 0u64;
        for &t in &self.order {
            for &(g, bits) in &self.tile_results[t as usize] {
                let g = g as usize;
                let gw = bits & 4 != 0;
                flips += u64::from(self.gateways[g] != gw);
                self.marked[g] = bits & 1 != 0;
                self.after1[g] = bits & 2 != 0;
                self.gateways[g] = gw;
            }
        }
        let scatter_ns = sc.elapsed().as_nanos() as u64;

        for &t in &self.dirty_list {
            self.dirty[t as usize] = false;
        }
        self.dirty_list.clear();

        self.stats = ChurnStats {
            events: self.events_pending,
            dirty_tiles: dirty_count,
            resolved_tiles: self.order.len(),
            total_tiles: self.geom.tiles(),
            gateway_flips: flips,
            halo_build_ns: self.slots.iter().map(|s| s.halo_build_ns).sum(),
            solve_ns: self.slots.iter().map(|s| s.solve_ns).sum(),
            scatter_ns,
            stolen_tiles: self.slots.iter().map(|s| s.tiles_stolen).sum(),
        };
        self.events_pending = 0;
        self.totals.refreshes += 1;
        self.totals.resolved_tiles += self.stats.resolved_tiles as u64;
        self.totals.gateway_flips += flips;
        pacds_obs::add(pacds_obs::Counter::ChurnRefreshes, 1);
        pacds_obs::add(
            pacds_obs::Counter::ChurnTilesResolved,
            self.stats.resolved_tiles as u64,
        );
        pacds_obs::add(pacds_obs::Counter::ChurnGatewayFlips, flips);
        self.stats
    }

    /// Applies a batch of events and refreshes once. Events are validated
    /// one by one: the first rejection stops the batch with already-applied
    /// events still pending (call [`ChurnEngine::refresh`] or keep
    /// streaming — the engine is never left inconsistent).
    pub fn step(&mut self, events: &[ChurnEvent]) -> Result<ChurnStats, ChurnError> {
        for ev in events {
            self.apply(ev)?;
        }
        Ok(self.refresh())
    }

    fn ensure_slots(&mut self, nthreads: usize) {
        if self.slots.len() < nthreads {
            self.slots.resize_with(nthreads, WorkerSlot::default);
        }
        if self.cursors.len() < nthreads {
            self.cursors.resize_with(nthreads, AtomicUsize::default);
        }
        for c in &self.cursors {
            c.store(0, Ordering::Relaxed);
        }
        for slot in &mut self.slots {
            slot.begin();
        }
    }

    /// Node slots (alive + dead) in the persistent graph.
    pub fn n(&self) -> usize {
        self.points.len()
    }

    /// Tiles in the fixed grid.
    pub fn tiles(&self) -> usize {
        self.geom.tiles()
    }

    /// The engine's shape.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The configuration the instance was opened with.
    pub fn cfg(&self) -> &CdsConfig {
        &self.cfg
    }

    /// Current positions (index = node id; dead nodes keep their last
    /// position).
    pub fn positions(&self) -> &[Point2] {
        &self.points
    }

    /// Current residual energy levels.
    pub fn energy(&self) -> &[u64] {
        &self.energy
    }

    /// Liveness flags (false = killed).
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// The merged gateway mask as of the last refresh.
    pub fn gateways(&self) -> &VertexMask {
        &self.gateways
    }

    /// The merged marking-process mask as of the last refresh.
    pub fn marked(&self) -> &VertexMask {
        &self.marked
    }

    /// The merged after-Rule-1 mask as of the last refresh.
    pub fn after_rule1(&self) -> &VertexMask {
        &self.after1
    }

    /// Rounds the equivalent whole-graph pipeline reports (1 when the
    /// policy prunes, 0 otherwise) — constant across events.
    pub fn rounds(&self) -> usize {
        usize::from(self.cfg.policy.prunes())
    }

    /// Number of gateways in the current mask.
    pub fn gateway_count(&self) -> usize {
        self.gateways.iter().filter(|&&b| b).count()
    }

    /// Stats of the latest refresh.
    pub fn stats(&self) -> ChurnStats {
        self.stats
    }

    /// Lifetime totals across all refreshes.
    pub fn totals(&self) -> ChurnTotals {
        self.totals
    }

    /// Currently-dirty tiles (ascending); empty right after a refresh.
    pub fn dirty_tiles(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.dirty_list.iter().map(|&t| t as usize).collect();
        v.sort_unstable();
        v
    }

    /// The ids tile `t` owns (ascending), dead nodes included.
    pub fn tile_owned(&self, t: usize) -> &[u32] {
        &self.owned[t]
    }

    /// Tile `t`'s verdicts from its last solve, sorted by id:
    /// `(id, marked | after1 << 1 | gateway << 2)`. One entry per owned
    /// node (dead nodes carry 0).
    pub fn tile_result(&self, t: usize) -> &[(u32, u8)] {
        &self.tile_results[t]
    }

    /// The owning tile of `node`.
    pub fn tile_of_node(&self, node: NodeId) -> usize {
        self.node_tile[node as usize] as usize
    }

    /// The current off-mask (true = dead), allocated — diagnostics and
    /// differential-testing helper, not part of the warm path.
    pub fn off_mask(&self) -> Vec<bool> {
        self.alive.iter().map(|&a| !a).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardedCds;
    use pacds_core::Policy;
    use pacds_geom::placement;
    use rand::{Rng, SeedableRng};

    fn scratch_masks(
        eng: &ChurnEngine,
        bounds: Rect,
    ) -> (VertexMask, VertexMask, VertexMask) {
        let mut scratch = ShardedCds::new(ShardSpec::new(eng.tiles())).unwrap();
        let off = eng.off_mask();
        scratch
            .compute_unit_disk_masked(
                bounds,
                eng.radius,
                eng.positions(),
                Some(&off),
                Some(eng.energy()),
                eng.cfg(),
            )
            .unwrap();
        (
            scratch.marked().clone(),
            scratch.after_rule1().clone(),
            scratch.gateways().clone(),
        )
    }

    #[test]
    fn open_matches_batch_engine() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 150);
        let energy: Vec<u64> = (0..150u64).map(|v| (v * 13 + 5) % 97).collect();
        for policy in Policy::ALL {
            let cfg = CdsConfig::policy(policy);
            let eng = ChurnEngine::open(
                ShardSpec::new(4),
                Rect::paper_arena(),
                25.0,
                &pts,
                &energy,
                &cfg,
            )
            .unwrap();
            let (m, a, g) = scratch_masks(&eng, Rect::paper_arena());
            assert_eq!(eng.marked(), &m, "{policy:?}");
            assert_eq!(eng.after_rule1(), &a, "{policy:?}");
            assert_eq!(eng.gateways(), &g, "{policy:?}");
            assert_eq!(eng.stats().resolved_tiles, eng.tiles());
        }
    }

    #[test]
    fn every_event_kind_stays_bit_identical_to_scratch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let bounds = Rect::paper_arena();
        let pts = placement::uniform_points(&mut rng, bounds, 200);
        let energy: Vec<u64> = (0..200u64).map(|v| (v * 7 + 3) % 50).collect();
        let cfg = CdsConfig::policy(Policy::EnergyDegree);
        let mut eng =
            ChurnEngine::open(ShardSpec::new(16), bounds, 25.0, &pts, &energy, &cfg).unwrap();

        for step in 0..60 {
            let ev = match step % 4 {
                0 => ChurnEvent::MoveNode {
                    node: rng.random_range(0..eng.n() as u32),
                    to: Point2::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)),
                },
                1 => ChurnEvent::AddNode {
                    pos: Point2::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)),
                    energy: rng.random_range(0..100),
                },
                2 => ChurnEvent::KillNode {
                    node: rng.random_range(0..eng.n() as u32),
                },
                _ => ChurnEvent::DrainBattery {
                    node: rng.random_range(0..eng.n() as u32),
                    remaining: rng.random_range(0..100),
                },
            };
            match eng.apply(&ev) {
                Ok(()) => {}
                Err(ChurnError::DeadNode { .. }) => continue, // dead target rolled
                Err(e) => panic!("unexpected rejection {e} for {ev:?}"),
            }
            eng.refresh();
            let (m, a, g) = scratch_masks(&eng, bounds);
            assert_eq!(eng.marked(), &m, "step {step} {ev:?}");
            assert_eq!(eng.after_rule1(), &a, "step {step} {ev:?}");
            assert_eq!(eng.gateways(), &g, "step {step} {ev:?}");
        }
        assert!(eng.totals().events > 0);
    }

    #[test]
    fn far_events_resolve_few_tiles() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let bounds = Rect::new(0.0, 0.0, 1000.0, 1000.0);
        let pts = placement::uniform_points(&mut rng, bounds, 2000);
        let energy = vec![10u64; 2000];
        let cfg = CdsConfig::policy(Policy::Degree);
        let mut eng = ChurnEngine::open(
            ShardSpec::new(64),
            bounds,
            25.0,
            &pts,
            &energy,
            &cfg,
        )
        .unwrap();
        assert!(eng.tiles() >= 64);
        let st = eng
            .step(&[ChurnEvent::MoveNode {
                node: 0,
                to: Point2::new(500.0, 500.0),
            }])
            .unwrap();
        // A single move dirties tiles around two positions; with a 64-tile
        // 1000x1000 grid and a 50-unit margin that is a small corner of
        // the grid.
        assert!(
            st.resolved_tiles < eng.tiles() / 2,
            "resolved {} of {}",
            st.resolved_tiles,
            st.total_tiles
        );
        assert!(st.resolved_tiles >= 1);
    }

    #[test]
    fn energy_events_dirty_nothing_under_energy_blind_policies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let bounds = Rect::paper_arena();
        let pts = placement::uniform_points(&mut rng, bounds, 100);
        let energy = vec![50u64; 100];
        let cfg = CdsConfig::policy(Policy::Degree);
        let mut eng =
            ChurnEngine::open(ShardSpec::new(9), bounds, 25.0, &pts, &energy, &cfg).unwrap();
        let st = eng
            .step(&[ChurnEvent::DrainBattery {
                node: 3,
                remaining: 1,
            }])
            .unwrap();
        assert_eq!(st.resolved_tiles, 0, "Degree never reads energy");
        // The same event under an energy policy does dirty tiles.
        let cfg = CdsConfig::policy(Policy::Energy);
        let mut eng =
            ChurnEngine::open(ShardSpec::new(9), bounds, 25.0, &pts, &energy, &cfg).unwrap();
        let st = eng
            .step(&[ChurnEvent::DrainBattery {
                node: 3,
                remaining: 1,
            }])
            .unwrap();
        assert!(st.resolved_tiles >= 1);
        let (m, a, g) = scratch_masks(&eng, bounds);
        assert_eq!(eng.marked(), &m);
        assert_eq!(eng.after_rule1(), &a);
        assert_eq!(eng.gateways(), &g);
    }

    #[test]
    fn rejected_events_leave_state_untouched() {
        // A 3-node path: the centre is the sole gateway, so killing it
        // visibly changes the mask.
        let pts = vec![
            Point2::new(10.0, 50.0),
            Point2::new(30.0, 50.0),
            Point2::new(50.0, 50.0),
        ];
        let energy = vec![5, 5, 5];
        let cfg = CdsConfig::policy(Policy::Id);
        let mut eng = ChurnEngine::open(
            ShardSpec::new(1),
            Rect::paper_arena(),
            25.0,
            &pts,
            &energy,
            &cfg,
        )
        .unwrap();
        let before_gw = eng.gateways().clone();
        assert_eq!(eng.gateway_count(), 1, "the path centre is a gateway");

        assert_eq!(
            eng.apply(&ChurnEvent::MoveNode {
                node: 9,
                to: Point2::new(1.0, 1.0)
            }),
            Err(ChurnError::UnknownNode { node: 9, n: 3 })
        );
        assert_eq!(
            eng.apply(&ChurnEvent::MoveNode {
                node: 0,
                to: Point2::new(500.0, 1.0)
            }),
            Err(ChurnError::OutOfBounds { x: 500.0, y: 1.0 })
        );
        eng.apply(&ChurnEvent::KillNode { node: 1 }).unwrap();
        assert_eq!(
            eng.apply(&ChurnEvent::KillNode { node: 1 }),
            Err(ChurnError::DeadNode { node: 1 }),
            "double kill is a typed error"
        );
        assert_eq!(
            eng.apply(&ChurnEvent::DrainBattery {
                node: 1,
                remaining: 1
            }),
            Err(ChurnError::DeadNode { node: 1 })
        );
        assert!(eng.dirty_tiles().len() <= eng.tiles());
        eng.refresh();
        assert_ne!(eng.gateways(), &before_gw, "the kill did land");
    }

    #[test]
    fn unshardable_configs_are_rejected_at_open() {
        let pts = vec![Point2::new(1.0, 1.0)];
        let err = ChurnEngine::open(
            ShardSpec::new(1),
            Rect::paper_arena(),
            25.0,
            &pts,
            &[1],
            &CdsConfig::sequential(Policy::Id),
        )
        .err()
        .unwrap();
        assert!(matches!(err, ChurnError::Shard(ShardError::Unshardable(_))));
        assert_eq!(err.label(), "unshardable");
        let err = ChurnEngine::open(
            ShardSpec {
                shards: 1,
                halo: 1,
                threads: 1,
            },
            Rect::paper_arena(),
            25.0,
            &pts,
            &[1],
            &CdsConfig::policy(Policy::Id),
        )
        .err()
        .unwrap();
        assert_eq!(err.label(), "halo_too_small");
    }

    #[test]
    fn threaded_refresh_is_bit_identical_to_inline() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let bounds = Rect::paper_arena();
        let pts = placement::uniform_points(&mut rng, bounds, 300);
        let energy: Vec<u64> = (0..300u64).map(|v| (v * 11 + 1) % 60).collect();
        let cfg = CdsConfig::policy(Policy::Energy);
        let mut a =
            ChurnEngine::open(ShardSpec::new(16), bounds, 25.0, &pts, &energy, &cfg).unwrap();
        let mut b = ChurnEngine::open(
            ShardSpec {
                threads: 4,
                ..ShardSpec::new(16)
            },
            bounds,
            25.0,
            &pts,
            &energy,
            &cfg,
        )
        .unwrap();
        let events: Vec<ChurnEvent> = (0..40)
            .map(|i| ChurnEvent::MoveNode {
                node: i,
                to: Point2::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)),
            })
            .collect();
        for ev in &events {
            a.apply(ev).unwrap();
            b.apply(ev).unwrap();
            a.refresh();
            b.refresh();
            assert_eq!(a.gateways(), b.gateways());
            assert_eq!(a.marked(), b.marked());
        }
    }
}
