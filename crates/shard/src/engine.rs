//! The sharded engine: per-tile retained workspaces, halo extraction,
//! ownership-filtered merge.

use crate::error::{check_shardable, ShardError};
use crate::pool::WorkerPool;
use crate::REQUIRED_HALO;
use pacds_core::{CdsConfig, CdsWorkspace};
use pacds_graph::gen::{unit_disk_csr_subset, TilePartition, UnitDiskScratch};
use pacds_graph::{CsrGraph, Neighbors, NodeId, VertexMask};
use pacds_geom::{Point2, Rect, EPS};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Shape of a sharded computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Desired shard (tile/block) count; `0` sizes automatically from `n`
    /// (about one shard per 2048 nodes).
    pub shards: usize,
    /// Halo width in hops. [`REQUIRED_HALO`] is the proven exactness
    /// minimum; wider halos only cost replication. Narrower halos are
    /// rejected by [`ShardedCds::new`].
    pub halo: usize,
    /// Worker threads; `0` uses the machine's available parallelism, `1`
    /// solves every tile inline on the calling thread. Both paths are
    /// allocation-free once warm: the parallel path reuses a persistent
    /// worker pool spawned on the first computation, the inline path never
    /// touches threads at all.
    pub threads: usize,
}

impl ShardSpec {
    /// `shards` shards at the exact halo, solved inline (one thread).
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            halo: REQUIRED_HALO,
            threads: 1,
        }
    }

    /// Automatic shard count, exact halo, inline solve.
    pub fn auto() -> Self {
        Self::new(0)
    }

    /// Automatic shard count, exact halo, one executor per available core
    /// — the shape benches and the CLI should use when they mean
    /// "actually use the machine". (`auto()` deliberately stays inline:
    /// it is the conservative embedding default.)
    pub fn all_cores() -> Self {
        Self {
            shards: 0,
            halo: REQUIRED_HALO,
            threads: 0,
        }
    }

    pub(crate) fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.threads
        }
    }

    pub(crate) fn resolved_shards(&self, n: usize) -> usize {
        if self.shards == 0 {
            n.div_ceil(2048).clamp(1, 4096)
        } else {
            self.shards
        }
    }
}

/// Per-computation totals of the latest [`ShardedCds`] run. The
/// nanosecond figures are measured unconditionally (four `Instant` reads
/// per tile — noise next to a tile solve), so benches and the CLI report
/// per-phase timings without the `obs` feature; in multi-threaded runs the
/// per-tile phases sum worker CPU time, not wall time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Tiles (shards) solved.
    pub tiles: usize,
    /// Nodes merged by ownership (equals the instance's `n`).
    pub owned_nodes: usize,
    /// Halo (non-owned) nodes replicated into tiles, summed.
    pub halo_nodes: usize,
    /// Undirected edges whose endpoints are owned by different tiles.
    pub cross_tile_edges: u64,
    /// Time partitioning the point set (spatial mode only).
    pub partition_ns: u64,
    /// Time gathering halos and building per-tile subgraphs.
    pub halo_build_ns: u64,
    /// Time in per-tile marking + rule passes (including result collection).
    pub solve_ns: u64,
    /// Time scattering per-tile verdicts into the output masks.
    pub merge_ns: u64,
    /// Tiles an executor took from another executor's stripe of the
    /// size-ordered schedule (0 on single-threaded runs, where there is
    /// nobody to steal from).
    pub stolen_tiles: u64,
}

/// One executor's work-distribution totals from the latest computation —
/// the evidence that parallel runs actually spread tiles across cores
/// (wall-clock speedup is machine-dependent; these counters are not).
/// Index 0 is the calling thread, which participates as an executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadWork {
    /// Tiles this executor solved (own stripe + stolen).
    pub tiles_solved: u64,
    /// Of those, tiles taken from another executor's stripe.
    pub tiles_stolen: u64,
    /// Wall time this executor spent inside the tile loop, nanoseconds.
    pub busy_ns: u64,
}

/// One worker's retained state; a slot solves many tiles sequentially, so
/// memory scales with threads x largest tile, not with shard count.
/// `pub(crate)` so the churn engine reuses the exact same tile machinery.
#[derive(Debug, Default)]
pub(crate) struct WorkerSlot {
    pub(crate) ws: CdsWorkspace,
    pub(crate) csr: CsrGraph,
    pub(crate) locals: Vec<u32>,
    pub(crate) owned_flags: Vec<bool>,
    pub(crate) energy: Vec<u64>,
    pub(crate) uds: UnitDiskScratch,
    pub(crate) g2l: Vec<u32>,
    pub(crate) seen: Vec<bool>,
    pub(crate) queue: Vec<u32>,
    pub(crate) results: Vec<(u32, u8)>,
    pub(crate) halo_nodes: usize,
    pub(crate) cross_edges: u64,
    pub(crate) halo_build_ns: u64,
    pub(crate) solve_ns: u64,
    pub(crate) tiles_solved: u64,
    pub(crate) tiles_stolen: u64,
    pub(crate) busy_ns: u64,
}

impl WorkerSlot {
    pub(crate) fn begin(&mut self) {
        self.results.clear();
        self.halo_nodes = 0;
        self.cross_edges = 0;
        self.halo_build_ns = 0;
        self.solve_ns = 0;
        self.tiles_solved = 0;
        self.tiles_stolen = 0;
        self.busy_ns = 0;
    }
}

/// The sharded CDS engine.
///
/// Partitions an instance into shards, solves each shard's halo-expanded
/// induced subgraph on a retained [`CdsWorkspace`], and merges verdicts by
/// ownership. For every shardable configuration (see
/// [`check_shardable`](crate::check_shardable)) the merged `marked` /
/// `after_rule1` / `gateways` masks and round count are **bit-identical**
/// to [`CdsWorkspace::compute`] on the whole graph.
///
/// Two entry points: [`ShardedCds::compute_unit_disk`] shards a point set
/// geometrically and never materialises the whole-graph adjacency (the
/// large-`n` streaming path), and [`ShardedCds::compute_graph`] shards an
/// existing graph into contiguous id blocks with a BFS halo (the serving
/// path). All buffers are retained; with `threads == 1` a cache-warm
/// computation performs zero heap allocations.
#[derive(Debug, Default)]
pub struct ShardedCds {
    spec: ShardSpec,
    partition: TilePartition,
    slots: Vec<WorkerSlot>,
    pool: WorkerPool,
    /// Tile ids sorted descending by estimated cost (the LPT schedule);
    /// executor `w` owns positions `w, w + W, w + 2W, ...`.
    order: Vec<u32>,
    /// Per-tile cost estimates backing the sort (owned population in the
    /// spatial mode, degree mass in the graph mode).
    weights: Vec<u64>,
    /// Per-executor stripe cursors; a fetch-add claims one stripe position,
    /// so every tile is executed exactly once whether taken by its owner
    /// or by a thief.
    cursors: Vec<AtomicUsize>,
    marked: VertexMask,
    after1: VertexMask,
    gateways: VertexMask,
    rounds: usize,
    stats: ShardStats,
    /// Trace id spans of the next computation are attributed to
    /// ([`pacds_obs::TraceId::NONE`] = unsampled, spans are no-ops).
    trace: pacds_obs::TraceId,
}

impl Default for ShardSpec {
    fn default() -> Self {
        Self::auto()
    }
}

impl ShardedCds {
    /// An engine with the given shape. Rejects halos below
    /// [`REQUIRED_HALO`] — a narrower halo provably breaks bit-identity
    /// (see the corridor proptest in `tests/props.rs`).
    pub fn new(spec: ShardSpec) -> Result<Self, ShardError> {
        if spec.halo < REQUIRED_HALO {
            return Err(ShardError::HaloTooSmall {
                halo: spec.halo,
                required: REQUIRED_HALO,
            });
        }
        Ok(Self::with_unchecked_halo(spec))
    }

    /// An engine that skips the halo-width validation. Exists so tests and
    /// diagnostics can *demonstrate* why [`REQUIRED_HALO`] is the minimum;
    /// results below it are not exact.
    pub fn with_unchecked_halo(spec: ShardSpec) -> Self {
        Self {
            spec,
            ..Self::default()
        }
    }

    /// The engine's shape.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Attributes the spans of subsequent computations to `trace` (the
    /// serving layer threads each request's id through here). Sticky until
    /// changed; [`pacds_obs::TraceId::NONE`] turns attribution back off.
    #[inline]
    pub fn set_trace(&mut self, trace: pacds_obs::TraceId) {
        self.trace = trace;
    }

    /// Sharded CDS of the unit-disk graph of `points` (radius-`radius`
    /// within `bounds`) — the geometry is partitioned into tiles and each
    /// tile's subgraph is built directly from the points, so the whole
    /// adjacency structure never exists in memory.
    ///
    /// Bit-identical to the whole-graph pipeline on the same instance for
    /// every shardable `cfg`.
    ///
    /// # Panics
    /// Panics if `radius <= 0`, or if `cfg.policy.needs_energy()` and
    /// `energy` is absent or of the wrong length (the
    /// [`CdsWorkspace::compute`] contract).
    pub fn compute_unit_disk(
        &mut self,
        bounds: Rect,
        radius: f64,
        points: &[Point2],
        energy: Option<&[u64]>,
        cfg: &CdsConfig,
    ) -> Result<&VertexMask, ShardError> {
        self.compute_unit_disk_masked(bounds, radius, points, None, energy, cfg)
    }

    /// [`ShardedCds::compute_unit_disk`] with an optional off-mask: hosts
    /// flagged in `off` keep their id slot but are treated as switched off
    /// (no edges in either direction, all verdict bits false) — the same
    /// dead-host model as [`pacds_graph::gen::unit_disk_csr`]. This is the
    /// from-scratch reference the churn engine is pinned against: an
    /// isolated host affects nobody's neighbourhood, degree, or priority,
    /// so excluding it from each tile's subgraph is bit-identical to the
    /// whole-graph pipeline run with that host isolated.
    ///
    /// # Panics
    /// As [`ShardedCds::compute_unit_disk`], plus `off` (when present) must
    /// have one flag per point.
    pub fn compute_unit_disk_masked(
        &mut self,
        bounds: Rect,
        radius: f64,
        points: &[Point2],
        off: Option<&[bool]>,
        energy: Option<&[u64]>,
        cfg: &CdsConfig,
    ) -> Result<&VertexMask, ShardError> {
        check_shardable(cfg)?;
        assert!(radius > 0.0, "transmission radius must be positive");
        let n = points.len();
        if let Some(e) = energy {
            assert_eq!(e.len(), n, "energy length must equal point count");
        }
        if let Some(o) = off {
            assert_eq!(o.len(), n, "off-mask length must equal point count");
        }

        let shards = self.spec.resolved_shards(n);
        let pt = Instant::now();
        {
            let _t = pacds_obs::phase_timer(pacds_obs::Phase::ShardPartition);
            let (tx, ty) = grid_for(shards, bounds.width(), bounds.height());
            self.partition.build(bounds, tx, ty, points);
        }
        let partition_ns = pt.elapsed().as_nanos() as u64;

        let ntiles = self.partition.tiles();
        let margin = self.spec.halo as f64 * (radius * radius + EPS).sqrt();
        let nthreads = self.spec.resolved_threads().clamp(1, ntiles.max(1));
        self.ensure_slots(nthreads);

        // LPT schedule: owned population is the cheap, accurate-enough
        // proxy for a tile's halo-build + solve cost.
        let partition = &self.partition;
        self.weights.clear();
        self.weights
            .extend((0..ntiles).map(|t| partition.owned(t).len() as u64));
        schedule_order(&mut self.order, &self.weights);

        let cfg_ref = cfg;
        let trace = self.trace;
        let _dispatch = pacds_obs::span(trace, pacds_obs::SpanKind::ShardDispatch, ntiles as u32);
        run_tiles(
            &mut self.pool,
            &mut self.slots[..nthreads],
            &self.order,
            &self.cursors[..nthreads],
            |slot, t| {
                let _s = pacds_obs::span(trace, pacds_obs::SpanKind::TileSolve, t as u32);
                let hb = Instant::now();
                {
                    let _t = pacds_obs::phase_timer(pacds_obs::Phase::ShardHaloBuild);
                    partition.gather_expanded(t, margin, points, &mut slot.locals);
                    if let Some(off) = off {
                        // Off hosts contribute no edges anywhere, so the
                        // induced live subgraph equals the full subgraph
                        // with them isolated (and local ids still ascend in
                        // global id order — `retain` preserves order).
                        slot.locals.retain(|&g| !off[g as usize]);
                    }
                    unit_disk_csr_subset(radius, points, &slot.locals, &mut slot.csr, &mut slot.uds);
                }
                slot.halo_build_ns += hb.elapsed().as_nanos() as u64;

                // Ascending-list merge walk: flag the live locals this tile
                // owns; owned off hosts get all-false verdicts directly.
                let owned = partition.owned(t);
                slot.owned_flags.clear();
                slot.owned_flags.resize(slot.locals.len(), false);
                let mut li = 0;
                let mut owned_live = 0;
                for &g in owned {
                    if off.is_some_and(|o| o[g as usize]) {
                        slot.results.push((g, 0));
                        continue;
                    }
                    while slot.locals[li] < g {
                        li += 1;
                    }
                    debug_assert_eq!(slot.locals[li], g, "tile {t} halo lost an owned node");
                    slot.owned_flags[li] = true;
                    li += 1;
                    owned_live += 1;
                }
                solve_locals(slot, owned_live, energy, cfg_ref);
            },
        );
        drop(_dispatch);

        // The single-pass schedule runs exactly one (Rule 1; Rule 2) round
        // when the policy prunes — same as the whole-graph workspace.
        self.finish(n, ntiles, partition_ns, usize::from(cfg.policy.prunes()))
    }

    /// Sharded CDS of an existing graph: vertices are split into
    /// `spec.shards` contiguous id blocks, each solved against a
    /// `spec.halo`-hop BFS halo. Used where the graph already exists (the
    /// serving layer's decoded edge lists, the conformance corpus); the
    /// win over one whole-graph workspace is that the dense neighbour
    /// bitmap only ever spans a block plus its halo.
    ///
    /// Bit-identical to the whole-graph pipeline for every shardable `cfg`.
    ///
    /// # Panics
    /// Same contract as [`ShardedCds::compute_unit_disk`] for `energy`.
    pub fn compute_graph<G: Neighbors + Sync + ?Sized>(
        &mut self,
        g: &G,
        energy: Option<&[u64]>,
        cfg: &CdsConfig,
    ) -> Result<&VertexMask, ShardError> {
        check_shardable(cfg)?;
        let n = g.n();
        if let Some(e) = energy {
            assert_eq!(e.len(), n, "energy length must equal vertex count");
        }

        let nblocks = self.spec.resolved_shards(n).min(n.max(1));
        let halo = self.spec.halo;
        let nthreads = self.spec.resolved_threads().clamp(1, nblocks);
        self.ensure_slots(nthreads);

        // LPT schedule: block populations are near-uniform by
        // construction, so weigh blocks by degree mass (one `degree` read
        // per vertex — noise next to the BFS halo that follows).
        self.weights.clear();
        self.weights.extend((0..nblocks).map(|b| {
            (b * n / nblocks..(b + 1) * n / nblocks)
                .map(|v| g.degree(v as NodeId) as u64 + 1)
                .sum::<u64>()
        }));
        schedule_order(&mut self.order, &self.weights);

        let cfg_ref = cfg;
        let trace = self.trace;
        let _dispatch = pacds_obs::span(trace, pacds_obs::SpanKind::ShardDispatch, nblocks as u32);
        run_tiles(
            &mut self.pool,
            &mut self.slots[..nthreads],
            &self.order,
            &self.cursors[..nthreads],
            |slot, b| {
                let _s = pacds_obs::span(trace, pacds_obs::SpanKind::TileSolve, b as u32);
                let lo = (b * n / nblocks) as u32;
                let hi = ((b + 1) * n / nblocks) as u32;
                let hb = Instant::now();
                {
                    let _t = pacds_obs::phase_timer(pacds_obs::Phase::ShardHaloBuild);
                    gather_bfs_halo(slot, g, lo, hi, halo);
                    let (csr, locals, g2l) = (&mut slot.csr, &slot.locals, &mut slot.g2l);
                    csr.rebuild_induced(g, locals, g2l);
                }
                slot.halo_build_ns += hb.elapsed().as_nanos() as u64;

                slot.owned_flags.clear();
                slot.owned_flags.resize(slot.locals.len(), false);
                for (li, &v) in slot.locals.iter().enumerate() {
                    if v >= lo && v < hi {
                        slot.owned_flags[li] = true;
                    }
                }
                solve_locals(slot, (hi - lo) as usize, energy, cfg_ref);
            },
        );
        drop(_dispatch);

        self.finish(n, nblocks, 0, usize::from(cfg.policy.prunes()))
    }

    fn ensure_slots(&mut self, nthreads: usize) {
        if self.slots.len() < nthreads {
            self.slots.resize_with(nthreads, WorkerSlot::default);
        }
        if self.cursors.len() < nthreads {
            self.cursors.resize_with(nthreads, AtomicUsize::default);
        }
        for c in &self.cursors {
            c.store(0, Ordering::Relaxed);
        }
        // Reset every slot, not just the ones this run will use: `finish`
        // sums over all slots, and a previous wider run must not leak
        // results or tallies into this one.
        for slot in &mut self.slots {
            slot.begin();
        }
    }

    /// Ownership-filtered merge + stats/obs flush; every node is owned by
    /// exactly one tile, so the scatter covers each index exactly once.
    fn finish(
        &mut self,
        n: usize,
        tiles: usize,
        partition_ns: u64,
        rounds: usize,
    ) -> Result<&VertexMask, ShardError> {
        self.rounds = rounds;
        let mg = Instant::now();
        let merged = {
            let _s = pacds_obs::span(self.trace, pacds_obs::SpanKind::ShardMerge, tiles as u32);
            let _t = pacds_obs::phase_timer(pacds_obs::Phase::ShardMerge);
            self.marked.clear();
            self.marked.resize(n, false);
            self.after1.clear();
            self.after1.resize(n, false);
            self.gateways.clear();
            self.gateways.resize(n, false);
            let mut merged = 0usize;
            for slot in &self.slots {
                for &(g, bits) in &slot.results {
                    let g = g as usize;
                    self.marked[g] = bits & 1 != 0;
                    self.after1[g] = bits & 2 != 0;
                    self.gateways[g] = bits & 4 != 0;
                }
                merged += slot.results.len();
            }
            merged
        };
        assert_eq!(merged, n, "ownership merge must cover every node exactly once");

        self.stats = ShardStats {
            tiles,
            owned_nodes: n,
            halo_nodes: self.slots.iter().map(|s| s.halo_nodes).sum(),
            cross_tile_edges: self.slots.iter().map(|s| s.cross_edges).sum(),
            partition_ns,
            halo_build_ns: self.slots.iter().map(|s| s.halo_build_ns).sum(),
            solve_ns: self.slots.iter().map(|s| s.solve_ns).sum(),
            merge_ns: mg.elapsed().as_nanos() as u64,
            stolen_tiles: self.slots.iter().map(|s| s.tiles_stolen).sum(),
        };
        pacds_obs::add(pacds_obs::Counter::ShardComputes, 1);
        pacds_obs::add(pacds_obs::Counter::ShardTiles, tiles as u64);
        pacds_obs::add(pacds_obs::Counter::ShardOwnedNodes, n as u64);
        pacds_obs::add(
            pacds_obs::Counter::ShardHaloNodes,
            self.stats.halo_nodes as u64,
        );
        pacds_obs::add(
            pacds_obs::Counter::ShardCrossTileEdges,
            self.stats.cross_tile_edges,
        );
        pacds_obs::add(
            pacds_obs::Counter::ShardTilesStolen,
            self.stats.stolen_tiles,
        );
        pacds_obs::add(
            pacds_obs::Counter::ShardBusyNs,
            self.slots.iter().map(|s| s.busy_ns).sum(),
        );
        Ok(&self.gateways)
    }

    /// The merged gateway mask of the latest computation.
    #[inline]
    pub fn gateways(&self) -> &VertexMask {
        &self.gateways
    }

    /// Number of gateways in the latest result.
    pub fn gateway_count(&self) -> usize {
        self.gateways.iter().filter(|&&b| b).count()
    }

    /// The merged marking-process output of the latest computation.
    #[inline]
    pub fn marked(&self) -> &VertexMask {
        &self.marked
    }

    /// The merged after-Rule-1 mask of the latest computation.
    #[inline]
    pub fn after_rule1(&self) -> &VertexMask {
        &self.after1
    }

    /// Rounds executed (matches the whole-graph workspace: 1 when the
    /// policy prunes, 0 otherwise).
    #[inline]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Totals of the latest computation.
    #[inline]
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// Per-executor work distribution of the latest computation (index 0
    /// is the calling thread). Allocates — a diagnostics accessor, not
    /// part of the warm path.
    pub fn thread_work(&self) -> Vec<ThreadWork> {
        self.slots
            .iter()
            .map(|s| ThreadWork {
                tiles_solved: s.tiles_solved,
                tiles_stolen: s.tiles_stolen,
                busy_ns: s.busy_ns,
            })
            .collect()
    }
}

/// The per-tile solve tail shared by both modes: slice energy, run the
/// retained workspace on the local subgraph, collect owned verdicts and
/// halo/cross-edge tallies.
pub(crate) fn solve_locals(
    slot: &mut WorkerSlot,
    owned_count: usize,
    energy: Option<&[u64]>,
    cfg: &CdsConfig,
) {
    let sv = Instant::now();
    {
        let _t = pacds_obs::phase_timer(pacds_obs::Phase::ShardSolve);
        let energy_local = match energy {
            Some(e) if cfg.policy.needs_energy() => {
                slot.energy.clear();
                slot.energy
                    .extend(slot.locals.iter().map(|&g| e[g as usize]));
                Some(slot.energy.as_slice())
            }
            _ => None,
        };
        slot.ws.compute(&slot.csr, energy_local, cfg);

        let (marked, after1, gw) = (slot.ws.marked(), slot.ws.after_rule1(), slot.ws.gateways());
        for (li, &g) in slot.locals.iter().enumerate() {
            if slot.owned_flags[li] {
                let bits =
                    u8::from(marked[li]) | (u8::from(after1[li]) << 1) | (u8::from(gw[li]) << 2);
                slot.results.push((g, bits));
            }
        }

        slot.halo_nodes += slot.locals.len() - owned_count;
        let mut cross = 0u64;
        for (li, &g) in slot.locals.iter().enumerate() {
            if !slot.owned_flags[li] {
                continue;
            }
            for &lu in slot.csr.neighbors(li as NodeId) {
                // Count each cross-ownership edge once: from the tile
                // owning the smaller-id endpoint.
                if !slot.owned_flags[lu as usize] && slot.locals[lu as usize] > g {
                    cross += 1;
                }
            }
        }
        slot.cross_edges += cross;
    }
    slot.solve_ns += sv.elapsed().as_nanos() as u64;
}

/// Collects into `slot.locals` (ascending) every vertex within `halo` hops
/// of the id block `[lo, hi)`, using the slot's retained BFS scratch.
fn gather_bfs_halo<G: Neighbors + ?Sized>(
    slot: &mut WorkerSlot,
    g: &G,
    lo: u32,
    hi: u32,
    halo: usize,
) {
    if slot.seen.len() < g.n() {
        slot.seen.resize(g.n(), false);
    }
    slot.queue.clear();
    for v in lo..hi {
        slot.seen[v as usize] = true;
        slot.queue.push(v);
    }
    let mut frontier = 0usize;
    for _ in 0..halo {
        let end = slot.queue.len();
        for qi in frontier..end {
            let v = slot.queue[qi];
            for &u in g.neighbors(v) {
                if !slot.seen[u as usize] {
                    slot.seen[u as usize] = true;
                    slot.queue.push(u);
                }
            }
        }
        frontier = end;
    }
    slot.locals.clear();
    slot.locals.extend_from_slice(&slot.queue);
    slot.locals.sort_unstable();
    for &v in &slot.queue {
        slot.seen[v as usize] = false;
    }
}

/// Refills `order` with `0..weights.len()` sorted descending by weight —
/// the LPT (longest-processing-time-first) schedule. Big tiles start
/// first, so the stragglers at the end of the run are the *small* tiles
/// and the final imbalance is bounded by one small tile per executor,
/// instead of a worst case where an executor picks up the largest tile
/// last. In-place `sort_unstable` on a retained buffer: allocation-free
/// once warm. Equal weights tie-break on the tile id, keeping schedules
/// reproducible run to run.
pub(crate) fn schedule_order(order: &mut Vec<u32>, weights: &[u64]) {
    order.clear();
    order.extend(0..weights.len() as u32);
    order.sort_unstable_by_key(|&t| (std::cmp::Reverse(weights[t as usize]), t));
}

/// Base pointer of the slot table, shared with the pool job. Each executor
/// id indexes a distinct slot, so the mutable accesses are disjoint by
/// construction.
#[derive(Clone, Copy)]
struct SlotsPtr(*mut WorkerSlot);
unsafe impl Send for SlotsPtr {}
unsafe impl Sync for SlotsPtr {}

impl SlotsPtr {
    /// # Safety
    /// The caller must ensure `id` is in bounds and that no other live
    /// reference aliases slot `id`.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slot(&self, id: usize) -> &mut WorkerSlot {
        &mut *self.0.add(id)
    }
}

/// Runs `f` over every tile in `order`, one executor per slot.
///
/// A single slot runs inline with no thread traffic at all. With more,
/// the persistent pool runs a strided-stripe schedule over the
/// size-ordered `order`: executor `w` owns positions `w, w + W, ...`
/// (interleaving spreads the big front-of-order tiles evenly), claims
/// them through its own atomic cursor, and when its stripe runs dry
/// steals from the other stripes — every claim is a `fetch_add`, so each
/// tile runs exactly once no matter who takes it. Per-slot
/// solved/stolen/busy tallies feed [`ShardStats`], [`ThreadWork`] and the
/// obs per-thread table.
pub(crate) fn run_tiles<F>(
    pool: &mut WorkerPool,
    slots: &mut [WorkerSlot],
    order: &[u32],
    cursors: &[AtomicUsize],
    f: F,
) where
    F: Fn(&mut WorkerSlot, usize) + Sync,
{
    let nworkers = slots.len();
    if nworkers <= 1 {
        let slot = &mut slots[0];
        let start = Instant::now();
        for &t in order {
            f(slot, t as usize);
        }
        slot.tiles_solved += order.len() as u64;
        slot.busy_ns += start.elapsed().as_nanos() as u64;
        pacds_obs::shard_thread_tiles_tick(order.len() as u64);
        return;
    }
    debug_assert!(cursors.len() >= nworkers);
    let base = SlotsPtr(slots.as_mut_ptr());
    pool.run(nworkers, &|id| {
        // SAFETY: executor ids within one generation are distinct and
        // `id < nworkers == slots.len()`, so each executor holds the only
        // reference to its slot; the pool's completion barrier orders all
        // slot writes before `run_tiles` returns.
        let slot = unsafe { base.slot(id) };
        let start = Instant::now();
        let (mut solved, mut stolen) = (0u64, 0u64);
        'tiles: loop {
            // Own stripe first; on a dry stripe, sweep the others.
            for d in 0..nworkers {
                let v = (id + d) % nworkers;
                let k = cursors[v].fetch_add(1, Ordering::Relaxed);
                let pos = v + k * nworkers;
                if pos < order.len() {
                    f(slot, order[pos] as usize);
                    solved += 1;
                    stolen += u64::from(d != 0);
                    continue 'tiles;
                }
            }
            break;
        }
        slot.tiles_solved += solved;
        slot.tiles_stolen += stolen;
        slot.busy_ns += start.elapsed().as_nanos() as u64;
        pacds_obs::shard_thread_tiles_tick(solved);
    });
}

/// Picks a tile grid of about `shards` tiles matching the domain's aspect
/// ratio (square domains get square grids: 4 -> 2x2, 16 -> 4x4).
pub(crate) fn grid_for(shards: usize, width: f64, height: f64) -> (usize, usize) {
    let s = shards.max(1);
    let aspect = if width > 0.0 && height > 0.0 {
        width / height
    } else {
        1.0
    };
    let tx = (((s as f64) * aspect).sqrt().round() as usize).clamp(1, s);
    let ty = s.div_ceil(tx);
    (tx, ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::Policy;
    use pacds_geom::placement;
    use pacds_graph::gen;
    use rand::SeedableRng;

    #[test]
    fn grid_for_matches_the_issue_shard_counts() {
        assert_eq!(grid_for(1, 100.0, 100.0), (1, 1));
        assert_eq!(grid_for(2, 100.0, 100.0), (1, 2));
        assert_eq!(grid_for(4, 100.0, 100.0), (2, 2));
        assert_eq!(grid_for(16, 100.0, 100.0), (4, 4));
        // Wide domains shard along x.
        let (tx, ty) = grid_for(8, 400.0, 100.0);
        assert!(tx > ty);
        assert!(tx * ty >= 8);
    }

    #[test]
    fn narrow_halo_is_rejected_and_unchecked_escape_exists() {
        let narrow = ShardSpec {
            shards: 4,
            halo: REQUIRED_HALO - 1,
            threads: 1,
        };
        assert_eq!(
            ShardedCds::new(narrow).err(),
            Some(ShardError::HaloTooSmall {
                halo: 1,
                required: REQUIRED_HALO
            })
        );
        let _ = ShardedCds::with_unchecked_halo(narrow);
        assert!(ShardedCds::new(ShardSpec::new(4)).is_ok());
    }

    #[test]
    fn unshardable_configs_return_typed_errors_without_computing() {
        let mut eng = ShardedCds::new(ShardSpec::new(4)).unwrap();
        let pts = vec![Point2::new(1.0, 1.0), Point2::new(2.0, 1.0)];
        let cfg = CdsConfig::sequential(Policy::Id);
        assert!(matches!(
            eng.compute_unit_disk(Rect::paper_arena(), 25.0, &pts, None, &cfg),
            Err(ShardError::Unshardable(_))
        ));
        let g = gen::path(5);
        assert!(matches!(
            eng.compute_graph(&g, None, &CdsConfig::fixpoint(Policy::Degree)),
            Err(ShardError::Unshardable(_))
        ));
    }

    #[test]
    fn spatial_mode_matches_the_whole_graph_workspace() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(91);
        let mut ws = CdsWorkspace::new();
        for n in [0usize, 1, 5, 60, 250] {
            let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), n);
            let energy: Vec<u64> = (0..n as u64).map(|v| (v * 13 + 5) % 40).collect();
            let whole = gen::unit_disk(Rect::paper_arena(), 25.0, &pts);
            for shards in [1usize, 2, 4, 16] {
                let mut eng = ShardedCds::new(ShardSpec::new(shards)).unwrap();
                for policy in Policy::ALL {
                    let cfg = CdsConfig::policy(policy);
                    let got = eng
                        .compute_unit_disk(Rect::paper_arena(), 25.0, &pts, Some(&energy), &cfg)
                        .unwrap()
                        .clone();
                    let expected = ws.compute(&whole, Some(&energy), &cfg).clone();
                    assert_eq!(got, expected, "n={n} shards={shards} {policy:?}");
                    assert_eq!(eng.marked(), ws.marked(), "n={n} shards={shards}");
                    assert_eq!(eng.after_rule1(), ws.after_rule1(), "n={n} shards={shards}");
                    assert_eq!(eng.rounds(), ws.rounds(), "n={n} shards={shards}");
                }
            }
        }
    }

    #[test]
    fn masked_mode_matches_the_whole_graph_with_isolated_hosts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(97);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 180);
        let energy: Vec<u64> = (0..180u64).map(|v| (v * 13 + 5) % 97).collect();
        let mut off = vec![false; 180];
        for i in [0usize, 17, 63, 118, 179] {
            off[i] = true;
        }
        let mut whole = gen::unit_disk(Rect::paper_arena(), 25.0, &pts);
        for (i, &o) in off.iter().enumerate() {
            if o {
                whole.isolate(i as NodeId);
            }
        }
        let mut ws = CdsWorkspace::new();
        for shards in [1usize, 4, 16] {
            let mut eng = ShardedCds::new(ShardSpec::new(shards)).unwrap();
            for policy in Policy::ALL {
                let cfg = CdsConfig::policy(policy);
                let got = eng
                    .compute_unit_disk_masked(
                        Rect::paper_arena(),
                        25.0,
                        &pts,
                        Some(&off),
                        Some(&energy),
                        &cfg,
                    )
                    .unwrap()
                    .clone();
                let expected = ws.compute(&whole, Some(&energy), &cfg).clone();
                assert_eq!(got, expected, "shards={shards} {policy:?}");
                assert_eq!(eng.marked(), ws.marked(), "shards={shards} {policy:?}");
                assert_eq!(eng.after_rule1(), ws.after_rule1(), "shards={shards} {policy:?}");
                for i in [0usize, 17, 63, 118, 179] {
                    assert!(!got[i], "off hosts never serve as gateways");
                }
            }
        }
    }

    #[test]
    fn graph_mode_matches_the_whole_graph_workspace() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(92);
        let mut ws = CdsWorkspace::new();
        for n in [0usize, 1, 7, 80] {
            let g = gen::gnp(&mut rng, n, 0.15);
            let energy: Vec<u64> = (0..n as u64).map(|v| (v * 7 + 1) % 30).collect();
            for shards in [1usize, 2, 4, 16] {
                let mut eng = ShardedCds::new(ShardSpec::new(shards)).unwrap();
                for policy in Policy::ALL {
                    let cfg = CdsConfig::policy(policy);
                    let got = eng.compute_graph(&g, Some(&energy), &cfg).unwrap().clone();
                    let expected = ws.compute(&g, Some(&energy), &cfg).clone();
                    assert_eq!(got, expected, "n={n} shards={shards} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn multi_threaded_solve_is_bit_identical_to_inline() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(93);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 300);
        let cfg = CdsConfig::policy(Policy::Degree);
        let mut inline = ShardedCds::new(ShardSpec::new(16)).unwrap();
        let a = inline
            .compute_unit_disk(Rect::paper_arena(), 25.0, &pts, None, &cfg)
            .unwrap()
            .clone();
        let mut threaded = ShardedCds::new(ShardSpec {
            threads: 4,
            ..ShardSpec::new(16)
        })
        .unwrap();
        let b = threaded
            .compute_unit_disk(Rect::paper_arena(), 25.0, &pts, None, &cfg)
            .unwrap()
            .clone();
        assert_eq!(a, b);
        assert_eq!(inline.stats().halo_nodes, threaded.stats().halo_nodes);
        assert_eq!(
            inline.stats().cross_tile_edges,
            threaded.stats().cross_tile_edges
        );
    }

    #[test]
    fn stats_are_consistent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(94);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 200);
        let mut eng = ShardedCds::new(ShardSpec::new(4)).unwrap();
        let cfg = CdsConfig::policy(Policy::Id);
        eng.compute_unit_disk(Rect::paper_arena(), 25.0, &pts, None, &cfg)
            .unwrap();
        let st = eng.stats();
        assert_eq!(st.tiles, 4);
        assert_eq!(st.owned_nodes, 200);
        assert!(st.halo_nodes > 0, "4 tiles on a 100x100 arena need halos");
        assert!(st.cross_tile_edges > 0);
        // Cross edges are a subset of all edges.
        let whole = gen::unit_disk(Rect::paper_arena(), 25.0, &pts);
        assert!(st.cross_tile_edges <= whole.m() as u64);
        // With a single shard there is no halo and no cross edge.
        let mut one = ShardedCds::new(ShardSpec::new(1)).unwrap();
        one.compute_unit_disk(Rect::paper_arena(), 25.0, &pts, None, &cfg)
            .unwrap();
        assert_eq!(one.stats().halo_nodes, 0);
        assert_eq!(one.stats().cross_tile_edges, 0);
    }

    #[test]
    fn schedule_is_descending_by_weight_with_id_tie_break() {
        let mut order = Vec::new();
        schedule_order(&mut order, &[3, 9, 1, 9, 3]);
        assert_eq!(order, vec![1, 3, 0, 4, 2]);
        schedule_order(&mut order, &[]);
        assert!(order.is_empty());
        // The buffer is fully refilled, not appended.
        schedule_order(&mut order, &[5]);
        assert_eq!(order, vec![0]);
    }

    #[test]
    fn thread_work_tallies_cover_every_tile_exactly_once() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(95);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 400);
        let cfg = CdsConfig::policy(Policy::Id);

        let mut inline = ShardedCds::new(ShardSpec::new(16)).unwrap();
        inline
            .compute_unit_disk(Rect::paper_arena(), 25.0, &pts, None, &cfg)
            .unwrap();
        let w = inline.thread_work();
        assert_eq!(w.iter().map(|t| t.tiles_solved).sum::<u64>(), 16);
        assert_eq!(w.iter().map(|t| t.tiles_stolen).sum::<u64>(), 0);
        assert_eq!(inline.stats().stolen_tiles, 0);
        assert!(w[0].busy_ns > 0, "the inline executor records busy time");

        let mut par = ShardedCds::new(ShardSpec {
            threads: 3,
            ..ShardSpec::new(16)
        })
        .unwrap();
        par.compute_unit_disk(Rect::paper_arena(), 25.0, &pts, None, &cfg)
            .unwrap();
        let w = par.thread_work();
        assert_eq!(
            w.iter().map(|t| t.tiles_solved).sum::<u64>(),
            16,
            "strided claims must cover each tile exactly once: {w:?}"
        );
        let stolen: u64 = w.iter().map(|t| t.tiles_stolen).sum();
        assert_eq!(par.stats().stolen_tiles, stolen);
        assert!(
            w.iter().all(|t| t.tiles_stolen <= t.tiles_solved),
            "stolen tiles are a subset of solved tiles: {w:?}"
        );
        // Graph mode maintains the same invariant.
        let mut rng = rand::rngs::StdRng::seed_from_u64(96);
        let g = gen::gnp(&mut rng, 120, 0.1);
        let mut eng = ShardedCds::new(ShardSpec {
            threads: 2,
            ..ShardSpec::new(8)
        })
        .unwrap();
        eng.compute_graph(&g, None, &cfg).unwrap();
        let w = eng.thread_work();
        assert_eq!(w.iter().map(|t| t.tiles_solved).sum::<u64>(), 8);
    }

    #[test]
    fn all_cores_spec_uses_machine_parallelism() {
        let spec = ShardSpec::all_cores();
        assert_eq!(spec.threads, 0);
        assert_eq!(spec.halo, REQUIRED_HALO);
        assert!(spec.resolved_threads() >= 1);
        // auto() stays inline — embedding code that asks for no threads
        // gets none.
        assert_eq!(ShardSpec::auto().threads, 1);
    }

    #[test]
    fn auto_shards_scale_with_n() {
        assert_eq!(ShardSpec::auto().resolved_shards(0), 1);
        assert_eq!(ShardSpec::auto().resolved_shards(2048), 1);
        assert_eq!(ShardSpec::auto().resolved_shards(100_000), 49);
        assert_eq!(ShardSpec::auto().resolved_shards(10_000_000), 4096);
    }
}
