//! Typed rejection of configurations the sharded engine cannot run.

use pacds_core::{Application, CdsConfig, PruneSchedule, Rule2Semantics};
use std::fmt;

/// Why a [`CdsConfig`] is not shardable.
///
/// The sharded engine solves each tile against a bounded halo and merges
/// by ownership; that is only exact when every removal decision is a pure
/// function of a node's bounded neighbourhood under a *snapshot* of the
/// marked set. Configurations that thread global visit order or unbounded
/// rounds through the decisions are rejected up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnshardableReason {
    /// Sequential application visits vertices in ascending global id and
    /// lets later decisions observe earlier removals — a chain that can
    /// span the whole graph. Global order is not shardable.
    SequentialApplication,
    /// The fixpoint schedule iterates (Rule 1; Rule 2) until stable; each
    /// extra round widens the dependency radius by another two hops, so no
    /// fixed halo bounds it.
    FixpointSchedule,
    /// Case-analysis Rule 2 (the paper's literal extended rule) compares
    /// priorities across a pair chosen by a case split whose outcome is not
    /// a pure min-of-three; its decisions are not stable under the halo
    /// truncation argument, so only min-of-three semantics shard.
    CaseAnalysisRule2,
}

impl UnshardableReason {
    /// Stable machine-readable label (CLI/serve JSON output).
    pub fn label(self) -> &'static str {
        match self {
            Self::SequentialApplication => "sequential_application",
            Self::FixpointSchedule => "fixpoint_schedule",
            Self::CaseAnalysisRule2 => "case_analysis_rule2",
        }
    }
}

impl fmt::Display for UnshardableReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SequentialApplication => {
                write!(f, "sequential application: global visit order is not shardable")
            }
            Self::FixpointSchedule => {
                write!(f, "fixpoint schedule: unbounded rounds exceed any fixed halo")
            }
            Self::CaseAnalysisRule2 => {
                write!(f, "case-analysis Rule 2: not stable under halo truncation")
            }
        }
    }
}

/// Errors returned by the sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// The configuration's semantics cannot be sharded at any halo width.
    Unshardable(UnshardableReason),
    /// The requested halo is below the proven minimum
    /// ([`crate::REQUIRED_HALO`]); a narrower halo provably breaks
    /// bit-identity (see the negative corridor proptest).
    HaloTooSmall {
        /// The halo that was requested.
        halo: usize,
        /// The minimum exact halo.
        required: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unshardable(r) => write!(f, "configuration is not shardable: {r}"),
            Self::HaloTooSmall { halo, required } => write!(
                f,
                "halo of {halo} hop(s) is below the exactness minimum of {required}"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// Errors returned by the churn engine. Every variant is *recoverable*:
/// a rejected event leaves the engine state untouched (validation happens
/// before any mutation), so a caller can drop the bad event and keep
/// streaming.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnError {
    /// The engine shape or configuration is invalid — the same typed
    /// rejections as the batch engine ([`ShardError::Unshardable`],
    /// [`ShardError::HaloTooSmall`]), mirrored at open time.
    Shard(ShardError),
    /// The event names a node id the graph has never had.
    UnknownNode {
        /// The offending id.
        node: u32,
        /// The engine's current node count.
        n: usize,
    },
    /// The event targets a node that has already been killed (double
    /// kill, moving or draining a dead node).
    DeadNode {
        /// The dead node's id.
        node: u32,
    },
    /// The event places a node outside the engine's fixed tile domain;
    /// accepting it would require re-partitioning, so it is rejected
    /// instead (the domain is the open-time bounds expanded to the
    /// initial points' bounding box).
    OutOfBounds {
        /// The rejected coordinates.
        x: f64,
        /// See `x`.
        y: f64,
    },
}

impl ChurnError {
    /// Stable machine-readable label (CLI/serve JSON output).
    pub fn label(self) -> &'static str {
        match self {
            Self::Shard(ShardError::Unshardable(_)) => "unshardable",
            Self::Shard(ShardError::HaloTooSmall { .. }) => "halo_too_small",
            Self::UnknownNode { .. } => "unknown_node",
            Self::DeadNode { .. } => "dead_node",
            Self::OutOfBounds { .. } => "out_of_bounds",
        }
    }
}

impl From<ShardError> for ChurnError {
    fn from(e: ShardError) -> Self {
        Self::Shard(e)
    }
}

impl fmt::Display for ChurnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Shard(e) => write!(f, "{e}"),
            Self::UnknownNode { node, n } => {
                write!(f, "unknown node {node} (graph has {n} node slots)")
            }
            Self::DeadNode { node } => write!(f, "node {node} is dead"),
            Self::OutOfBounds { x, y } => {
                write!(f, "({x}, {y}) is outside the engine's fixed tile domain")
            }
        }
    }
}

impl std::error::Error for ChurnError {}

/// Whether `cfg` can run on the sharded engine (at a sufficient halo).
///
/// Shardable configurations are exactly: simultaneous application,
/// single-pass schedule, and an *effective* Rule 2 semantics of
/// min-of-three (which includes every `Policy::Id` configuration, where
/// the paper's Rule 2 already is min-of-three, and `Policy::NoPruning`,
/// where no rule pass runs at all). Everything else gets a typed error.
pub fn check_shardable(cfg: &CdsConfig) -> Result<(), ShardError> {
    if cfg.application == Application::Sequential {
        return Err(ShardError::Unshardable(
            UnshardableReason::SequentialApplication,
        ));
    }
    if cfg.schedule == PruneSchedule::Fixpoint {
        return Err(ShardError::Unshardable(UnshardableReason::FixpointSchedule));
    }
    if cfg.policy.prunes() && cfg.rule2_semantics() == Rule2Semantics::CaseAnalysis {
        return Err(ShardError::Unshardable(UnshardableReason::CaseAnalysisRule2));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::Policy;

    #[test]
    fn the_config_matrix_splits_seven_to_thirty_three() {
        let mut ok = 0;
        let mut rejected = 0;
        for policy in Policy::ALL {
            for schedule in [PruneSchedule::SinglePass, PruneSchedule::Fixpoint] {
                for rule2 in [Rule2Semantics::MinOfThree, Rule2Semantics::CaseAnalysis] {
                    for application in [Application::Simultaneous, Application::Sequential] {
                        let cfg = CdsConfig {
                            policy,
                            schedule,
                            rule2,
                            application,
                        };
                        match check_shardable(&cfg) {
                            Ok(()) => ok += 1,
                            Err(ShardError::Unshardable(_)) => rejected += 1,
                            Err(e) => panic!("unexpected error {e}"),
                        }
                    }
                }
            }
        }
        assert_eq!((ok, rejected), (7, 33));
    }

    #[test]
    fn rejection_reasons_are_specific() {
        let seq = CdsConfig::sequential(Policy::Id);
        assert_eq!(
            check_shardable(&seq),
            Err(ShardError::Unshardable(
                UnshardableReason::SequentialApplication
            ))
        );
        let fix = CdsConfig::fixpoint(Policy::Degree);
        assert_eq!(
            check_shardable(&fix),
            Err(ShardError::Unshardable(UnshardableReason::FixpointSchedule))
        );
        let paper = CdsConfig::paper(Policy::Degree);
        assert_eq!(
            check_shardable(&paper),
            Err(ShardError::Unshardable(UnshardableReason::CaseAnalysisRule2))
        );
        // Id forces min-of-three, so the paper config of Id shards.
        assert_eq!(check_shardable(&CdsConfig::paper(Policy::Id)), Ok(()));
        // NoPruning never runs a rule pass: both rule2 values shard.
        assert_eq!(
            check_shardable(&CdsConfig::paper(Policy::NoPruning)),
            Ok(())
        );
    }
}
