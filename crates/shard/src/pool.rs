//! A persistent worker pool for the sharded engine.
//!
//! The previous engine spawned scoped threads on every computation; each
//! spawn allocates a stack and kernel resources, so the multi-threaded
//! path could never satisfy the zero-allocation warm-path pin that the
//! `threads == 1` path has. This pool spawns its workers **once**, on the
//! first parallel run, and every later [`WorkerPool::run`] is a
//! lock/condvar handoff on retained state — no heap traffic on Linux,
//! where `std`'s `Mutex`/`Condvar` are futex-based and unboxed.
//!
//! ## Shape
//!
//! * The calling thread participates as **executor 0** (it would
//!   otherwise idle in a join loop), so a run with `executors == t` keeps
//!   only `t - 1` pool threads.
//! * A run publishes one type-erased job (`&dyn Fn(usize)` behind a raw
//!   pointer) under a generation counter; workers wake on a condvar, run
//!   the job with their executor id, and decrement an active count whose
//!   zero-crossing wakes the caller.
//! * [`WorkerPool::run`] does not return until every participating
//!   executor has finished, which is what makes the lifetime-erased job
//!   pointer sound: the borrowed closure strictly outlives every
//!   dereference.
//! * Panics on either side are caught and re-raised on the calling thread
//!   after the barrier, so a poisoned tile cannot wedge the pool.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// One published job: the closure (lifetime-erased; see [`WorkerPool::run`]
/// for the soundness argument) and how many pool workers participate.
#[derive(Debug, Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    /// Pool workers joining this generation (executor ids `1..=helpers`);
    /// workers with a higher index sit the generation out.
    helpers: usize,
}

// SAFETY: the pointer is only dereferenced between publication and the
// active-count barrier in `run`, during which the pointee is borrowed by
// the (blocked) calling thread; `Sync` on the pointee makes the shared
// calls sound.
unsafe impl Send for Job {}

#[derive(Debug, Default)]
struct State {
    /// Bumped once per run; workers compare against their last-seen value
    /// so a stale wakeup never re-runs a finished job.
    generation: u64,
    job: Option<Job>,
    /// Participating workers still inside the current generation.
    active: usize,
    panicked: bool,
    shutdown: bool,
}

#[derive(Debug, Default)]
struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

#[derive(Debug)]
struct PoolInner {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

/// A lazily-spawned, persistent pool of shard workers. `Default` holds no
/// threads at all; the first [`WorkerPool::run`] spawns what it needs and
/// later runs reuse (and, if wider, extend) the same threads.
#[derive(Debug, Default)]
pub(crate) struct WorkerPool {
    inner: Option<PoolInner>,
}

impl WorkerPool {
    /// Runs `f(id)` for `id in 0..executors`, the calling thread serving
    /// executor 0, and returns once all executors have finished. Requires
    /// `executors >= 2` (a single executor needs no pool — call directly).
    ///
    /// Panics raised inside any executor propagate to the caller after
    /// every other executor has drained.
    pub(crate) fn run(&mut self, executors: usize, f: &(dyn Fn(usize) + Sync)) {
        debug_assert!(executors >= 2, "run() is for the parallel path");
        let helpers = executors - 1;
        let inner = self.ensure(helpers);

        // SAFETY: purely a lifetime cast (`'a` -> `'static`) on a fat
        // reference; the barrier below keeps `f` borrowed for as long as
        // any worker may dereference the published pointer.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        {
            let mut st = lock(&inner.shared.state);
            st.generation = st.generation.wrapping_add(1);
            st.job = Some(Job {
                f: f_static,
                helpers,
            });
            st.active = helpers;
            st.panicked = false;
        }
        inner.shared.work_cv.notify_all();

        let main_result = catch_unwind(AssertUnwindSafe(|| f(0)));

        let mut st = lock(&inner.shared.state);
        while st.active > 0 {
            st = inner
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        let worker_panicked = st.panicked;
        drop(st);

        if let Err(payload) = main_result {
            resume_unwind(payload);
        }
        assert!(!worker_panicked, "a shard worker panicked");
    }

    /// Number of spawned pool threads (not counting the caller).
    #[cfg(test)]
    pub(crate) fn spawned(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.handles.len())
    }

    fn ensure(&mut self, helpers: usize) -> &PoolInner {
        let inner = self.inner.get_or_insert_with(|| PoolInner {
            shared: Arc::new(Shared::default()),
            handles: Vec::new(),
        });
        while inner.handles.len() < helpers {
            let index = inner.handles.len();
            let shared = Arc::clone(&inner.shared);
            // Capture the pre-publication generation HERE, on the spawning
            // thread: the worker body may not get scheduled until after the
            // caller has already published its first job, and a worker that
            // read the bumped generation as its baseline would sit that job
            // out forever (deadlocking the publisher's barrier).
            let seen = lock(&inner.shared.state).generation;
            let handle = std::thread::Builder::new()
                .name(format!("pacds-shard-{index}"))
                .spawn(move || worker_loop(&shared, index, seen))
                .expect("spawning a shard worker failed");
            inner.handles.push(handle);
        }
        inner
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            lock(&inner.shared.state).shutdown = true;
            inner.shared.work_cv.notify_all();
            for handle in inner.handles {
                let _ = handle.join();
            }
        }
    }
}

/// Locks ignoring poisoning: `State` transitions are all straight-line
/// stores, so a panic can never leave it mid-update.
fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(shared: &Shared, index: usize, mut seen: u64) {
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                match st.job {
                    Some(job) if st.generation != seen => {
                        seen = st.generation;
                        break job;
                    }
                    _ => st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner()),
                }
            }
        };
        if index >= job.helpers {
            continue; // generation acknowledged, but this worker sits out
        }
        // SAFETY: `run` holds the closure borrowed until `active` reaches
        // zero, which cannot happen before the decrement below.
        let f = unsafe { &*job.f };
        let result = catch_unwind(AssertUnwindSafe(|| f(index + 1)));
        let mut st = lock(&shared.state);
        if result.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn runs_every_executor_exactly_once_and_reuses_threads() {
        let mut pool = WorkerPool::default();
        let hits = [const { AtomicUsize::new(0) }; 4];
        pool.run(4, &|id| {
            hits[id].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(pool.spawned(), 3);
        for (id, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "executor {id}");
        }
        // A second, narrower run reuses the pool without spawning.
        pool.run(2, &|id| {
            hits[id].fetch_add(10, Ordering::Relaxed);
        });
        assert_eq!(pool.spawned(), 3);
        assert_eq!(hits[0].load(Ordering::Relaxed), 11);
        assert_eq!(hits[1].load(Ordering::Relaxed), 11);
        assert_eq!(hits[2].load(Ordering::Relaxed), 1);
        // And a wider run extends it.
        pool.run(5, &|_| {});
        assert_eq!(pool.spawned(), 4);
    }

    #[test]
    fn results_are_visible_after_run_returns() {
        let mut pool = WorkerPool::default();
        let total = AtomicU64::new(0);
        for round in 0..50u64 {
            pool.run(3, &|id| {
                total.fetch_add(round * 3 + id as u64, Ordering::Relaxed);
            });
        }
        // sum over rounds of (9*round + 3)
        let expected: u64 = (0..50).map(|r| 9 * r + 3).sum();
        assert_eq!(total.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let mut pool = WorkerPool::default();
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|id| {
                if id == 1 {
                    panic!("tile exploded");
                }
            });
        }));
        assert!(err.is_err());
        // The pool is still usable afterwards.
        let ran = AtomicUsize::new(0);
        pool.run(2, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn caller_panic_propagates_after_workers_drain() {
        let mut pool = WorkerPool::default();
        let worker_ran = AtomicUsize::new(0);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.run(2, &|id| {
                if id == 0 {
                    panic!("main-side failure");
                }
                worker_ran.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(err.is_err());
        assert_eq!(worker_ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn dropping_an_unused_pool_is_fine() {
        drop(WorkerPool::default());
    }
}
