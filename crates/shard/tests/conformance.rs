//! Bit-identity of the sharded engine over the testkit's adversarial
//! corpus × the full 40-configuration matrix, for shard counts
//! {1, 2, 4, 16} — plus typed rejection of the unshardable half.
//!
//! Three layers of checking:
//!
//! 1. direct mask comparison (gateways, marked, after-Rule-1, rounds)
//!    against a retained whole-graph [`CdsWorkspace`];
//! 2. oracle-backed [`ConformanceReport::check_external`], which shrinks
//!    and emits a replayable case file on mismatch;
//! 3. the spatial mode ([`ShardedCds::compute_unit_disk`]) against the
//!    same whole-graph verdicts on every positioned corpus case.

use pacds_core::CdsWorkspace;
use pacds_shard::{check_shardable, ShardError, ShardSpec, ShardedCds};
use pacds_testkit::harness::full_config_matrix;
use pacds_testkit::{named_families, random_unit_disk_cases, ConformanceReport, TopoCase};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 16];

fn corpus() -> Vec<TopoCase> {
    let mut cases = named_families();
    cases.extend(random_unit_disk_cases(0x5AAD_C0DE, 24));
    cases
}

fn engines() -> Vec<ShardedCds> {
    SHARD_COUNTS
        .iter()
        .map(|&s| ShardedCds::new(ShardSpec::new(s)).expect("default halo is legal"))
        .collect()
}

/// Graph mode: every corpus case × every shardable configuration × every
/// shard count agrees bit-for-bit with the whole-graph workspace — not
/// just the final gateway mask but the intermediate verdicts too.
#[test]
fn graph_mode_is_bit_identical_over_corpus_and_matrix() {
    let mut ws = CdsWorkspace::new();
    let mut engines = engines();
    let mut checked = 0usize;
    for case in corpus() {
        let energy = Some(case.energy.as_slice());
        for cfg in full_config_matrix() {
            if check_shardable(&cfg).is_err() {
                continue;
            }
            let expected = ws.compute(&case.graph, energy, &cfg).clone();
            let exp_marked = ws.marked().to_vec();
            let exp_after1 = ws.after_rule1().to_vec();
            let exp_rounds = ws.rounds();
            for eng in &mut engines {
                let shards = eng.spec().shards;
                let ctx = format!("case={} cfg={cfg:?} shards={shards}", case.name);
                let got = eng
                    .compute_graph(&case.graph, energy, &cfg)
                    .unwrap_or_else(|e| panic!("{ctx}: unexpected {e}"));
                assert_eq!(got, &expected, "gateway mask diverged: {ctx}");
                assert_eq!(eng.marked(), &exp_marked, "marked mask diverged: {ctx}");
                assert_eq!(
                    eng.after_rule1(),
                    &exp_after1,
                    "after-Rule-1 mask diverged: {ctx}"
                );
                assert_eq!(eng.rounds(), exp_rounds, "round count diverged: {ctx}");
                checked += 1;
            }
        }
    }
    // 7 shardable configs × 4 shard counts × every corpus case.
    assert!(checked >= 7 * 4 * 24, "matrix coverage shrank: {checked}");
}

/// Spatial mode: every positioned corpus case computed straight from its
/// points (the whole-graph adjacency never built inside the engine)
/// matches the whole-graph workspace run on the case's graph.
#[test]
fn spatial_mode_is_bit_identical_on_positioned_cases() {
    let mut ws = CdsWorkspace::new();
    let mut engines = engines();
    let mut positioned = 0usize;
    for case in corpus() {
        let Some((bounds, radius, points)) = case.positions.clone() else {
            continue;
        };
        positioned += 1;
        let energy = Some(case.energy.as_slice());
        for cfg in full_config_matrix() {
            if check_shardable(&cfg).is_err() {
                continue;
            }
            let expected = ws.compute(&case.graph, energy, &cfg).clone();
            for eng in &mut engines {
                let shards = eng.spec().shards;
                let ctx = format!("case={} cfg={cfg:?} shards={shards}", case.name);
                let got = eng
                    .compute_unit_disk(bounds, radius, &points, energy, &cfg)
                    .unwrap_or_else(|e| panic!("{ctx}: unexpected {e}"));
                assert_eq!(got, &expected, "spatial gateway mask diverged: {ctx}");
                assert_eq!(eng.marked(), ws.marked(), "spatial marked diverged: {ctx}");
            }
        }
    }
    assert!(positioned >= 24, "positioned corpus shrank: {positioned}");
}

/// Oracle-backed differential check: the sharded engine plugged into the
/// harness as an external implementation, so any mismatch is shrunk to a
/// minimal replayable case file.
#[test]
fn sharded_engine_passes_the_oracle_harness() {
    let mut report = ConformanceReport::new();
    let mut engines = engines();
    for case in named_families() {
        for cfg in full_config_matrix() {
            if check_shardable(&cfg).is_err() {
                continue;
            }
            for eng in &mut engines {
                let label = format!("sharded-s{}", eng.spec().shards);
                report.check_external(&case, &cfg, &label, |g, e, c| {
                    eng.compute_graph(g, Some(e), c)
                        .expect("config pre-checked shardable")
                        .clone()
                });
            }
        }
    }
    report.finish();
}

/// The unshardable half of the matrix returns the same typed error from
/// both entry points, without disturbing retained engine state.
#[test]
fn unshardable_matrix_half_is_rejected_with_typed_errors() {
    let case = &corpus()[0];
    let (bounds, radius, points) = corpus()
        .iter()
        .find_map(|c| c.positions.clone())
        .expect("corpus has positioned cases");
    let mut eng = ShardedCds::new(ShardSpec::new(4)).unwrap();
    let mut rejected = 0usize;
    for cfg in full_config_matrix() {
        let Err(expected) = check_shardable(&cfg) else {
            continue;
        };
        rejected += 1;
        let graph_err = eng
            .compute_graph(&case.graph, Some(&case.energy), &cfg)
            .err();
        assert_eq!(graph_err, Some(expected), "graph mode, cfg={cfg:?}");
        let spatial_err = eng
            .compute_unit_disk(bounds, radius, &points, None, &cfg)
            .err();
        assert_eq!(spatial_err, Some(expected), "spatial mode, cfg={cfg:?}");
        assert!(
            matches!(graph_err, Some(ShardError::Unshardable(_))),
            "rejection must carry a reason, cfg={cfg:?}"
        );
    }
    assert_eq!(rejected, 33, "the matrix splits 7 shardable / 33 not");
}
