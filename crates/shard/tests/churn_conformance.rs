//! Churn conformance: the testkit's differential churn harness replays
//! the seeded trace corpus under every shardable configuration, asserting
//! bit-identity of the [`ChurnEngine`]'s masks against **two** independent
//! from-scratch oracles after every single event (with greedy shrinking to
//! a minimal failing trace on divergence — see `pacds_testkit::churn`).
//! The unshardable matrix half is mirrored: `ChurnEngine::open` rejects
//! it with the same typed errors as the batch engine.
//!
//! Corpus depth scales with `PROPTEST_CASES` (the same knob CI uses for
//! the proptest suites): each 256 cases adds another seeded corpus round.

use pacds_core::CdsConfig;
use pacds_geom::Rect;
use pacds_shard::{check_shardable, ChurnEngine, ChurnError, ShardSpec};
use pacds_testkit::churn::{corpus_traces, first_divergence, shardable_matrix, ChurnTrace};
use pacds_testkit::harness::full_config_matrix;
use pacds_testkit::ChurnReport;

fn corpus_rounds() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(1, |cases| (cases / 256).clamp(1, 8))
}

/// The headline sweep: corpus × shardable matrix, every event compared
/// bit-for-bit against the from-scratch sharded recompute and the
/// whole-graph workspace.
#[test]
fn churn_corpus_is_bit_identical_across_the_shardable_matrix() {
    let mut report = ChurnReport::new();
    for round in 0..corpus_rounds() {
        for trace in corpus_traces(0xC0DE_CAFE ^ (round * 0x9E37)) {
            for cfg in shardable_matrix() {
                report.check_trace(&trace, &cfg);
            }
        }
    }
    assert!(
        report.replays >= 5 * 7,
        "sweep coverage shrank: {} replays",
        report.replays
    );
    assert!(report.events >= 5 * 7 * 20, "event coverage shrank");
    report.finish();
}

/// Different shard counts (including the degenerate single tile) replay
/// the same trace to the same states — the dirty-set machinery must be
/// invisible at every grid granularity.
#[test]
fn shard_count_is_invisible_to_churn_replay() {
    let base = pacds_testkit::churn::mixed_trace(0x51AB, 50, 30);
    let cfg = CdsConfig::policy(pacds_core::Policy::EnergyDegree);
    for shards in [1usize, 4, 16] {
        let mut t = base.clone();
        t.shards = shards;
        assert_eq!(
            first_divergence(&t, &cfg),
            None,
            "divergence at shards={shards}"
        );
    }
}

/// The unshardable 33 configurations are rejected at `open` with exactly
/// the batch engine's typed errors, before any work happens.
#[test]
fn unshardable_configs_are_mirrored_at_open() {
    let trace = pacds_testkit::churn::mobility_trace(3, 20, 0);
    let mut rejected = 0usize;
    for cfg in full_config_matrix() {
        match check_shardable(&cfg) {
            Ok(()) => {
                ChurnEngine::open(
                    ShardSpec::new(trace.shards),
                    trace.bounds,
                    trace.radius,
                    &trace.points,
                    &trace.energy,
                    &cfg,
                )
                .expect("shardable config must open");
            }
            Err(expected) => {
                rejected += 1;
                let got = ChurnEngine::open(
                    ShardSpec::new(trace.shards),
                    trace.bounds,
                    trace.radius,
                    &trace.points,
                    &trace.energy,
                    &cfg,
                )
                .err();
                assert_eq!(got, Some(ChurnError::Shard(expected)), "cfg={cfg:?}");
            }
        }
    }
    assert_eq!(rejected, 33, "the matrix splits 7 shardable / 33 not");
}

/// An emitted trace file replays to the same verdicts as the in-memory
/// trace — the JSON format loses nothing the replay depends on.
#[test]
fn emitted_traces_replay_identically() {
    let trace = pacds_testkit::churn::death_burst_trace(0xDEAD, 40, 2, 4);
    let dir = std::env::temp_dir().join("pacds-churn-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.json");
    std::fs::write(&path, trace.to_json()).unwrap();
    let loaded = ChurnTrace::load(&path).unwrap();
    assert_eq!(trace, loaded);
    let cfg = CdsConfig::policy(pacds_core::Policy::Energy);
    assert_eq!(first_divergence(&loaded, &cfg), None);
    std::fs::remove_file(&path).ok();
}

/// Rejected events inside a trace are deterministic no-ops: a trace that
/// kills a node twice and moves a node out of bounds replays cleanly,
/// with the bad events changing nothing.
#[test]
fn rejected_events_are_deterministic_no_ops_in_replay() {
    use pacds_testkit::TraceEvent;
    let mut trace = pacds_testkit::churn::mobility_trace(77, 30, 5);
    trace.events.push(TraceEvent::Kill { node: 2 });
    trace.events.push(TraceEvent::Kill { node: 2 }); // double kill
    trace.events.push(TraceEvent::Move {
        node: 1,
        x: Rect::paper_arena().x1 + 500.0,
        y: 0.0,
    }); // out of domain
    trace.events.push(TraceEvent::Drain {
        node: 2,
        remaining: 1,
    }); // drain a dead node
    trace.events.push(TraceEvent::Move {
        node: 999,
        x: 1.0,
        y: 1.0,
    }); // unknown id
    for cfg in shardable_matrix() {
        assert_eq!(first_divergence(&trace, &cfg), None, "cfg={cfg:?}");
    }
}
