//! Property tests for the churn engine's dirty-tile machinery.
//!
//! * **Minimality** — on an adversarial corridor instance, *skipping any
//!   one dirty tile* during the refresh produces divergence from the
//!   from-scratch recompute: the dirty set cannot be shrunk (mirrors the
//!   halo-width minimality proof in `props.rs`, one level up).
//! * **Locality / soundness** — events never dirty a tile whose 2-hop
//!   halo they cannot touch, non-dirty tiles keep their retained solves
//!   byte-for-byte, and the refreshed masks still match a from-scratch
//!   recompute — i.e. the stale solves were still exact.
//! * **Flip locality** — a kill can only flip verdicts within the 2-hop
//!   geometric reach of the killed host; a battery drain only within
//!   1 hop (priorities are compared between direct neighbours only).

use pacds_core::{CdsConfig, Policy};
use pacds_geom::{placement, Point2, Rect, EPS};
use pacds_shard::{ChurnEngine, ChurnEvent, ShardSpec, ShardedCds};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// From-scratch masked recompute of the engine's current live topology.
fn scratch_masks(eng: &ChurnEngine, bounds: Rect, radius: f64) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
    let mut scratch = ShardedCds::new(ShardSpec::new(eng.tiles())).unwrap();
    let off = eng.off_mask();
    scratch
        .compute_unit_disk_masked(
            bounds,
            radius,
            eng.positions(),
            Some(&off),
            Some(eng.energy()),
            eng.cfg(),
        )
        .unwrap();
    (
        scratch.marked().clone(),
        scratch.after_rule1().clone(),
        scratch.gateways().clone(),
    )
}

fn masks(eng: &ChurnEngine) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
    (
        eng.marked().clone(),
        eng.after_rule1().clone(),
        eng.gateways().clone(),
    )
}

/// Chain corridor for dirty-set minimality: 13 hosts 0.9 apart on a line
/// at unit radius, domain 12 wide → four 3-wide strip tiles with
/// boundaries at x = 3, 6, 9. Every interior chain node is a gateway
/// (marked, never pruned). Killing node 6 (x ≈ 5.9, just left of the
/// x = 6 boundary) splits the chain: nodes 5 and 6 flip in tile 1 and
/// node 7 flips in tile 2, while the 2-hop dirty margin (≈ 2.0) reaches
/// exactly tiles {1, 2} — every dirty tile's solve genuinely changes, so
/// skipping *any* of them must diverge. A ±0.02 jitter keeps all
/// adjacencies (neighbour gap ≤ 0.94 < 1, skip gap ≥ 1.76 > 1) and all
/// tile memberships / margin decisions intact (slack ≥ 0.8).
fn chain_corridor(jitter_seed: u64) -> (Rect, f64, Vec<Point2>) {
    let mut rng = StdRng::seed_from_u64(jitter_seed);
    let points = (0..13)
        .map(|i| {
            Point2::new(
                0.5 + 0.9 * i as f64 + rng.random_range(-0.02f64..0.02),
                rng.random_range(-0.02f64..0.02),
            )
        })
        .collect();
    (Rect::new(0.0, -0.5, 12.0, 0.5), 1.0, points)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Minimality: on the chain corridor, the kill dirties exactly two
    /// tiles and skipping either one leaves a stale verdict in the merged
    /// masks — the dirty set cannot be shrunk by any single tile.
    #[test]
    fn skipping_any_dirty_tile_diverges_on_the_corridor(jitter_seed in any::<u64>()) {
        let (bounds, radius, points) = chain_corridor(jitter_seed);
        let energy = vec![50u64; points.len()];
        let cfg = CdsConfig::policy(Policy::Degree);
        let kill = ChurnEvent::KillNode { node: 6 };

        // Reference: full refresh matches scratch (and flips happened).
        let mut full = ChurnEngine::open(
            ShardSpec::new(4), bounds, radius, &points, &energy, &cfg,
        ).unwrap();
        full.apply(&kill).unwrap();
        let dirty = full.dirty_tiles();
        prop_assert_eq!(dirty.len(), 2, "gadget must dirty exactly two tiles");
        let stats = full.refresh();
        prop_assert!(stats.gateway_flips >= 3, "the kill must flip verdicts");
        let expected = masks(&full);
        prop_assert_eq!(&expected, &scratch_masks(&full, bounds, radius));

        // Skipping any one dirty tile must diverge.
        for &skip in &dirty {
            let mut eng = ChurnEngine::open(
                ShardSpec::new(4), bounds, radius, &points, &energy, &cfg,
            ).unwrap();
            eng.apply(&kill).unwrap();
            let stats = eng.refresh_where(|t| t != skip);
            prop_assert_eq!(stats.resolved_tiles, dirty.len() - 1);
            prop_assert_ne!(
                &masks(&eng),
                &expected,
                "skipping dirty tile {} must leave a stale verdict (seed {})",
                skip,
                jitter_seed
            );
        }
    }

    /// Soundness + locality on random instances: after any event, tiles
    /// outside the event's dirty margin keep their retained per-tile
    /// solves byte-for-byte, are never re-solved, and the merged masks
    /// still match a from-scratch recompute — the stale solves were
    /// still exact, because the event lay outside their 2-hop halo.
    #[test]
    fn events_outside_a_tiles_halo_never_change_its_solve(
        n in 30usize..90,
        seed in any::<u64>(),
        kind in 0u8..4,
    ) {
        let bounds = Rect::paper_arena();
        let radius = 12.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let points = placement::uniform_points(&mut rng, bounds, n);
        let energy: Vec<u64> = (0..n).map(|_| rng.random_range(5u64..100)).collect();
        let cfg = CdsConfig::policy(Policy::EnergyDegree);
        let mut eng = ChurnEngine::open(
            ShardSpec::new(16), bounds, radius, &points, &energy, &cfg,
        ).unwrap();

        let node = rng.random_range(0..n as u32);
        let ev = match kind {
            0 => ChurnEvent::AddNode {
                pos: Point2::new(
                    rng.random_range(bounds.x0..bounds.x1),
                    rng.random_range(bounds.y0..bounds.y1),
                ),
                energy: 42,
            },
            1 => ChurnEvent::MoveNode {
                node,
                to: Point2::new(
                    rng.random_range(bounds.x0..bounds.x1),
                    rng.random_range(bounds.y0..bounds.y1),
                ),
            },
            2 => ChurnEvent::KillNode { node },
            _ => ChurnEvent::DrainBattery { node, remaining: 1 },
        };
        eng.apply(&ev).unwrap();

        let dirty = eng.dirty_tiles();
        let clean: Vec<usize> =
            (0..eng.tiles()).filter(|t| !dirty.contains(t)).collect();
        let before: Vec<Vec<(u32, u8)>> =
            clean.iter().map(|&t| eng.tile_result(t).to_vec()).collect();

        let stats = eng.refresh();
        prop_assert_eq!(stats.resolved_tiles, dirty.len());
        for (&t, snap) in clean.iter().zip(&before) {
            prop_assert_eq!(
                eng.tile_result(t), snap.as_slice(),
                "non-dirty tile {} was touched", t
            );
        }
        prop_assert_eq!(&masks(&eng), &scratch_masks(&eng, bounds, radius));
    }

    /// Flip locality: a kill can only flip verdicts of hosts within the
    /// 2-hop geometric reach of the killed position; a drain (under an
    /// energy-aware policy) only within 1 hop.
    #[test]
    fn verdict_flips_stay_within_the_event_reach(
        n in 30usize..80,
        seed in any::<u64>(),
        drain in any::<bool>(),
    ) {
        let bounds = Rect::paper_arena();
        let radius = 20.0;
        let hop = (radius * radius + EPS).sqrt();
        let mut rng = StdRng::seed_from_u64(seed);
        let points = placement::uniform_points(&mut rng, bounds, n);
        let energy: Vec<u64> = (0..n).map(|_| rng.random_range(5u64..100)).collect();
        let cfg = CdsConfig::policy(Policy::Energy);
        let mut eng = ChurnEngine::open(
            ShardSpec::new(9), bounds, radius, &points, &energy, &cfg,
        ).unwrap();

        let node = rng.random_range(0..n as u32);
        let (ev, reach) = if drain {
            (ChurnEvent::DrainBattery { node, remaining: 1 }, hop)
        } else {
            (ChurnEvent::KillNode { node }, 2.0 * hop)
        };
        let center = eng.positions()[node as usize];
        let before = masks(&eng);
        eng.apply(&ev).unwrap();
        eng.refresh();
        let after = masks(&eng);

        for i in 0..n {
            let flipped = before.0[i] != after.0[i]
                || before.1[i] != after.1[i]
                || before.2[i] != after.2[i];
            if flipped {
                let p = eng.positions()[i];
                let d = ((p.x - center.x).powi(2) + (p.y - center.y).powi(2)).sqrt();
                prop_assert!(
                    d <= reach + 1e-6,
                    "host {} at distance {:.3} flipped beyond the event reach {:.3}",
                    i, d, reach
                );
            }
        }
    }
}
