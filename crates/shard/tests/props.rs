//! Property tests for the sharded engine.
//!
//! * Positive: random instances stay bit-identical to the whole-graph
//!   workspace across shard counts {1, 2, 4, 16}, every policy, in both
//!   the spatial and the generic-graph mode.
//! * Negative: a corridor topology where a halo of 1 hop provably breaks
//!   identity — the whole point of [`pacds_shard::REQUIRED_HALO`] being 2.

use pacds_core::{CdsConfig, CdsWorkspace, Policy};
use pacds_geom::{placement, Point2, Rect};
use pacds_graph::gen;
use pacds_shard::{ShardSpec, ShardedCds, REQUIRED_HALO};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 16];
const RADIUS: f64 = 25.0;

fn random_energies(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE4E6);
    (0..n).map(|_| rng.random_range(0u64..1000)).collect()
}

/// The corridor gadget that breaks a 1-hop halo (hand-verified, then
/// jittered here). Unit radius, two tiles split at `x = 5`:
///
/// ```text
///   w1·            ·e1
///   w3· ·v    ·t
///   w2·            ·e2
///        tile A │ tile B
/// ```
///
/// Globally `deg(t) = 6 > deg(v) = 4`, and `N[v] ⊆ N[t]`, so Rule 1
/// removes `v`. Tile A's 1-hop halo reaches `t` but not `e1`/`e2`, so
/// locally `deg(t) = 4 = deg(v)` — a tie broken by id, under which the
/// lower-id `t` is removed and `v` (owned by tile A) survives: a
/// guaranteed mismatch. A ±0.02 jitter keeps every adjacency and the
/// tile membership intact (the tightest pair, `t`–`e1`, sits at distance
/// ~0.922 with slack 2·0.02·√2 ≈ 0.057).
fn corridor(jitter_seed: u64) -> (Rect, f64, Vec<Point2>) {
    let base = [
        (5.4, 0.0),  // t — judged dominator, first so it takes the low id
        (4.9, 0.0),  // v — removed globally, kept by the halo-1 tile
        (4.8, 0.6),  // w1
        (4.8, -0.6), // w2
        (4.8, 0.0),  // w3
        (6.3, 0.2),  // e1 — t's far neighbours, outside tile A's 1-hop halo
        (6.3, -0.2), // e2
    ];
    let mut rng = StdRng::seed_from_u64(jitter_seed);
    let points = base
        .iter()
        .map(|&(x, y)| {
            Point2::new(
                x + rng.random_range(-0.02f64..0.02),
                y + rng.random_range(-0.02f64..0.02),
            )
        })
        .collect();
    (Rect::new(0.0, -1.0, 10.0, 1.0), 1.0, points)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Spatial mode: random unit-disk instances, all five policies, all
    /// shard counts — gateway, marked, and after-Rule-1 masks identical
    /// to the whole-graph workspace.
    #[test]
    fn spatial_sharding_preserves_identity(
        n in 0usize..90,
        seed in any::<u64>(),
    ) {
        let bounds = Rect::paper_arena();
        let mut rng = StdRng::seed_from_u64(seed);
        let points = placement::uniform_points(&mut rng, bounds, n);
        let graph = gen::unit_disk(bounds, RADIUS, &points);
        let energy = random_energies(seed, n);
        let mut ws = CdsWorkspace::new();
        for policy in Policy::ALL {
            let cfg = CdsConfig::policy(policy);
            let expected = ws.compute(&graph, Some(&energy), &cfg).clone();
            for shards in SHARD_COUNTS {
                let mut eng = ShardedCds::new(ShardSpec::new(shards)).unwrap();
                let got = eng
                    .compute_unit_disk(bounds, RADIUS, &points, Some(&energy), &cfg)
                    .unwrap();
                prop_assert_eq!(got, &expected, "policy={:?} shards={}", policy, shards);
                prop_assert_eq!(eng.marked(), ws.marked());
                prop_assert_eq!(eng.after_rule1(), ws.after_rule1());
            }
        }
    }

    /// Generic-graph mode: arbitrary (non-geometric) random graphs,
    /// id-block sharding with BFS halos — same identity.
    #[test]
    fn graph_sharding_preserves_identity(
        n in 1usize..70,
        p in 0.0f64..0.4,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = gen::gnp(&mut rng, n, p);
        let energy = random_energies(seed, n);
        let mut ws = CdsWorkspace::new();
        for policy in Policy::ALL {
            let cfg = CdsConfig::policy(policy);
            let expected = ws.compute(&graph, Some(&energy), &cfg).clone();
            for shards in SHARD_COUNTS {
                let mut eng = ShardedCds::new(ShardSpec::new(shards)).unwrap();
                let got = eng.compute_graph(&graph, Some(&energy), &cfg).unwrap();
                prop_assert_eq!(got, &expected, "policy={:?} shards={}", policy, shards);
                prop_assert_eq!(eng.rounds(), ws.rounds());
            }
        }
    }

    /// Negative: on the corridor gadget a 1-hop halo diverges from the
    /// whole graph while the required 2-hop halo matches — on the *same*
    /// jittered instance. This is the constructive proof that
    /// `REQUIRED_HALO` cannot be lowered.
    #[test]
    fn a_one_hop_halo_breaks_identity_on_the_corridor(jitter_seed in any::<u64>()) {
        let (bounds, radius, points) = corridor(jitter_seed);
        let cfg = CdsConfig::policy(Policy::Degree);
        let graph = gen::unit_disk(bounds, radius, &points);
        let mut ws = CdsWorkspace::new();
        let expected = ws.compute(&graph, None, &cfg).clone();

        let narrow_spec = ShardSpec { halo: 1, ..ShardSpec::new(2) };
        let mut narrow = ShardedCds::with_unchecked_halo(narrow_spec);
        let got_narrow = narrow
            .compute_unit_disk(bounds, radius, &points, None, &cfg)
            .unwrap()
            .clone();
        prop_assert_ne!(
            &got_narrow,
            &expected,
            "halo 1 must diverge on the corridor (seed {})",
            jitter_seed
        );

        let mut exact = ShardedCds::new(ShardSpec::new(2)).unwrap();
        prop_assert_eq!(exact.spec().halo, REQUIRED_HALO);
        let got_exact = exact
            .compute_unit_disk(bounds, radius, &points, None, &cfg)
            .unwrap();
        prop_assert_eq!(got_exact, &expected, "halo 2 must be exact (seed {})", jitter_seed);
    }
}
