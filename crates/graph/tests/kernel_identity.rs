//! End-to-end identity of the bit-parallel kernels through the
//! [`NeighborBitmap`] predicates.
//!
//! The kernel module's own unit suite checks each scan against its scalar
//! reference on raw words; this test closes the loop one level up — the
//! bitmap predicates (which the rule passes call) against the naive
//! adjacency-list predicates on `Graph` — at vertex counts chosen to land
//! the row width on every adversarial boundary: empty, one-under /
//! exactly / one-over a `u64` word, and the same around a full 4-lane
//! chunk (256 bits).

use pacds_graph::{gen, Graph, NeighborBitmap, NodeId};
use rand::SeedableRng;

/// Row widths (in bits = vertices) that straddle word and chunk edges.
const SIZES: &[usize] = &[0, 1, 63, 64, 65, 255, 256, 257];

#[test]
fn bitmap_predicates_match_naive_at_boundary_widths() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
    for &n in SIZES {
        // Dense enough that coverage relations genuinely occur.
        let g = gen::gnp(&mut rng, n, 0.3);
        let bm = NeighborBitmap::build(&g);
        for v in 0..n as NodeId {
            // Probe a window of partners around v plus the boundary ids;
            // the full triple product at n=257 would be ~17M checks.
            let partners: Vec<NodeId> = (0..n as NodeId)
                .filter(|&u| u.abs_diff(v) <= 4 || (u as usize).abs_diff(63) <= 1)
                .collect();
            for &u in &partners {
                assert_eq!(
                    bm.closed_subset(v, u),
                    g.closed_covered_by(v, u),
                    "closed n={n} v={v} u={u}"
                );
                for &w in &partners {
                    assert_eq!(
                        bm.open_subset_pair(v, u, w),
                        g.open_covered_by_pair(v, u, w),
                        "open n={n} v={v} u={u} w={w}"
                    );
                }
            }
        }
    }
}

#[test]
fn support_predicates_agree_with_full_row_scans() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let mut support = Vec::new();
    for &n in SIZES {
        let g = gen::gnp(&mut rng, n, 0.25);
        let bm = NeighborBitmap::build(&g);
        for v in 0..n as NodeId {
            bm.row_support_into(v, &mut support);
            for u in 0..n as NodeId {
                // The witness is the lowest residual vertex of N(v) \ N(u);
                // recompute it naively from adjacency.
                let naive = g
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&x| !g.has_edge(u, x))
                    .min();
                assert_eq!(
                    bm.first_residual_bit(&support, u),
                    naive,
                    "residual n={n} v={v} u={u}"
                );
                for w in (0..n as NodeId).step_by(7) {
                    assert_eq!(
                        bm.open_subset_pair_with(&support, u, w),
                        bm.open_subset_pair(v, u, w),
                        "support-vs-row n={n} v={v} u={u} w={w}"
                    );
                }
            }
        }
    }
}

#[test]
fn closed_subset_exception_bits_hold_on_cliques() {
    // In a clique, N[v] = N[u] = V for all v, u — every closed_subset is
    // true, and the u/v self-bits are the *only* residual words, so this
    // pins the kernel's exception path at each boundary width.
    for &n in &[2usize, 63, 64, 65, 256, 257] {
        let g = gen::complete(n);
        let bm = NeighborBitmap::build(&g);
        let probes = [0, 1, n / 2, n - 2, n - 1];
        for &v in &probes {
            for &u in &probes {
                assert!(
                    bm.closed_subset(v as NodeId, u as NodeId),
                    "clique n={n} v={v} u={u}"
                );
            }
        }
    }
    // And the near-clique: remove one edge and the coverage must break
    // exactly for the affected pairs.
    let mut g = Graph::new(257);
    for a in 0..257u32 {
        for b in a + 1..257 {
            g.add_edge(a, b);
        }
    }
    g.remove_edge(0, 256);
    let bm = NeighborBitmap::build(&g);
    // N[1] contains 0 and 256; N[0] no longer contains 256.
    assert!(!bm.closed_subset(1, 0), "missing 256 must be excess");
    assert!(!bm.closed_subset(1, 256), "missing 0 must be excess");
    assert!(bm.closed_subset(0, 1));
    assert!(bm.closed_subset(256, 1));
}
