//! Property-based tests for the graph substrate.

use pacds_graph::{algo, gen, Graph, NeighborBitmap, NodeId};
use proptest::prelude::*;
use rand::SeedableRng;

fn random_graph() -> impl Strategy<Value = Graph> {
    (1usize..60, 0.0f64..0.5, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        gen::gnp(&mut rng, n, p)
    })
}

fn random_points() -> impl Strategy<Value = Vec<pacds_geom::Point2>> {
    (0usize..80, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        pacds_geom::placement::uniform_points(&mut rng, pacds_geom::Rect::paper_arena(), n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn handshake_lemma(g in random_graph()) {
        let degree_sum: usize = (0..g.n() as NodeId).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
        prop_assert_eq!(g.edges().count(), g.m());
    }

    #[test]
    fn adjacency_is_symmetric(g in random_graph()) {
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
            prop_assert!(g.neighbors(u).contains(&v));
            prop_assert!(g.neighbors(v).contains(&u));
        }
    }

    #[test]
    fn unit_disk_grid_equals_naive(pts in random_points()) {
        let bounds = pacds_geom::Rect::paper_arena();
        prop_assert_eq!(
            gen::unit_disk(bounds, 25.0, &pts),
            gen::unit_disk_naive(25.0, &pts)
        );
    }

    #[test]
    fn components_partition_vertices(g in random_graph()) {
        let labels = algo::connected_components(&g);
        prop_assert_eq!(labels.len(), g.n());
        // Edge endpoints share a label.
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        // Labels are dense 0..k.
        let k = algo::num_components(&g);
        prop_assert!(labels.iter().all(|&l| (l as usize) < k));
    }

    #[test]
    fn bfs_distances_satisfy_triangle_on_edges(g in random_graph()) {
        if g.n() == 0 { return Ok(()); }
        let d = algo::bfs_distances(&g, 0);
        for (u, v) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != u32::MAX && dv != u32::MAX {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                // Both ends of an edge are in the same component.
                prop_assert_eq!(du, dv);
            }
        }
    }

    #[test]
    fn shortest_paths_are_consistent_with_bfs(g in random_graph()) {
        if g.n() < 2 { return Ok(()); }
        let d = algo::bfs_distances(&g, 0);
        for t in 1..g.n() as NodeId {
            match algo::shortest_path(&g, 0, t) {
                Ok(path) => {
                    prop_assert_eq!((path.len() - 1) as u32, d[t as usize]);
                    for w in path.windows(2) {
                        prop_assert!(g.has_edge(w[0], w[1]));
                    }
                }
                Err(_) => prop_assert_eq!(d[t as usize], u32::MAX),
            }
        }
    }

    #[test]
    fn bitmap_agrees_with_graph(g in random_graph()) {
        let bm = NeighborBitmap::build(&g);
        for v in 0..g.n() as NodeId {
            prop_assert_eq!(bm.degree(v), g.degree(v));
            for &u in g.neighbors(v) {
                prop_assert!(bm.contains(v, u));
            }
        }
    }

    #[test]
    fn induced_subgraph_preserves_edges(g in random_graph(), mask_seed in any::<u64>()) {
        let n = g.n();
        let keep: Vec<bool> = (0..n)
            .map(|i| (mask_seed >> (i % 64)) & 1 == 1)
            .collect();
        let (sub, old_of) = g.induced(&keep);
        prop_assert_eq!(sub.n(), keep.iter().filter(|&&b| b).count());
        // Every subgraph edge maps back to an original edge.
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(old_of[a as usize], old_of[b as usize]));
        }
        // Edge count matches a direct count.
        let expected = g
            .edges()
            .filter(|&(u, v)| keep[u as usize] && keep[v as usize])
            .count();
        prop_assert_eq!(sub.m(), expected);
    }

    #[test]
    fn edge_list_round_trips(g in random_graph()) {
        let s = pacds_graph::io::to_edge_list(&g);
        let h = pacds_graph::io::from_edge_list(&s).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn csr_matches_graph(g in random_graph()) {
        let c = pacds_graph::CsrGraph::from(&g);
        prop_assert_eq!(c.n(), g.n());
        prop_assert_eq!(c.m(), g.m());
        for v in 0..g.n() as NodeId {
            prop_assert_eq!(c.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn remove_edge_inverts_add(g in random_graph()) {
        let mut h = g.clone();
        let edges: Vec<_> = g.edges().collect();
        for &(u, v) in &edges {
            prop_assert!(h.remove_edge(u, v));
        }
        prop_assert_eq!(h.m(), 0);
        for &(u, v) in &edges {
            prop_assert!(h.add_edge(u, v));
        }
        prop_assert_eq!(h, g);
    }
}
