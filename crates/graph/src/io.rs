//! Graph import/export: DOT (for visual inspection) and edge lists.

use crate::{Graph, NodeId};
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT format. Vertices in `highlight` (e.g.
/// the gateway set) are drawn filled.
pub fn to_dot(g: &Graph, highlight: Option<&[bool]>) -> String {
    let mut out = String::from("graph G {\n  node [shape=circle];\n");
    for v in 0..g.n() as NodeId {
        let marked = highlight.is_some_and(|h| h[v as usize]);
        if marked {
            let _ = writeln!(out, "  {v} [style=filled, fillcolor=gray80];");
        } else {
            let _ = writeln!(out, "  {v};");
        }
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {u} -- {v};");
    }
    out.push_str("}\n");
    out
}

/// Serialises the graph as a plain edge list: first line `n m`, then one
/// `u v` pair per line.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = format!("{} {}\n", g.n(), g.m());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parses an edge list produced by [`to_edge_list`].
pub fn from_edge_list(s: &str) -> Result<Graph, String> {
    let mut lines = s.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty input")?;
    let mut it = header.split_whitespace();
    let n: usize = it
        .next()
        .ok_or("missing n")?
        .parse()
        .map_err(|e| format!("bad n: {e}"))?;
    let m: usize = it
        .next()
        .ok_or("missing m")?
        .parse()
        .map_err(|e| format!("bad m: {e}"))?;
    let mut g = Graph::new(n);
    for line in lines {
        let mut it = line.split_whitespace();
        let u: NodeId = it
            .next()
            .ok_or("missing u")?
            .parse()
            .map_err(|e| format!("bad u: {e}"))?;
        let v: NodeId = it
            .next()
            .ok_or("missing v")?
            .parse()
            .map_err(|e| format!("bad v: {e}"))?;
        if (u as usize) >= n || (v as usize) >= n {
            return Err(format!("edge ({u}, {v}) out of range for n = {n}"));
        }
        if u == v {
            return Err(format!("self-loop at {u}"));
        }
        g.add_edge(u, v);
    }
    if g.m() != m {
        return Err(format!("header claims {m} edges, parsed {}", g.m()));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn edge_list_round_trip() {
        let g = sample();
        let s = to_edge_list(&g);
        let h = from_edge_list(&s).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(from_edge_list("").is_err());
        assert!(from_edge_list("2 1\n0 5").is_err());
        assert!(from_edge_list("2 1\n0 0").is_err());
        assert!(from_edge_list("3 2\n0 1").is_err()); // wrong edge count
        assert!(from_edge_list("x y").is_err());
    }

    #[test]
    fn dot_output_contains_all_edges_and_highlights() {
        let g = sample();
        let dot = to_dot(&g, Some(&[false, true, true, false]));
        assert!(dot.contains("0 -- 1"));
        assert!(dot.contains("2 -- 3"));
        assert!(dot.contains("1 [style=filled"));
        assert!(!dot.contains("0 [style=filled"));
        assert!(dot.starts_with("graph G {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_without_highlight() {
        let dot = to_dot(&sample(), None);
        assert!(!dot.contains("filled"));
    }
}
