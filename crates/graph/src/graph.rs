//! Mutable undirected adjacency-list graph.

use serde::{Deserialize, Serialize};

/// Vertex identifier. Vertices are dense indices `0..n`; the paper's
/// distinct host IDs map directly onto them (`id(v) = v`).
pub type NodeId = u32;

/// A simple undirected graph with sorted adjacency lists.
///
/// Self-loops and parallel edges are rejected, matching the paper's simple
/// graph model. Neighbour lists are kept sorted so that neighbourhood set
/// operations and deterministic iteration come for free.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    m: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Builds a graph from an edge list. Duplicate edges are ignored.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Appends a new isolated vertex and returns its id (always the
    /// current `n`). Node ids are dense, so spawning never invalidates
    /// existing ids.
    pub fn add_vertex(&mut self) -> NodeId {
        let id = self.adj.len() as NodeId;
        self.adj.push(Vec::new());
        id
    }

    /// Adds an undirected edge `{u, v}`. Returns `true` if the edge was new.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(u != v, "self-loops are not allowed in a simple graph");
        assert!(
            (u as usize) < self.n() && (v as usize) < self.n(),
            "edge ({u}, {v}) out of range for n = {}",
            self.n()
        );
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(iu) => {
                self.adj[u as usize].insert(iu, v);
                let iv = self.adj[v as usize]
                    .binary_search(&u)
                    .expect_err("adjacency lists out of sync");
                self.adj[v as usize].insert(iv, u);
                self.m += 1;
                true
            }
        }
    }

    /// Removes edge `{u, v}` if present. Returns `true` if it existed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v || (u as usize) >= self.n() || (v as usize) >= self.n() {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(iu) => {
                self.adj[u as usize].remove(iu);
                let iv = self.adj[v as usize]
                    .binary_search(&u)
                    .expect("adjacency lists out of sync");
                self.adj[v as usize].remove(iv);
                self.m -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Whether edge `{u, v}` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v
            && (u as usize) < self.n()
            && self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// The open neighbour set `N(v)`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// The closed neighbour set `N[v] = N(v) ∪ {v}`, sorted ascending.
    pub fn closed_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let nv = &self.adj[v as usize];
        let mut out = Vec::with_capacity(nv.len() + 1);
        let mut inserted = false;
        for &u in nv {
            if !inserted && u > v {
                out.push(v);
                inserted = true;
            }
            out.push(u);
        }
        if !inserted {
            out.push(v);
        }
        out
    }

    /// Node degree `nd(v) = |N(v)|`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> std::ops::Range<NodeId> {
        0..self.n() as NodeId
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as NodeId;
            nbrs.iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Whether the graph is complete (every pair adjacent).
    pub fn is_complete(&self) -> bool {
        let n = self.n();
        n <= 1 || self.m == n * (n - 1) / 2
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree.
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Average degree (`2m / n`), or 0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.m as f64 / self.n() as f64
        }
    }

    /// Whether two vertices have `N[v] ⊆ N[u]` (closed-neighbourhood
    /// coverage, the Rule 1 condition). Runs on the sorted lists in
    /// O(deg v + deg u); for repeated queries prefer [`crate::NeighborBitmap`].
    pub fn closed_covered_by(&self, v: NodeId, u: NodeId) -> bool {
        // N[v] ⊆ N[u]  <=>  v ∈ N[u]  and  every x ∈ N(v), x ∈ N[u].
        if v != u && !self.has_edge(u, v) {
            return false;
        }
        sorted_subset_with(&self.adj[v as usize], &self.adj[u as usize], &[u, v])
    }

    /// Whether `N(v) ⊆ N(u) ∪ N(w)` (the Rule 2 coverage condition).
    /// `v` itself is allowed on the right implicitly because `v ∈ N(u)` or
    /// `N(w)` whenever u,w are neighbours of v — no special casing needed.
    pub fn open_covered_by_pair(&self, v: NodeId, u: NodeId, w: NodeId) -> bool {
        let nu = &self.adj[u as usize];
        let nw = &self.adj[w as usize];
        self.adj[v as usize]
            .iter()
            .all(|x| nu.binary_search(x).is_ok() || nw.binary_search(x).is_ok())
    }

    /// Removes all edges incident to `v` (the host switches off) without
    /// renumbering vertices.
    pub fn isolate(&mut self, v: NodeId) {
        let nbrs = std::mem::take(&mut self.adj[v as usize]);
        for u in &nbrs {
            let i = self.adj[*u as usize]
                .binary_search(&v)
                .expect("adjacency lists out of sync");
            self.adj[*u as usize].remove(i);
        }
        self.m -= nbrs.len();
    }

    /// Induced subgraph `G[keep]`: returns the subgraph together with the
    /// mapping from new vertex ids to original ids.
    pub fn induced(&self, keep: &[bool]) -> (Graph, Vec<NodeId>) {
        assert_eq!(keep.len(), self.n());
        let mut old_of = Vec::new();
        let mut new_of = vec![NodeId::MAX; self.n()];
        for v in 0..self.n() {
            if keep[v] {
                new_of[v] = old_of.len() as NodeId;
                old_of.push(v as NodeId);
            }
        }
        let mut g = Graph::new(old_of.len());
        for (u, v) in self.edges() {
            if keep[u as usize] && keep[v as usize] {
                g.add_edge(new_of[u as usize], new_of[v as usize]);
            }
        }
        (g, old_of)
    }

    /// Degree histogram: `hist[d]` = number of vertices of degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_degree() + 1];
        for nbrs in &self.adj {
            hist[nbrs.len()] += 1;
        }
        hist
    }

    /// Rebuilds this graph in place as a copy of `src`, reusing each inner
    /// adjacency Vec's capacity where the vertex count allows.
    ///
    /// Unlike clearing and replaying `add_edge` (a binary-search insert per
    /// endpoint), this bulk-copies already-sorted neighbour slices, so it is
    /// O(n + m) and allocation-free once the per-vertex capacities have
    /// reached their high-water marks.
    pub fn rebuild_from<G: crate::Neighbors + ?Sized>(&mut self, src: &G) {
        let n = src.n();
        self.adj.truncate(n);
        for row in &mut self.adj {
            row.clear();
        }
        self.adj.resize_with(n, Vec::new);
        let mut m = 0usize;
        for (v, row) in self.adj.iter_mut().enumerate() {
            let nbrs = src.neighbors(v as NodeId);
            row.extend_from_slice(nbrs);
            m += nbrs.len();
        }
        self.m = m / 2;
    }
}

/// Is `a ⊆ b ∪ extra` for sorted `a`, `b` and a small unsorted `extra`?
fn sorted_subset_with(a: &[NodeId], b: &[NodeId], extra: &[NodeId]) -> bool {
    a.iter()
        .all(|x| extra.contains(x) || b.binary_search(x).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 5-node example of Figure 1: u-v, u-y, v-w, v-y, w-x.
    /// Vertices: u=0, v=1, w=2, x=3, y=4.
    pub(crate) fn figure1() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)])
    }

    #[test]
    fn new_graph_is_edgeless() {
        let g = Graph::new(4);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 0);
        assert!(!g.is_empty());
        assert!(Graph::new(0).is_empty());
    }

    #[test]
    fn add_edge_is_symmetric_and_idempotent() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 2));
        assert!(!g.add_edge(2, 0));
        assert_eq!(g.m(), 1);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        Graph::new(2).add_edge(1, 1);
    }

    #[test]
    fn remove_edge() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.m(), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
        assert_eq!(g.degree(2), 4);
    }

    #[test]
    fn closed_neighbors_inserts_self_in_order() {
        let g = Graph::from_edges(5, &[(2, 0), (2, 4)]);
        assert_eq!(g.closed_neighbors(2), vec![0, 2, 4]);
        assert_eq!(g.closed_neighbors(0), vec![0, 2]);
        assert_eq!(g.closed_neighbors(4), vec![2, 4]);
        assert_eq!(g.closed_neighbors(1), vec![1]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = figure1();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        assert_eq!(edges.len(), g.m());
    }

    #[test]
    fn complete_detection() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(!g.is_complete());
        g.add_edge(0, 2);
        assert!(g.is_complete());
        assert!(Graph::new(1).is_complete());
        assert!(Graph::new(0).is_complete());
    }

    #[test]
    fn degree_stats() {
        let g = figure1();
        assert_eq!(g.max_degree(), 3); // v
        assert_eq!(g.min_degree(), 1); // x
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
        assert_eq!(g.degree_histogram(), vec![0, 1, 3, 1]);
    }

    #[test]
    fn closed_coverage_rule1_condition() {
        // Figure 3(a) shape: N[v] ⊆ N[u]: v-u, v-a, u-a, u-b.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3)]);
        assert!(g.closed_covered_by(0, 1)); // N[0]={0,1,2} ⊆ N[1]={0,1,2,3}
        assert!(!g.closed_covered_by(1, 0));
        // Equal closed neighbourhoods cover each other.
        let h = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        assert!(h.closed_covered_by(0, 1) && h.closed_covered_by(1, 0));
    }

    #[test]
    fn closed_coverage_requires_adjacency() {
        // Isolated-ish: v not adjacent to u => N[v] can't be ⊆ N[u] (v ∉ N[u]).
        let g = Graph::from_edges(3, &[(1, 2)]);
        assert!(!g.closed_covered_by(0, 1));
        // but v is always covered by itself
        assert!(g.closed_covered_by(0, 0));
    }

    #[test]
    fn open_pair_coverage_rule2_condition() {
        // Path a - u - v - w - b: N(v)={u,w} ⊆ N(u) ∪ N(w) = {a,v} ∪ {v,b}? no.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(!g.open_covered_by_pair(2, 1, 3));
        // Triangle plus pendant on u: N(v) = {u, w} with u-w edge.
        let t = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]);
        assert!(t.open_covered_by_pair(1, 0, 2)); // N(1)={0,2} ⊆ N(0)∪N(2)
    }

    #[test]
    fn isolate_removes_all_incident_edges() {
        let mut g = figure1();
        g.isolate(1); // v
        assert_eq!(g.m(), 2); // u-y and w-x remain
        assert_eq!(g.degree(1), 0);
        assert!(g.has_edge(0, 4));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn induced_subgraph_maps_ids() {
        let g = figure1();
        let keep = vec![false, true, true, false, true]; // v, w, y
        let (sub, old_of) = g.induced(&keep);
        assert_eq!(old_of, vec![1, 2, 4]);
        assert_eq!(sub.n(), 3);
        // edges among {v,w,y}: v-w, v-y
        assert_eq!(sub.m(), 2);
        assert!(sub.has_edge(0, 1)); // v-w
        assert!(sub.has_edge(0, 2)); // v-y
        assert!(!sub.has_edge(1, 2));
    }

    #[test]
    fn from_edges_ignores_duplicates() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn add_vertex_appends_an_isolated_host() {
        let mut g = Graph::from_edges(2, &[(0, 1)]);
        let v = g.add_vertex();
        assert_eq!(v, 2);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 1);
        assert!(g.neighbors(v).is_empty());
        assert!(g.add_edge(v, 0));
        assert_eq!(g.degree(v), 1);
        assert_eq!(g.add_vertex(), 3);
    }

    #[test]
    fn rebuild_from_copies_structure_across_sizes() {
        let mut dst = Graph::new(0);
        // Grow, shrink, grow again — stale rows must not leak through.
        for src in [figure1(), Graph::from_edges(2, &[(0, 1)]), figure1(), Graph::new(0)] {
            dst.rebuild_from(&src);
            assert_eq!(dst, src);
        }
    }

    #[test]
    fn rebuild_from_csr_round_trips() {
        let src = figure1();
        let csr = crate::CsrGraph::from(&src);
        let mut dst = Graph::new(3);
        dst.add_edge(0, 1);
        dst.rebuild_from(&csr);
        assert_eq!(dst, src);
    }
}
