//! The [`Neighbors`] accessor trait: one neighbour-list interface over both
//! graph representations.
//!
//! The rule engine in `pacds-core` only ever reads sorted neighbour slices,
//! degrees, and edge membership. Abstracting those five reads behind a trait
//! lets the same monomorphised passes run on the mutable adjacency-list
//! [`Graph`] and on the flat [`CsrGraph`] hot-path layout with zero dynamic
//! dispatch — and property tests pin the two to bit-identical outputs.

use crate::{CsrGraph, Graph, NodeId};

/// Read-only neighbour access shared by [`Graph`] and [`CsrGraph`].
///
/// Implementations must present each vertex's open neighbour set as a slice
/// **sorted ascending** — the rule passes rely on deterministic iteration
/// order for reproducibility, and the default [`Neighbors::has_edge`] binary
/// search relies on sortedness for correctness.
pub trait Neighbors {
    /// Number of vertices.
    fn n(&self) -> usize;

    /// Number of undirected edges.
    fn m(&self) -> usize;

    /// Neighbours of `v`, sorted ascending.
    fn neighbors(&self, v: NodeId) -> &[NodeId];

    /// Degree of `v`.
    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Whether edge `{u, v}` exists.
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices.
    #[inline]
    fn vertices(&self) -> std::ops::Range<NodeId> {
        0..self.n() as NodeId
    }

    /// Whether the graph is complete (every pair adjacent).
    #[inline]
    fn is_complete(&self) -> bool {
        let n = self.n();
        n <= 1 || self.m() == n * (n - 1) / 2
    }
}

impl Neighbors for Graph {
    #[inline]
    fn n(&self) -> usize {
        Graph::n(self)
    }

    #[inline]
    fn m(&self) -> usize {
        Graph::m(self)
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        Graph::neighbors(self, v)
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        Graph::degree(self, v)
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Graph::has_edge(self, u, v)
    }
}

impl Neighbors for CsrGraph {
    #[inline]
    fn n(&self) -> usize {
        CsrGraph::n(self)
    }

    #[inline]
    fn m(&self) -> usize {
        CsrGraph::m(self)
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        CsrGraph::neighbors(self, v)
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        CsrGraph::has_edge(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    fn check_agreement<G: Neighbors>(g: &G, reference: &Graph) {
        assert_eq!(g.n(), reference.n());
        assert_eq!(g.m(), reference.m());
        assert_eq!(g.is_complete(), reference.is_complete());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), reference.neighbors(v));
            assert_eq!(g.degree(v), reference.degree(v));
            for u in g.vertices() {
                assert_eq!(g.has_edge(v, u), reference.has_edge(v, u), "{v},{u}");
            }
        }
    }

    #[test]
    fn both_impls_agree_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in [0usize, 1, 2, 9, 40] {
            let g = gen::gnp(&mut rng, n, 0.2);
            let csr = CsrGraph::from(&g);
            check_agreement(&g, &g.clone());
            check_agreement(&csr, &g);
        }
    }

    #[test]
    fn complete_graph_is_detected_via_trait() {
        let g = gen::complete(5);
        let csr = CsrGraph::from(&g);
        assert!(Neighbors::is_complete(&csr));
        assert!(!Neighbors::is_complete(&CsrGraph::from(&gen::path(5))));
    }
}
