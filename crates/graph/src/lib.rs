//! From-scratch undirected graph substrate for the PACDS workspace.
//!
//! The paper models an ad hoc wireless network as a simple undirected graph
//! `G = (V, E)` whose edges connect hosts within mutual transmission range.
//! This crate provides everything the algorithm layers need:
//!
//! * [`Graph`] — a mutable adjacency-list graph with sorted neighbour lists.
//! * [`CsrGraph`] — an immutable compressed-sparse-row view for hot loops.
//! * [`NeighborBitmap`] — per-node neighbourhood bitsets; the coverage tests
//!   at the heart of Rules 1/2 (`N[v] ⊆ N[u]`, `N(v) ⊆ N(u) ∪ N(w)`) become
//!   a handful of word-wise operations.
//! * [`algo`] — BFS, connected components, shortest paths (optionally
//!   restricted to a vertex subset, as dominating-set routing requires),
//!   eccentricity/diameter.
//! * [`gen`] — unit-disk graphs from host positions (grid-accelerated),
//!   G(n, p), and deterministic families (path, cycle, star, complete, grid).
//! * [`io`] — DOT and edge-list import/export.
//! * [`digest`] — canonical, insertion-order-independent FNV-1a graph
//!   digests (the serving layer's cache key).

pub mod algo;
pub mod bitmap;
pub mod csr;
pub mod digest;
pub mod gen;
pub mod graph;
pub mod io;
pub mod kernels;
pub mod neighbors;

pub use bitmap::NeighborBitmap;
pub use digest::{canonicalize_edges, graph_digest};
pub use csr::CsrGraph;
pub use graph::{Graph, NodeId};
pub use neighbors::Neighbors;

/// A set of vertices represented as a boolean mask over `0..n`.
///
/// Most PACDS algorithms (marking, pruning, routing restrictions) operate on
/// vertex subsets; a dense mask is both the fastest and the simplest
/// representation at these scales.
pub type VertexMask = Vec<bool>;

/// Collects the indices set in a [`VertexMask`].
pub fn mask_to_vec(mask: &[bool]) -> Vec<NodeId> {
    mask.iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(i as NodeId))
        .collect()
}

/// Builds a [`VertexMask`] of length `n` from a list of vertices.
pub fn vec_to_mask(n: usize, verts: &[NodeId]) -> VertexMask {
    let mut mask = vec![false; n];
    for &v in verts {
        mask[v as usize] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_round_trip() {
        let mask = vec_to_mask(6, &[0, 2, 5]);
        assert_eq!(mask, vec![true, false, true, false, false, true]);
        assert_eq!(mask_to_vec(&mask), vec![0, 2, 5]);
    }

    #[test]
    fn empty_mask() {
        assert!(mask_to_vec(&vec_to_mask(4, &[])).is_empty());
    }
}
