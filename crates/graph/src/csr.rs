//! Immutable compressed-sparse-row graph view.
//!
//! Hot passes (marking sweeps, BFS floods over thousands of Monte-Carlo
//! topologies) iterate neighbour lists millions of times. A CSR layout puts
//! all adjacency in two flat arrays, eliminating per-node Vec headers and
//! improving locality, and is trivially shareable across threads.

use crate::{Graph, NodeId};

/// An immutable undirected graph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbours of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Whether edge `{u, v}` exists (binary search on the shorter list).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> std::ops::Range<NodeId> {
        0..self.n() as NodeId
    }
}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.m());
        offsets.push(0);
        for v in 0..n as NodeId {
            targets.extend_from_slice(g.neighbors(v));
            offsets.push(targets.len() as u32);
        }
        Self { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    #[test]
    fn conversion_preserves_structure() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = gen::gnp(&mut rng, 60, 0.1);
        let c = CsrGraph::from(&g);
        assert_eq!(c.n(), g.n());
        assert_eq!(c.m(), g.m());
        for v in 0..g.n() as NodeId {
            assert_eq!(c.neighbors(v), g.neighbors(v));
            assert_eq!(c.degree(v), g.degree(v));
        }
        for u in 0..g.n() as NodeId {
            for v in 0..g.n() as NodeId {
                assert_eq!(c.has_edge(u, v), g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let c = CsrGraph::from(&Graph::new(0));
        assert_eq!(c.n(), 0);
        assert_eq!(c.m(), 0);
        let c = CsrGraph::from(&Graph::new(3));
        assert_eq!(c.n(), 3);
        assert_eq!(c.degree(2), 0);
        assert!(c.neighbors(0).is_empty());
    }
}
