//! Immutable compressed-sparse-row graph view.
//!
//! Hot passes (marking sweeps, BFS floods over thousands of Monte-Carlo
//! topologies) iterate neighbour lists millions of times. A CSR layout puts
//! all adjacency in two flat arrays, eliminating per-node Vec headers and
//! improving locality, and is trivially shareable across threads.

use crate::{Graph, Neighbors, NodeId};

/// An undirected graph in CSR form.
///
/// Structurally immutable between rebuilds; the hot path reconstructs it
/// in place each update interval via [`CsrGraph::rebuild_from`] /
/// [`crate::gen::unit_disk_csr`], reusing the two flat arrays so the
/// steady-state interval loop never touches the heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Default for CsrGraph {
    fn default() -> Self {
        Self {
            offsets: vec![0],
            targets: Vec::new(),
        }
    }
}

impl CsrGraph {
    /// An empty graph (zero vertices); a reusable slot for
    /// [`CsrGraph::rebuild_from`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbours of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Whether edge `{u, v}` exists (binary search on the shorter list).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> std::ops::Range<NodeId> {
        0..self.n() as NodeId
    }

    /// Rebuilds this graph in place as a copy of `src`, reusing the offset
    /// and target storage (allocation-free once warm).
    pub fn rebuild_from<G: Neighbors + ?Sized>(&mut self, src: &G) {
        let n = src.n();
        self.offsets.clear();
        self.targets.clear();
        self.offsets.reserve(n + 1);
        self.offsets.push(0);
        for v in 0..n as NodeId {
            self.targets.extend_from_slice(src.neighbors(v));
            self.offsets.push(self.targets.len() as u32);
        }
    }

    /// Rebuilds this graph in place as a copy of `src` with every vertex in
    /// `dropped` isolated (its edges removed, vertex count preserved).
    ///
    /// This is the survivor-topology step of the extended-lifetime loop:
    /// depleted hosts leave the network but keep their slot so masks and
    /// energy vectors stay index-aligned.
    ///
    /// # Panics
    /// Panics if `dropped.len() != src.n()`.
    pub fn rebuild_from_masked<G: Neighbors + ?Sized>(&mut self, src: &G, dropped: &[bool]) {
        let n = src.n();
        assert_eq!(dropped.len(), n, "mask length must equal vertex count");
        self.offsets.clear();
        self.targets.clear();
        self.offsets.reserve(n + 1);
        self.offsets.push(0);
        for v in 0..n as NodeId {
            if !dropped[v as usize] {
                self.targets.extend(
                    src.neighbors(v)
                        .iter()
                        .copied()
                        .filter(|&u| !dropped[u as usize]),
                );
            }
            self.offsets.push(self.targets.len() as u32);
        }
    }

    /// Rebuilds this graph in place as the subgraph of `src` induced by
    /// `nodes`, relabelled so local vertex `i` stands for `nodes[i]`.
    /// Because neighbour rows of `src` are ascending, passing `nodes` in
    /// ascending order yields ascending local rows whose order agrees with
    /// global id order — the invariant the sharded engine's priority
    /// tie-breaks rely on.
    ///
    /// `g2l` is caller-retained scratch (global-to-local map). Every entry
    /// must be `u32::MAX` on entry; the method restores that before
    /// returning, touching only the `nodes` entries, so repeated calls are
    /// `O(|nodes| + induced edges)` and allocation-free once `g2l` has
    /// grown to `src.n()`.
    ///
    /// # Panics
    /// Panics if `nodes` contains duplicates (debug builds also check
    /// ascending order).
    pub fn rebuild_induced<G: Neighbors + ?Sized>(
        &mut self,
        src: &G,
        nodes: &[NodeId],
        g2l: &mut Vec<u32>,
    ) {
        debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes must ascend");
        if g2l.len() < src.n() {
            g2l.resize(src.n(), u32::MAX);
        }
        for (li, &g) in nodes.iter().enumerate() {
            assert_eq!(g2l[g as usize], u32::MAX, "duplicate node {g}");
            g2l[g as usize] = li as u32;
        }
        self.offsets.clear();
        self.targets.clear();
        self.offsets.reserve(nodes.len() + 1);
        self.offsets.push(0);
        for &g in nodes {
            for &u in src.neighbors(g) {
                let lu = g2l[u as usize];
                if lu != u32::MAX {
                    self.targets.push(lu);
                }
            }
            self.offsets.push(self.targets.len() as u32);
        }
        for &g in nodes {
            g2l[g as usize] = u32::MAX;
        }
    }

    /// Direct access to the raw arrays for in-crate builders
    /// ([`crate::gen::unit_disk_csr`] writes edges straight into them).
    #[inline]
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<u32>, &mut Vec<NodeId>) {
        (&mut self.offsets, &mut self.targets)
    }
}

impl From<&Graph> for CsrGraph {
    fn from(g: &Graph) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.m());
        offsets.push(0);
        for v in 0..n as NodeId {
            targets.extend_from_slice(g.neighbors(v));
            offsets.push(targets.len() as u32);
        }
        Self { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    #[test]
    fn conversion_preserves_structure() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let g = gen::gnp(&mut rng, 60, 0.1);
        let c = CsrGraph::from(&g);
        assert_eq!(c.n(), g.n());
        assert_eq!(c.m(), g.m());
        for v in 0..g.n() as NodeId {
            assert_eq!(c.neighbors(v), g.neighbors(v));
            assert_eq!(c.degree(v), g.degree(v));
        }
        for u in 0..g.n() as NodeId {
            for v in 0..g.n() as NodeId {
                assert_eq!(c.has_edge(u, v), g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let c = CsrGraph::from(&Graph::new(0));
        assert_eq!(c.n(), 0);
        assert_eq!(c.m(), 0);
        let c = CsrGraph::from(&Graph::new(3));
        assert_eq!(c.n(), 3);
        assert_eq!(c.degree(2), 0);
        assert!(c.neighbors(0).is_empty());
    }

    #[test]
    fn default_is_empty() {
        let c = CsrGraph::new();
        assert_eq!(c.n(), 0);
        assert_eq!(c.m(), 0);
    }

    #[test]
    fn rebuild_from_matches_conversion_across_sizes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut c = CsrGraph::new();
        for n in [60usize, 10, 80, 0, 25] {
            let g = gen::gnp(&mut rng, n, 0.12);
            c.rebuild_from(&g);
            assert_eq!(c, CsrGraph::from(&g), "n={n}");
        }
    }

    #[test]
    fn rebuild_from_csr_source() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = gen::gnp(&mut rng, 40, 0.15);
        let src = CsrGraph::from(&g);
        let mut c = CsrGraph::new();
        c.rebuild_from(&src);
        assert_eq!(c, src);
    }

    #[test]
    fn rebuild_from_masked_isolates_dropped_vertices() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let g = gen::gnp(&mut rng, 50, 0.2);
        let mut dropped = vec![false; 50];
        for i in [3usize, 17, 17, 44, 0] {
            dropped[i] = true;
        }
        let mut c = CsrGraph::new();
        c.rebuild_from_masked(&g, &dropped);
        // Reference: clone + isolate.
        let mut h = g.clone();
        for (i, &d) in dropped.iter().enumerate() {
            if d {
                h.isolate(i as NodeId);
            }
        }
        assert_eq!(c, CsrGraph::from(&h));
        assert_eq!(c.n(), 50);
        assert_eq!(c.degree(17), 0);
    }

    #[test]
    fn rebuild_induced_matches_manual_relabelling() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let g = gen::gnp(&mut rng, 70, 0.15);
        let src = CsrGraph::from(&g);
        let mut c = CsrGraph::new();
        let mut g2l = Vec::new();
        let subsets: Vec<Vec<NodeId>> = vec![
            vec![],
            vec![42],
            (0..70u32).step_by(4).collect(),
            (0..70u32).collect(),
        ];
        for nodes in &subsets {
            c.rebuild_induced(&src, nodes, &mut g2l);
            assert_eq!(c.n(), nodes.len());
            for (li, &gi) in nodes.iter().enumerate() {
                let expected: Vec<u32> = nodes
                    .iter()
                    .enumerate()
                    .filter(|&(_, &gj)| g.has_edge(gi, gj))
                    .map(|(lj, _)| lj as u32)
                    .collect();
                assert_eq!(c.neighbors(li as NodeId), &expected[..]);
            }
            // The scratch map is restored, so back-to-back calls work.
            assert!(g2l.iter().all(|&x| x == u32::MAX));
        }
    }

    #[test]
    fn rebuild_from_masked_none_dropped_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let g = gen::gnp(&mut rng, 30, 0.2);
        let mut c = CsrGraph::new();
        c.rebuild_from_masked(&g, &[false; 30]);
        assert_eq!(c, CsrGraph::from(&g));
    }
}
