//! Canonical, adjacency-order-independent graph digests (FNV-1a).
//!
//! The serving layer caches CDS results keyed by the *topology*, not by the
//! byte order a client happened to send its edges in. This module defines
//! that canonical key: fold the vertex count and the **sorted, deduplicated
//! edge list** (`u < v`, ascending lexicographic) through FNV-1a. Two inputs
//! describing the same simple graph — whatever their insertion or wire
//! order — digest identically, and any node-count or edge delta changes the
//! digest.
//!
//! Both a 64-bit and a 128-bit variant are provided through the same
//! [`DigestSink`] folding code: the 64-bit form is the human-facing digest
//! ([`graph_digest`]), while cache keys use 128 bits so accidental
//! collisions are out of the picture at any realistic cache size.
//!
//! Folding never allocates: callers that already hold a canonical edge list
//! stream it through [`fold_edges`]; [`fold_graph`] walks a [`Neighbors`]
//! implementation's sorted adjacency directly. The two are guaranteed (and
//! tested) to produce identical digests for the same graph.

use crate::{Neighbors, NodeId};

/// FNV-1a offset basis / prime (64-bit).
const FNV64_OFFSET: u64 = 0xcbf29ce484222325;
const FNV64_PRIME: u64 = 0x100000001b3;

/// FNV-1a offset basis / prime (128-bit).
const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x1000000000000000000013b;

/// Byte sink folded by the canonical encoders below. Implemented by
/// [`Fnv1a64`] and [`Fnv1a128`]; integers are folded little-endian.
pub trait DigestSink {
    /// Folds raw bytes into the digest state.
    fn write(&mut self, bytes: &[u8]);

    /// Folds a `u32` (little-endian).
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian).
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

macro_rules! fnv_impl {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $offset:expr, $prime:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy)]
        pub struct $name {
            state: $ty,
        }

        impl $name {
            /// A fresh digest at the FNV offset basis.
            #[inline]
            pub fn new() -> Self {
                Self { state: $offset }
            }

            /// The current digest value.
            #[inline]
            pub fn finish(&self) -> $ty {
                self.state
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }

        impl DigestSink for $name {
            #[inline]
            fn write(&mut self, bytes: &[u8]) {
                let mut s = self.state;
                for &b in bytes {
                    s ^= <$ty>::from(b);
                    s = s.wrapping_mul($prime);
                }
                self.state = s;
            }
        }
    };
}

fnv_impl!(
    /// Incremental 64-bit FNV-1a.
    Fnv1a64,
    u64,
    FNV64_OFFSET,
    FNV64_PRIME
);
fnv_impl!(
    /// Incremental 128-bit FNV-1a.
    Fnv1a128,
    u128,
    FNV128_OFFSET,
    FNV128_PRIME
);

/// Domain-separation tag folded ahead of every graph encoding, so a graph
/// digest can never collide with a digest of some other record type that
/// happens to share a byte prefix.
const GRAPH_TAG: &[u8] = b"pacds.graph.v1";

/// Folds the canonical encoding of a graph given as a **sorted,
/// deduplicated** edge list: each pair `(u, v)` with `u < v`, the list
/// ascending lexicographically.
///
/// The canonical encoding is `tag, n, m, (u, v)*` — `m` included so the
/// empty edge list of an edgeless graph still separates from a vertex-count
/// collision, all integers little-endian.
///
/// # Panics
/// Debug-asserts canonical order; release builds trust the caller (the
/// serving layer sorts + dedups in place before calling).
pub fn fold_edges<D: DigestSink>(d: &mut D, n: usize, sorted_edges: &[(NodeId, NodeId)]) {
    d.write(GRAPH_TAG);
    d.write_u64(n as u64);
    d.write_u64(sorted_edges.len() as u64);
    let mut prev: Option<(NodeId, NodeId)> = None;
    for &(u, v) in sorted_edges {
        debug_assert!(u < v, "edge ({u}, {v}) not canonicalised");
        debug_assert!(prev.is_none_or(|p| p < (u, v)), "edge list not sorted/deduped");
        prev = Some((u, v));
        d.write_u32(u);
        d.write_u32(v);
    }
}

/// Folds the canonical encoding of `g` by walking its sorted adjacency.
/// Identical to [`fold_edges`] over `g`'s canonical edge list.
pub fn fold_graph<D: DigestSink, G: Neighbors + ?Sized>(d: &mut D, g: &G) {
    d.write(GRAPH_TAG);
    d.write_u64(g.n() as u64);
    d.write_u64(g.m() as u64);
    for u in g.vertices() {
        for &v in g.neighbors(u) {
            if u < v {
                d.write_u32(u);
                d.write_u32(v);
            }
        }
    }
}

/// The canonical 64-bit digest of a graph: FNV-1a over the sorted edge
/// list. Independent of edge insertion order; any node/edge delta changes
/// it (up to 64-bit collision odds).
pub fn graph_digest<G: Neighbors + ?Sized>(g: &G) -> u64 {
    let mut d = Fnv1a64::new();
    fold_graph(&mut d, g);
    d.finish()
}

/// Sorts and deduplicates `edges` into the canonical form required by
/// [`fold_edges`]: every pair flipped to `u < v`, ascending, unique.
/// In place and allocation-free (unstable sort).
///
/// # Panics
/// Panics on self-loops — a simple graph has none, and the wire decoder
/// rejects them before keying.
pub fn canonicalize_edges(edges: &mut Vec<(NodeId, NodeId)>) {
    for e in edges.iter_mut() {
        assert!(e.0 != e.1, "self-loop ({}, {}) cannot be canonicalised", e.0, e.1);
        if e.0 > e.1 {
            *e = (e.1, e.0);
        }
    }
    edges.sort_unstable();
    edges.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, CsrGraph, Graph};

    #[test]
    fn permuted_insertion_orders_digest_identically() {
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (0, 3), (1, 3)];
        let forward = Graph::from_edges(5, &edges);
        let mut reversed: Vec<_> = edges.to_vec();
        reversed.reverse();
        // Also flip endpoint order: {u, v} == {v, u}.
        let flipped: Vec<_> = reversed.iter().map(|&(u, v)| (v, u)).collect();
        let a = graph_digest(&forward);
        assert_eq!(a, graph_digest(&Graph::from_edges(5, &reversed)));
        assert_eq!(a, graph_digest(&Graph::from_edges(5, &flipped)));
        // Duplicate insertions are invisible.
        let mut doubled: Vec<_> = edges.to_vec();
        doubled.extend_from_slice(&edges);
        assert_eq!(a, graph_digest(&Graph::from_edges(5, &doubled)));
    }

    #[test]
    fn any_edge_or_node_delta_changes_the_digest() {
        let base = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let a = graph_digest(&base);
        // Extra edge.
        assert_ne!(a, graph_digest(&Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])));
        // Missing edge.
        assert_ne!(a, graph_digest(&Graph::from_edges(5, &[(0, 1), (1, 2)])));
        // Rewired edge.
        assert_ne!(a, graph_digest(&Graph::from_edges(5, &[(0, 1), (1, 2), (2, 4)])));
        // Same edges, different vertex count (trailing isolate).
        assert_ne!(a, graph_digest(&Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3)])));
        // Edgeless graphs of different sizes differ too.
        assert_ne!(graph_digest(&Graph::new(3)), graph_digest(&Graph::new(4)));
    }

    #[test]
    fn fold_edges_matches_fold_graph() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        for n in [0usize, 1, 2, 17, 60] {
            let g = gen::gnp(&mut rng, n, 0.2);
            let mut edges: Vec<(NodeId, NodeId)> = g.edges().collect();
            // Scramble, duplicate, and flip before canonicalising.
            edges.reverse();
            let extra: Vec<_> = edges.iter().map(|&(u, v)| (v, u)).collect();
            edges.extend(extra);
            canonicalize_edges(&mut edges);

            let mut via_list = Fnv1a64::new();
            fold_edges(&mut via_list, n, &edges);
            assert_eq!(via_list.finish(), graph_digest(&g), "n={n}");

            let mut wide_list = Fnv1a128::new();
            fold_edges(&mut wide_list, n, &edges);
            let mut wide_graph = Fnv1a128::new();
            fold_graph(&mut wide_graph, &g);
            assert_eq!(wide_list.finish(), wide_graph.finish(), "n={n} (128-bit)");
        }
    }

    #[test]
    fn adjacency_and_csr_views_digest_identically() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let g = gen::gnp(&mut rng, 40, 0.15);
        assert_eq!(graph_digest(&g), graph_digest(&CsrGraph::from(&g)));
    }

    #[test]
    fn canonicalize_flips_sorts_and_dedups() {
        let mut edges = vec![(3u32, 1u32), (0, 2), (1, 3), (2, 0), (1, 0)];
        canonicalize_edges(&mut edges);
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn canonicalize_rejects_self_loops() {
        canonicalize_edges(&mut vec![(2u32, 2u32)]);
    }

    #[test]
    fn digest_is_stable_across_runs() {
        // The digest is part of the wire/cache contract; pin one value so a
        // accidental encoding change cannot slip through.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(graph_digest(&g), graph_digest(&g.clone()));
        let d1 = graph_digest(&g);
        let d2 = graph_digest(&Graph::from_edges(3, &[(1, 2), (0, 1)]));
        assert_eq!(d1, d2);
    }
}
