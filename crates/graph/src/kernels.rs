//! Bit-parallel scan kernels for the coverage predicates.
//!
//! The pruning rules spend their inner loops deciding word-wise set
//! relations: `a & !b == 0` over whole bitmap rows (Rule 1's
//! `N[v] ⊆ N[u]`) and `a & !(b | c) == 0` over rows or sparse row
//! supports (Rule 2's `N(v) ⊆ N(u) ∪ N(w)`). This module is the single
//! home of those scans: 4-lane (`u64x4`-shaped) chunked AND/ANDN with an
//! OR-reduction and an early exit per chunk, written as std-only manual
//! unrolling so the autovectorizer can lower a chunk to one 256-bit
//! (or two 128-bit) vector op while the code stays portable.
//!
//! Both consumers route through here: the whole-graph
//! [`NeighborBitmap`](crate::NeighborBitmap) (and with it
//! `pacds_core::CdsWorkspace`) and the sharded engine's per-tile solver,
//! which runs the same workspace on tile subgraphs — so the testkit's
//! bit-identity harness exercises these kernels on every corpus entry.
//!
//! The early exit earns its keep probabilistically: Hansen–Schmutz's
//! analysis of Rule 2 on random unit-disk graphs predicts that almost all
//! candidate coverage tests fail, and fail *early* — a neighbour outside
//! the would-be covering pair shows up within the first few words — so
//! the expected scan length is O(1) chunks even though the worst case is
//! the full row.
//!
//! Every kernel is paired with a scalar reference in the test suite and
//! checked on adversarial widths (0, 63, 64, 65, 255, 256, 257 bits):
//! chunk remainders and word boundaries are exactly where a lane bug
//! would hide.

/// Words per chunk. Four `u64`s = 256 bits, one AVX2 register.
pub const LANES: usize = 4;

const WORD_BITS: usize = 64;

/// Whether `a & !b == 0` — no bit of `a` survives outside `b`.
///
/// Slices must have equal length (debug-asserted; release builds scan the
/// common prefix, which is the full slice for all in-crate callers).
#[inline]
pub fn diff_is_empty(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in ca.by_ref().zip(cb.by_ref()) {
        let d = (x[0] & !y[0]) | (x[1] & !y[1]) | (x[2] & !y[2]) | (x[3] & !y[3]);
        if d != 0 {
            return false;
        }
    }
    ca.remainder()
        .iter()
        .zip(cb.remainder())
        .all(|(&x, &y)| x & !y == 0)
}

/// Whether `a & !b == 0` after clearing the exception bits `e0` and `e1`,
/// each given as `(word index, bit mask)`. This is Rule 1's closed-
/// neighbourhood test `N[v] ⊆ N[u]` with the `u` and `v` self-bits
/// excused: open rows never contain the vertex itself, so those two bits
/// always survive the ANDN and must not count as excess.
///
/// The hot path is the same OR-reduced 4-lane chunk as
/// [`diff_is_empty`]; only a chunk whose reduction is nonzero re-checks
/// its lanes with the exceptions applied, so the excused words cost one
/// scalar re-check per run instead of two branches per word.
#[inline]
pub fn diff_is_empty_except(a: &[u64], b: &[u64], e0: (usize, u64), e1: (usize, u64)) -> bool {
    debug_assert_eq!(a.len(), b.len());
    #[inline(always)]
    fn excused(mut d: u64, i: usize, e0: (usize, u64), e1: (usize, u64)) -> u64 {
        if i == e0.0 {
            d &= !e0.1;
        }
        if i == e1.0 {
            d &= !e1.1;
        }
        d
    }
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let mut base = 0usize;
    for (x, y) in ca.by_ref().zip(cb.by_ref()) {
        let d = [x[0] & !y[0], x[1] & !y[1], x[2] & !y[2], x[3] & !y[3]];
        if d[0] | d[1] | d[2] | d[3] != 0 {
            for (k, &dk) in d.iter().enumerate() {
                if excused(dk, base + k, e0, e1) != 0 {
                    return false;
                }
            }
        }
        base += LANES;
    }
    for (k, (&x, &y)) in ca.remainder().iter().zip(cb.remainder()).enumerate() {
        if excused(x & !y, base + k, e0, e1) != 0 {
            return false;
        }
    }
    true
}

/// Whether `a & !(b | c) == 0` — Rule 2's pair coverage over full rows.
#[inline]
pub fn diff_pair_is_empty(a: &[u64], b: &[u64], c: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let mut cc = c.chunks_exact(LANES);
    for ((x, y), z) in ca.by_ref().zip(cb.by_ref()).zip(cc.by_ref()) {
        let d = (x[0] & !(y[0] | z[0]))
            | (x[1] & !(y[1] | z[1]))
            | (x[2] & !(y[2] | z[2]))
            | (x[3] & !(y[3] | z[3]));
        if d != 0 {
            return false;
        }
    }
    ca.remainder()
        .iter()
        .zip(cb.remainder())
        .zip(cc.remainder())
        .all(|((&x, &y), &z)| x & !(y | z) == 0)
}

/// Whether every word of the sparse `support` (the nonzero words of a row,
/// as `(word index, word)` pairs) is covered by `b | c` — the
/// row-support form of Rule 2's pair coverage, O(degree) gathers instead
/// of O(n/64) streaming.
///
/// The support list is short (at most `deg(v)` entries), so the unroll is
/// over support entries: four gathers, one OR-reduction, one exit test.
#[inline]
pub fn support_diff_pair_is_empty(support: &[(u32, u64)], b: &[u64], c: &[u64]) -> bool {
    let mut cs = support.chunks_exact(LANES);
    for s in cs.by_ref() {
        let d = (s[0].1 & !(b[s[0].0 as usize] | c[s[0].0 as usize]))
            | (s[1].1 & !(b[s[1].0 as usize] | c[s[1].0 as usize]))
            | (s[2].1 & !(b[s[2].0 as usize] | c[s[2].0 as usize]))
            | (s[3].1 & !(b[s[3].0 as usize] | c[s[3].0 as usize]));
        if d != 0 {
            return false;
        }
    }
    cs.remainder()
        .iter()
        .all(|&(i, w)| w & !(b[i as usize] | c[i as usize]) == 0)
}

/// The lowest set bit index of `support \ b` (sparse residual), or `None`
/// when the support is fully covered by `b` — the Rule 2 witness probe.
///
/// Order matters (the caller wants the *first* residual vertex), so a
/// chunk whose OR-reduction is nonzero re-walks its lanes in order.
#[inline]
pub fn support_first_diff_bit(support: &[(u32, u64)], b: &[u64]) -> Option<u32> {
    let mut cs = support.chunks_exact(LANES);
    for s in cs.by_ref() {
        let d = [
            s[0].1 & !b[s[0].0 as usize],
            s[1].1 & !b[s[1].0 as usize],
            s[2].1 & !b[s[2].0 as usize],
            s[3].1 & !b[s[3].0 as usize],
        ];
        if d[0] | d[1] | d[2] | d[3] != 0 {
            for (k, &dk) in d.iter().enumerate() {
                if dk != 0 {
                    return Some(s[k].0 * WORD_BITS as u32 + dk.trailing_zeros());
                }
            }
        }
    }
    cs.remainder().iter().find_map(|&(i, w)| {
        let d = w & !b[i as usize];
        (d != 0).then(|| i * WORD_BITS as u32 + d.trailing_zeros())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Scalar references: the loops the kernels replaced, verbatim.

    fn ref_diff_is_empty(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).all(|(&x, &y)| x & !y == 0)
    }

    fn ref_diff_is_empty_except(a: &[u64], b: &[u64], e0: (usize, u64), e1: (usize, u64)) -> bool {
        a.iter().zip(b).enumerate().all(|(i, (&x, &y))| {
            let mut d = x & !y;
            if i == e0.0 {
                d &= !e0.1;
            }
            if i == e1.0 {
                d &= !e1.1;
            }
            d == 0
        })
    }

    fn ref_diff_pair_is_empty(a: &[u64], b: &[u64], c: &[u64]) -> bool {
        a.iter()
            .zip(b)
            .zip(c)
            .all(|((&x, &y), &z)| x & !(y | z) == 0)
    }

    fn ref_support_first_diff_bit(support: &[(u32, u64)], b: &[u64]) -> Option<u32> {
        for &(i, w) in support {
            let d = w & !b[i as usize];
            if d != 0 {
                return Some(i * 64 + d.trailing_zeros());
            }
        }
        None
    }

    /// Deterministic pseudo-random words (no RNG dependency needed here).
    fn mix(seed: u64, i: u64) -> u64 {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x
    }

    fn row(seed: u64, words: usize, density_shift: u32) -> Vec<u64> {
        (0..words as u64)
            .map(|i| {
                // AND-ing shifted copies thins the bit density so subset
                // relations actually occur sometimes.
                let w = mix(seed, i);
                w & (w >> density_shift)
            })
            .collect()
    }

    /// The adversarial widths from the issue: empty, one-under / exactly /
    /// one-over a word boundary, and the same around a whole chunk
    /// (LANES * 64 = 256 bits).
    const WIDTHS_BITS: &[usize] = &[0, 63, 64, 65, 255, 256, 257];

    fn words_for(bits: usize) -> usize {
        bits.div_ceil(64)
    }

    #[test]
    fn diff_kernels_match_scalar_on_adversarial_widths() {
        for &bits in WIDTHS_BITS {
            let words = words_for(bits);
            for seed in 0..50u64 {
                let a = row(seed, words, 1);
                let b = row(seed + 1000, words, 0);
                let c = row(seed + 2000, words, 0);
                assert_eq!(
                    diff_is_empty(&a, &b),
                    ref_diff_is_empty(&a, &b),
                    "diff bits={bits} seed={seed}"
                );
                assert_eq!(
                    diff_pair_is_empty(&a, &b, &c),
                    ref_diff_pair_is_empty(&a, &b, &c),
                    "pair bits={bits} seed={seed}"
                );
                // Subset-true cases (a ⊆ b) must come out true as well.
                let sub: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
                assert!(diff_is_empty(&sub, &b), "subset bits={bits} seed={seed}");
                assert!(
                    diff_pair_is_empty(&sub, &b, &c),
                    "pair subset bits={bits} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn diff_except_matches_scalar_on_adversarial_widths() {
        for &bits in WIDTHS_BITS {
            let words = words_for(bits);
            for seed in 0..50u64 {
                let a = row(seed, words, 1);
                let b = row(seed + 3000, words, 0);
                // Exercise exceptions in the first word, the last word,
                // and (when wide enough) a mid-chunk word.
                let mut exc = vec![(0usize, 1u64 << (seed % 64))];
                if words > 0 {
                    exc.push((words - 1, 1u64 << ((seed * 7) % 64)));
                    exc.push((words / 2, 1u64 << ((seed * 13) % 64)));
                }
                for &e0 in &exc {
                    for &e1 in &exc {
                        assert_eq!(
                            diff_is_empty_except(&a, &b, e0, e1),
                            ref_diff_is_empty_except(&a, &b, e0, e1),
                            "bits={bits} seed={seed} e0={e0:?} e1={e1:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn support_kernels_match_scalar_on_adversarial_widths() {
        for &bits in WIDTHS_BITS {
            let words = words_for(bits);
            for seed in 0..50u64 {
                let a = row(seed, words, 1);
                let b = row(seed + 4000, words, 0);
                let c = row(seed + 5000, words, 0);
                let support: Vec<(u32, u64)> = a
                    .iter()
                    .enumerate()
                    .filter(|&(_, &w)| w != 0)
                    .map(|(i, &w)| (i as u32, w))
                    .collect();
                assert_eq!(
                    support_diff_pair_is_empty(&support, &b, &c),
                    ref_diff_pair_is_empty(&a, &b, &c),
                    "support pair bits={bits} seed={seed}"
                );
                assert_eq!(
                    support_first_diff_bit(&support, &b),
                    ref_support_first_diff_bit(&support, &b),
                    "support residual bits={bits} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn empty_inputs_are_vacuously_covered() {
        assert!(diff_is_empty(&[], &[]));
        assert!(diff_pair_is_empty(&[], &[], &[]));
        assert!(diff_is_empty_except(&[], &[], (0, 1), (0, 2)));
        assert!(support_diff_pair_is_empty(&[], &[], &[]));
        assert_eq!(support_first_diff_bit(&[], &[]), None);
    }

    #[test]
    fn first_diff_bit_is_the_lowest() {
        // Residual bits in words 1 and 4 (different chunks); the word-1
        // bit must win, and within a word the lowest bit must win.
        let b = vec![!0u64, 0, !0, !0, 0, !0];
        let support = vec![(1u32, 0b1100u64), (4u32, 1u64)];
        assert_eq!(support_first_diff_bit(&support, &b), Some(64 + 2));
    }
}
