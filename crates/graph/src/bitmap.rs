//! Per-node neighbourhood bitsets.
//!
//! The pruning rules test neighbourhood coverage many times per node:
//! `N[v] ⊆ N[u]` (Rule 1) and `N(v) ⊆ N(u) ∪ N(w)` (Rule 2). On a bitset
//! representation both reduce to a few word-wise `AND`/`OR` passes, turning
//! the rule engine's inner loop from set scans into O(n/64) word operations.

use crate::{Graph, NodeId};

const WORD_BITS: usize = 64;

#[inline]
fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}

/// A matrix of bitsets: row `v` holds the open neighbourhood `N(v)`.
#[derive(Debug, Clone)]
pub struct NeighborBitmap {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl NeighborBitmap {
    /// Builds the neighbourhood bitmap of `g`.
    pub fn build(g: &Graph) -> Self {
        let n = g.n();
        let words = words_for(n);
        let mut rows = vec![0u64; n * words];
        for v in 0..n {
            let row = &mut rows[v * words..(v + 1) * words];
            for &u in g.neighbors(v as NodeId) {
                row[u as usize / WORD_BITS] |= 1 << (u as usize % WORD_BITS);
            }
        }
        Self { n, words, rows }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn row(&self, v: NodeId) -> &[u64] {
        &self.rows[v as usize * self.words..(v as usize + 1) * self.words]
    }

    #[inline]
    fn bit(row: &[u64], i: NodeId) -> u64 {
        row[i as usize / WORD_BITS] >> (i as usize % WORD_BITS) & 1
    }

    /// Whether `u ∈ N(v)`.
    #[inline]
    pub fn contains(&self, v: NodeId, u: NodeId) -> bool {
        Self::bit(self.row(v), u) == 1
    }

    /// `N[v] ⊆ N[u]` — the Rule 1 coverage condition.
    ///
    /// Expanded: every neighbour of `v` must be `u`, or a neighbour of `u`;
    /// and `v` itself must be in `N[u]` (i.e. `v = u` or `v ~ u`).
    pub fn closed_subset(&self, v: NodeId, u: NodeId) -> bool {
        if v != u && !self.contains(u, v) {
            return false;
        }
        let rv = self.row(v);
        let ru = self.row(u);
        // mask = N(v) \ (N(u) ∪ {u, v}) must be empty.
        let ubit = u as usize;
        let vbit = v as usize;
        for i in 0..self.words {
            let mut excess = rv[i] & !ru[i];
            if ubit / WORD_BITS == i {
                excess &= !(1u64 << (ubit % WORD_BITS));
            }
            if vbit / WORD_BITS == i {
                excess &= !(1u64 << (vbit % WORD_BITS));
            }
            if excess != 0 {
                return false;
            }
        }
        true
    }

    /// `N(v) ⊆ N(u) ∪ N(w)` — the Rule 2 coverage condition.
    ///
    /// Open neighbourhoods: `v` never contains itself, and occurrences of
    /// `u`/`w` inside `N(v)` are covered whenever `u ~ w` or they appear in
    /// each other's rows; the paper applies this only to triples where `u`
    /// and `w` are neighbours of `v`, in which case `u ∈ N(v)` needs
    /// `u ∈ N(w)`: the bitset test computes the literal subset relation with
    /// no special cases, exactly as stated.
    pub fn open_subset_pair(&self, v: NodeId, u: NodeId, w: NodeId) -> bool {
        let rv = self.row(v);
        let ru = self.row(u);
        let rw = self.row(w);
        for i in 0..self.words {
            if rv[i] & !(ru[i] | rw[i]) != 0 {
                return false;
            }
        }
        true
    }

    /// Degree of `v` recomputed from the bitset (popcount).
    pub fn degree(&self, v: NodeId) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Rebuilds the rows of `verts` from `g` (after a local topology
    /// change); all other rows must still be valid for `g`.
    ///
    /// # Panics
    /// Panics if `g` has a different vertex count than the bitmap.
    pub fn refresh_rows(&mut self, g: &Graph, verts: impl IntoIterator<Item = NodeId>) {
        assert_eq!(g.n(), self.n, "vertex count is fixed");
        for v in verts {
            let row = &mut self.rows[v as usize * self.words..(v as usize + 1) * self.words];
            row.fill(0);
            for &u in g.neighbors(v) {
                row[u as usize / WORD_BITS] |= 1 << (u as usize % WORD_BITS);
            }
        }
    }

    /// Whether `N(target) ⊆ members ∪ (∪_{m ∈ members} N(m))` — the
    /// coverage condition of the Dai-Wu generalised pruning rule (the
    /// covering set's own vertices count as covered).
    pub fn union_covers(&self, target: NodeId, members: &[NodeId]) -> bool {
        let mut acc = vec![0u64; self.words];
        for &m in members {
            for (a, r) in acc.iter_mut().zip(self.row(m)) {
                *a |= r;
            }
            acc[m as usize / WORD_BITS] |= 1 << (m as usize % WORD_BITS);
        }
        self.row(target)
            .iter()
            .zip(&acc)
            .all(|(t, a)| t & !a == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    fn naive_closed_subset(g: &Graph, v: NodeId, u: NodeId) -> bool {
        g.closed_covered_by(v, u)
    }

    #[test]
    fn contains_matches_adjacency() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        let bm = NeighborBitmap::build(&g);
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(bm.contains(u, v), g.has_edge(u, v), "{u},{v}");
            }
        }
    }

    #[test]
    fn degree_matches_graph() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        let bm = NeighborBitmap::build(&g);
        for v in 0..5u32 {
            assert_eq!(bm.degree(v), g.degree(v));
        }
    }

    #[test]
    fn closed_subset_matches_naive_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for n in [2usize, 5, 17, 70, 130] {
            let g = gen::gnp(&mut rng, n, 0.15);
            let bm = NeighborBitmap::build(&g);
            for v in 0..n as NodeId {
                for u in 0..n as NodeId {
                    assert_eq!(
                        bm.closed_subset(v, u),
                        naive_closed_subset(&g, v, u),
                        "n={n} v={v} u={u}"
                    );
                }
            }
        }
    }

    #[test]
    fn open_subset_pair_matches_naive_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for n in [3usize, 8, 40, 80] {
            let g = gen::gnp(&mut rng, n, 0.2);
            let bm = NeighborBitmap::build(&g);
            for _ in 0..200 {
                use rand::Rng;
                let v = rng.random_range(0..n) as NodeId;
                let u = rng.random_range(0..n) as NodeId;
                let w = rng.random_range(0..n) as NodeId;
                assert_eq!(
                    bm.open_subset_pair(v, u, w),
                    g.open_covered_by_pair(v, u, w),
                    "n={n} v={v} u={u} w={w}"
                );
            }
        }
    }

    #[test]
    fn refresh_rows_tracks_edge_changes() {
        let mut g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let mut bm = NeighborBitmap::build(&g);
        g.add_edge(2, 5);
        g.remove_edge(0, 1);
        bm.refresh_rows(&g, [0u32, 1, 2, 5]);
        let fresh = NeighborBitmap::build(&g);
        for v in 0..6u32 {
            for u in 0..6u32 {
                assert_eq!(bm.contains(v, u), fresh.contains(v, u), "{v},{u}");
            }
        }
    }

    #[test]
    fn union_covers_matches_naive() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let g = gen::gnp(&mut rng, 40, 0.15);
            let bm = NeighborBitmap::build(&g);
            let target = rng.random_range(0..40) as NodeId;
            let members: Vec<NodeId> = (0..40u32)
                .filter(|_| rng.random_range(0..4) == 0)
                .collect();
            let naive = g.neighbors(target).iter().all(|&x| {
                members.contains(&x) || members.iter().any(|&m| g.has_edge(m, x))
            });
            assert_eq!(bm.union_covers(target, &members), naive);
        }
    }

    #[test]
    fn union_covers_trivia() {
        let g = gen::star(5);
        let bm = NeighborBitmap::build(&g);
        // Leaves are covered by the centre.
        assert!(bm.union_covers(1, &[0]));
        // The centre needs all leaves.
        assert!(!bm.union_covers(0, &[1, 2, 3]));
        assert!(bm.union_covers(0, &[1, 2, 3, 4]));
        // Isolated target in empty member set: covered iff no neighbours.
        let h = Graph::new(2);
        let bmh = NeighborBitmap::build(&h);
        assert!(bmh.union_covers(0, &[]));
    }

    #[test]
    fn word_boundary_vertices() {
        // Vertices 63, 64, 65 straddle the u64 boundary.
        let mut g = Graph::new(130);
        g.add_edge(63, 64);
        g.add_edge(64, 65);
        g.add_edge(63, 65);
        g.add_edge(64, 129);
        let bm = NeighborBitmap::build(&g);
        assert!(bm.contains(63, 64));
        assert!(bm.contains(129, 64));
        // N[63]={63,64,65} ⊆ N[64]={63,64,65,129}
        assert!(bm.closed_subset(63, 64));
        assert!(!bm.closed_subset(64, 63));
    }
}
