//! Per-node neighbourhood bitsets.
//!
//! The pruning rules test neighbourhood coverage many times per node:
//! `N[v] ⊆ N[u]` (Rule 1) and `N(v) ⊆ N(u) ∪ N(w)` (Rule 2). On a bitset
//! representation both reduce to a few word-wise `AND`/`OR` passes, turning
//! the rule engine's inner loop from set scans into O(n/64) word operations
//! — executed 4 words at a time by the [`crate::kernels`] module, with an
//! early exit per 256-bit chunk.

use crate::{kernels, Neighbors, NodeId};

const WORD_BITS: usize = 64;

#[inline]
fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}

/// A matrix of bitsets: row `v` holds the open neighbourhood `N(v)`.
#[derive(Debug, Clone, Default)]
pub struct NeighborBitmap {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl NeighborBitmap {
    /// An empty bitmap (zero vertices); a reusable slot for
    /// [`NeighborBitmap::rebuild_into`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the neighbourhood bitmap of `g`.
    pub fn build<G: Neighbors + ?Sized>(g: &G) -> Self {
        let mut bm = Self::new();
        bm.rebuild_into(g);
        bm
    }

    /// Rebuilds the bitmap for `g` in place, reusing the row storage.
    ///
    /// After warm-up (once the row buffer has reached its high-water size)
    /// this performs no heap allocation, which is what keeps the
    /// Monte-Carlo interval loop allocation-free. Rows are filled through a
    /// single mutable chunk borrow per vertex ([`slice::chunks_exact_mut`]),
    /// not by re-slicing `rows[v * words..]` inside the neighbour loop.
    pub fn rebuild_into<G: Neighbors + ?Sized>(&mut self, g: &G) {
        let n = g.n();
        let words = words_for(n);
        self.n = n;
        self.words = words;
        self.rows.clear();
        self.rows.resize(n * words, 0);
        if words == 0 {
            return;
        }
        for (v, row) in self.rows.chunks_exact_mut(words).enumerate() {
            for &u in g.neighbors(v as NodeId) {
                row[u as usize / WORD_BITS] |= 1 << (u as usize % WORD_BITS);
            }
        }
    }

    /// Clears every row (all neighbourhoods become empty) without touching
    /// the vertex count or releasing storage. Pair with
    /// [`NeighborBitmap::set_edge`] to assemble a topology edge by edge.
    pub fn clear(&mut self) {
        self.rows.fill(0);
    }

    /// Records the undirected edge `{u, v}` in both rows.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints; self-loops are ignored (open
    /// neighbourhoods never contain the vertex itself).
    pub fn set_edge(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            return;
        }
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        self.rows[u as usize * self.words + v as usize / WORD_BITS] |=
            1 << (v as usize % WORD_BITS);
        self.rows[v as usize * self.words + u as usize / WORD_BITS] |=
            1 << (u as usize % WORD_BITS);
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn row(&self, v: NodeId) -> &[u64] {
        &self.rows[v as usize * self.words..(v as usize + 1) * self.words]
    }

    #[inline]
    fn bit(row: &[u64], i: NodeId) -> u64 {
        row[i as usize / WORD_BITS] >> (i as usize % WORD_BITS) & 1
    }

    /// Whether `u ∈ N(v)`.
    #[inline]
    pub fn contains(&self, v: NodeId, u: NodeId) -> bool {
        Self::bit(self.row(v), u) == 1
    }

    /// `N[v] ⊆ N[u]` — the Rule 1 coverage condition.
    ///
    /// Expanded: every neighbour of `v` must be `u`, or a neighbour of `u`;
    /// and `v` itself must be in `N[u]` (i.e. `v = u` or `v ~ u`).
    pub fn closed_subset(&self, v: NodeId, u: NodeId) -> bool {
        if v != u && !self.contains(u, v) {
            return false;
        }
        // mask = N(v) \ (N(u) ∪ {u, v}) must be empty; the u/v self-bits
        // are the kernel's exception masks.
        let ubit = u as usize;
        let vbit = v as usize;
        kernels::diff_is_empty_except(
            self.row(v),
            self.row(u),
            (ubit / WORD_BITS, 1u64 << (ubit % WORD_BITS)),
            (vbit / WORD_BITS, 1u64 << (vbit % WORD_BITS)),
        )
    }

    /// `N(v) ⊆ N(u) ∪ N(w)` — the Rule 2 coverage condition.
    ///
    /// Open neighbourhoods: `v` never contains itself, and occurrences of
    /// `u`/`w` inside `N(v)` are covered whenever `u ~ w` or they appear in
    /// each other's rows; the paper applies this only to triples where `u`
    /// and `w` are neighbours of `v`, in which case `u ∈ N(v)` needs
    /// `u ∈ N(w)`: the bitset test computes the literal subset relation with
    /// no special cases, exactly as stated.
    pub fn open_subset_pair(&self, v: NodeId, u: NodeId, w: NodeId) -> bool {
        kernels::diff_pair_is_empty(self.row(v), self.row(u), self.row(w))
    }

    /// Degree of `v` recomputed from the bitset (popcount).
    pub fn degree(&self, v: NodeId) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Collects the nonzero words of row `v` as `(word index, word)` pairs
    /// into `out` (cleared first).
    ///
    /// At bounded degree a row has at most `deg(v)` nonzero words however
    /// large `n` grows, so coverage predicates restricted to this support
    /// run in O(deg) instead of O(n/64) — the difference between the rule
    /// passes scaling linearly and quadratically with network size.
    pub fn row_support_into(&self, v: NodeId, out: &mut Vec<(u32, u64)>) {
        out.clear();
        for (i, &w) in self.row(v).iter().enumerate() {
            if w != 0 {
                out.push((i as u32, w));
            }
        }
    }

    /// The lowest-index vertex of `N(v) \ N(u)`, where `support` holds the
    /// nonzero words of `N(v)` ([`NeighborBitmap::row_support_into`]);
    /// `None` when `N(v) ⊆ N(u)`. Any set covering `N(v)` together with
    /// `N(u)` must contain this vertex, which makes it a one-word witness
    /// test that rejects most candidate partners before any full coverage
    /// scan.
    pub fn first_residual_bit(&self, support: &[(u32, u64)], u: NodeId) -> Option<NodeId> {
        kernels::support_first_diff_bit(support, self.row(u))
    }

    /// [`NeighborBitmap::open_subset_pair`] with the support of row `v`
    /// precomputed by [`NeighborBitmap::row_support_into`]: decides
    /// `N(v) ⊆ N(u) ∪ N(w)` touching only the nonzero words of `N(v)`,
    /// with the usual early exit on the first uncovered word.
    pub fn open_subset_pair_with(&self, support: &[(u32, u64)], u: NodeId, w: NodeId) -> bool {
        kernels::support_diff_pair_is_empty(support, self.row(u), self.row(w))
    }

    /// Rebuilds the rows of `verts` from `g` (after a local topology
    /// change); all other rows must still be valid for `g`.
    ///
    /// # Panics
    /// Panics if `g` has a different vertex count than the bitmap.
    pub fn refresh_rows<G: Neighbors + ?Sized>(
        &mut self,
        g: &G,
        verts: impl IntoIterator<Item = NodeId>,
    ) {
        assert_eq!(g.n(), self.n, "vertex count is fixed");
        for v in verts {
            let row = &mut self.rows[v as usize * self.words..(v as usize + 1) * self.words];
            row.fill(0);
            for &u in g.neighbors(v) {
                row[u as usize / WORD_BITS] |= 1 << (u as usize % WORD_BITS);
            }
        }
    }

    /// Whether `N(target) ⊆ members ∪ (∪_{m ∈ members} N(m))` — the
    /// coverage condition of the Dai-Wu generalised pruning rule (the
    /// covering set's own vertices count as covered).
    pub fn union_covers(&self, target: NodeId, members: &[NodeId]) -> bool {
        let mut acc = vec![0u64; self.words];
        for &m in members {
            for (a, r) in acc.iter_mut().zip(self.row(m)) {
                *a |= r;
            }
            acc[m as usize / WORD_BITS] |= 1 << (m as usize % WORD_BITS);
        }
        kernels::diff_is_empty(self.row(target), &acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, CsrGraph, Graph};
    use rand::SeedableRng;

    fn naive_closed_subset(g: &Graph, v: NodeId, u: NodeId) -> bool {
        g.closed_covered_by(v, u)
    }

    #[test]
    fn contains_matches_adjacency() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        let bm = NeighborBitmap::build(&g);
        for u in 0..5u32 {
            for v in 0..5u32 {
                assert_eq!(bm.contains(u, v), g.has_edge(u, v), "{u},{v}");
            }
        }
    }

    #[test]
    fn degree_matches_graph() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        let bm = NeighborBitmap::build(&g);
        for v in 0..5u32 {
            assert_eq!(bm.degree(v), g.degree(v));
        }
    }

    #[test]
    fn closed_subset_matches_naive_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for n in [2usize, 5, 17, 70, 130] {
            let g = gen::gnp(&mut rng, n, 0.15);
            let bm = NeighborBitmap::build(&g);
            for v in 0..n as NodeId {
                for u in 0..n as NodeId {
                    assert_eq!(
                        bm.closed_subset(v, u),
                        naive_closed_subset(&g, v, u),
                        "n={n} v={v} u={u}"
                    );
                }
            }
        }
    }

    #[test]
    fn open_subset_pair_matches_naive_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for n in [3usize, 8, 40, 80] {
            let g = gen::gnp(&mut rng, n, 0.2);
            let bm = NeighborBitmap::build(&g);
            for _ in 0..200 {
                use rand::Rng;
                let v = rng.random_range(0..n) as NodeId;
                let u = rng.random_range(0..n) as NodeId;
                let w = rng.random_range(0..n) as NodeId;
                assert_eq!(
                    bm.open_subset_pair(v, u, w),
                    g.open_covered_by_pair(v, u, w),
                    "n={n} v={v} u={u} w={w}"
                );
            }
        }
    }

    #[test]
    fn refresh_rows_tracks_edge_changes() {
        let mut g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let mut bm = NeighborBitmap::build(&g);
        g.add_edge(2, 5);
        g.remove_edge(0, 1);
        bm.refresh_rows(&g, [0u32, 1, 2, 5]);
        let fresh = NeighborBitmap::build(&g);
        for v in 0..6u32 {
            for u in 0..6u32 {
                assert_eq!(bm.contains(v, u), fresh.contains(v, u), "{v},{u}");
            }
        }
    }

    #[test]
    fn union_covers_matches_naive() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let g = gen::gnp(&mut rng, 40, 0.15);
            let bm = NeighborBitmap::build(&g);
            let target = rng.random_range(0..40) as NodeId;
            let members: Vec<NodeId> = (0..40u32)
                .filter(|_| rng.random_range(0..4) == 0)
                .collect();
            let naive = g.neighbors(target).iter().all(|&x| {
                members.contains(&x) || members.iter().any(|&m| g.has_edge(m, x))
            });
            assert_eq!(bm.union_covers(target, &members), naive);
        }
    }

    #[test]
    fn union_covers_trivia() {
        let g = gen::star(5);
        let bm = NeighborBitmap::build(&g);
        // Leaves are covered by the centre.
        assert!(bm.union_covers(1, &[0]));
        // The centre needs all leaves.
        assert!(!bm.union_covers(0, &[1, 2, 3]));
        assert!(bm.union_covers(0, &[1, 2, 3, 4]));
        // Isolated target in empty member set: covered iff no neighbours.
        let h = Graph::new(2);
        let bmh = NeighborBitmap::build(&h);
        assert!(bmh.union_covers(0, &[]));
    }

    #[test]
    fn word_boundary_vertices() {
        // Vertices 63, 64, 65 straddle the u64 boundary.
        let mut g = Graph::new(130);
        g.add_edge(63, 64);
        g.add_edge(64, 65);
        g.add_edge(63, 65);
        g.add_edge(64, 129);
        let bm = NeighborBitmap::build(&g);
        assert!(bm.contains(63, 64));
        assert!(bm.contains(129, 64));
        // N[63]={63,64,65} ⊆ N[64]={63,64,65,129}
        assert!(bm.closed_subset(63, 64));
        assert!(!bm.closed_subset(64, 63));
    }

    #[test]
    fn build_from_csr_matches_build_from_graph() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        for n in [0usize, 1, 9, 70, 130] {
            let g = gen::gnp(&mut rng, n, 0.2);
            let csr = CsrGraph::from(&g);
            let a = NeighborBitmap::build(&g);
            let b = NeighborBitmap::build(&csr);
            for v in 0..n as NodeId {
                for u in 0..n as NodeId {
                    assert_eq!(a.contains(v, u), b.contains(v, u), "n={n} {v},{u}");
                }
            }
        }
    }

    #[test]
    fn rebuild_into_reuses_capacity_and_matches_fresh_build() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(34);
        let mut bm = NeighborBitmap::new();
        // Shrinking n must not leave stale bits behind, and growing back must
        // not read garbage.
        for n in [130usize, 40, 130, 7, 0, 90] {
            let g = gen::gnp(&mut rng, n, 0.15);
            bm.rebuild_into(&g);
            let fresh = NeighborBitmap::build(&g);
            assert_eq!(bm.n(), fresh.n());
            for v in 0..n as NodeId {
                for u in 0..n as NodeId {
                    assert_eq!(bm.contains(v, u), fresh.contains(v, u), "n={n} {v},{u}");
                }
            }
        }
    }

    #[test]
    fn clear_and_set_edge_assemble_a_topology() {
        let g = Graph::from_edges(70, &[(0, 69), (1, 64), (63, 64), (2, 3)]);
        let mut bm = NeighborBitmap::build(&gen::complete(70));
        bm.clear();
        for v in 0..70u32 {
            for u in 0..70u32 {
                assert!(!bm.contains(v, u), "clear left {v},{u} set");
            }
        }
        for (u, v) in [(0u32, 69u32), (1, 64), (63, 64), (2, 3)] {
            bm.set_edge(u, v);
        }
        bm.set_edge(5, 5); // self-loop: ignored
        let fresh = NeighborBitmap::build(&g);
        for v in 0..70u32 {
            for u in 0..70u32 {
                assert_eq!(bm.contains(v, u), fresh.contains(v, u), "{v},{u}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_edge_rejects_out_of_range() {
        let mut bm = NeighborBitmap::build(&Graph::new(4));
        bm.set_edge(0, 4);
    }
}
