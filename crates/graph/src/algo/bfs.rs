//! Breadth-first search primitives.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Hop distance used for "unreachable".
pub const UNREACHABLE: u32 = u32::MAX;

/// Hop distances from `src` to every vertex (`UNREACHABLE` if disconnected).
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == UNREACHABLE {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// BFS tree parents from `src`; `parent[src] = src`, unreached = `NodeId::MAX`.
pub fn bfs_parents(g: &Graph, src: NodeId) -> Vec<NodeId> {
    let mut parent = vec![NodeId::MAX; g.n()];
    let mut queue = VecDeque::new();
    parent[src as usize] = src;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if parent[u as usize] == NodeId::MAX {
                parent[u as usize] = v;
                queue.push_back(u);
            }
        }
    }
    parent
}

/// Eccentricity of `src`: the greatest hop distance to any reachable vertex.
/// Returns `None` when some vertex is unreachable (infinite eccentricity).
pub fn eccentricity(g: &Graph, src: NodeId) -> Option<u32> {
    let dist = bfs_distances(g, src);
    let mut ecc = 0;
    for d in dist {
        if d == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn distances_on_a_path() {
        let d = bfs_distances(&path5(), 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn distances_with_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn parents_form_a_tree_towards_source() {
        let g = path5();
        let p = bfs_parents(&g, 2);
        assert_eq!(p[2], 2);
        assert_eq!(p[1], 2);
        assert_eq!(p[0], 1);
        assert_eq!(p[3], 2);
        assert_eq!(p[4], 3);
    }

    #[test]
    fn parents_mark_unreachable() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let p = bfs_parents(&g, 0);
        assert_eq!(p[2], NodeId::MAX);
    }

    #[test]
    fn eccentricity_path_ends_and_middle() {
        let g = path5();
        assert_eq!(eccentricity(&g, 0), Some(4));
        assert_eq!(eccentricity(&g, 2), Some(2));
    }

    #[test]
    fn eccentricity_disconnected_is_none() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert_eq!(eccentricity(&g, 0), None);
    }
}
