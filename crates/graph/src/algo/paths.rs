//! Shortest paths, optionally restricted to a vertex subset.
//!
//! Dominating-set-based routing confines intermediate hops to gateway
//! vertices; [`restricted_shortest_path`] models exactly that: endpoints may
//! be any vertices, but every *intermediate* vertex must satisfy the mask.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Errors from path queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathError {
    /// No path exists under the given restriction.
    Unreachable,
    /// An endpoint is out of range.
    OutOfRange,
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::Unreachable => write!(f, "no path exists"),
            PathError::OutOfRange => write!(f, "endpoint out of range"),
        }
    }
}

impl std::error::Error for PathError {}

/// Shortest (fewest hops) path from `src` to `dst`, inclusive of endpoints.
pub fn shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Result<Vec<NodeId>, PathError> {
    restricted_shortest_path(g, src, dst, |_| true)
}

/// Shortest path where every intermediate vertex `v` must satisfy
/// `allowed(v)`. Endpoints are exempt from the restriction.
pub fn restricted_shortest_path<F: Fn(NodeId) -> bool>(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    allowed: F,
) -> Result<Vec<NodeId>, PathError> {
    let n = g.n();
    if (src as usize) >= n || (dst as usize) >= n {
        return Err(PathError::OutOfRange);
    }
    if src == dst {
        return Ok(vec![src]);
    }
    let mut parent = vec![NodeId::MAX; n];
    let mut queue = VecDeque::new();
    parent[src as usize] = src;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if parent[u as usize] != NodeId::MAX {
                continue;
            }
            if u == dst {
                parent[u as usize] = v;
                // Reconstruct.
                let mut path = vec![dst];
                let mut cur = v;
                while cur != src {
                    path.push(cur);
                    cur = parent[cur as usize];
                }
                path.push(src);
                path.reverse();
                return Ok(path);
            }
            if allowed(u) {
                parent[u as usize] = v;
                queue.push_back(u);
            }
        }
    }
    Err(PathError::Unreachable)
}

/// Graph diameter in hops; `None` when disconnected or empty.
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.n() == 0 {
        return None;
    }
    let mut best = 0;
    for v in 0..g.n() as NodeId {
        best = best.max(super::bfs::eccentricity(g, v)?);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn trivial_paths() {
        let g = path5();
        assert_eq!(shortest_path(&g, 2, 2).unwrap(), vec![2]);
        assert_eq!(shortest_path(&g, 0, 1).unwrap(), vec![0, 1]);
    }

    #[test]
    fn shortest_path_on_a_cycle_takes_the_short_side() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let p = shortest_path(&g, 0, 2).unwrap();
        assert_eq!(p, vec![0, 1, 2]);
        let p = shortest_path(&g, 0, 4).unwrap();
        assert_eq!(p, vec![0, 5, 4]);
    }

    #[test]
    fn unreachable_and_out_of_range() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        assert_eq!(shortest_path(&g, 0, 3), Err(PathError::Unreachable));
        assert_eq!(shortest_path(&g, 0, 9), Err(PathError::OutOfRange));
    }

    #[test]
    fn restriction_blocks_intermediates_not_endpoints() {
        let g = path5();
        // Forbid vertex 2 as an intermediate: 0 -> 4 becomes unreachable.
        let r = restricted_shortest_path(&g, 0, 4, |v| v != 2);
        assert_eq!(r, Err(PathError::Unreachable));
        // But 0 -> 2 is fine: 2 is an endpoint, not an intermediate.
        let p = restricted_shortest_path(&g, 0, 2, |v| v != 2).unwrap();
        assert_eq!(p, vec![0, 1, 2]);
        // And 1 -> 3 via 2 is forbidden, no alternative: unreachable.
        assert_eq!(
            restricted_shortest_path(&g, 1, 3, |v| v != 2),
            Err(PathError::Unreachable)
        );
    }

    #[test]
    fn restriction_can_lengthen_the_path() {
        // Square with diagonal: 0-1-2, 0-3-2, plus 0-2 via 1 shorter.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 3), (3, 2)]);
        let free = shortest_path(&g, 0, 2).unwrap();
        assert_eq!(free.len(), 3);
        let restricted = restricted_shortest_path(&g, 0, 2, |v| v != 1).unwrap();
        assert_eq!(restricted, vec![0, 3, 2]);
    }

    #[test]
    fn diameter_values() {
        assert_eq!(diameter(&path5()), Some(4));
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        assert_eq!(diameter(&g), None); // disconnected
        assert_eq!(diameter(&Graph::new(0)), None);
        assert_eq!(diameter(&Graph::new(1)), Some(0));
        let k3 = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(diameter(&k3), Some(1));
    }
}
