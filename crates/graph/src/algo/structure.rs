//! Structural analysis: articulation points and bridges.
//!
//! A gateway that is an articulation point of the backbone is a single
//! point of failure for routing; the routing crate uses these to score the
//! robustness of a gateway set.

use crate::{Graph, NodeId};

/// Articulation points (cut vertices) of `g`, via iterative Tarjan DFS.
pub fn articulation_points(g: &Graph) -> Vec<bool> {
    let n = g.n();
    let mut disc = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut is_cut = vec![false; n];
    let mut timer = 1u32;

    // Iterative DFS frame: (vertex, parent, next neighbor index).
    let mut stack: Vec<(NodeId, NodeId, usize)> = Vec::new();
    for root in 0..n as NodeId {
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        let mut root_children = 0usize;
        stack.push((root, NodeId::MAX, 0));
        while let Some(&mut (v, parent, ref mut idx)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            if *idx < nbrs.len() {
                let u = nbrs[*idx];
                *idx += 1;
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    disc[u as usize] = timer;
                    low[u as usize] = timer;
                    timer += 1;
                    if v == root {
                        root_children += 1;
                    }
                    stack.push((u, v, 0));
                } else if u != parent {
                    low[v as usize] = low[v as usize].min(disc[u as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if p != root && low[v as usize] >= disc[p as usize] {
                        is_cut[p as usize] = true;
                    }
                }
            }
        }
        is_cut[root as usize] = root_children > 1;
    }
    is_cut
}

/// Bridges (cut edges) of `g`, as `(u, v)` pairs with `u < v`.
pub fn bridges(g: &Graph) -> Vec<(NodeId, NodeId)> {
    let n = g.n();
    let mut disc = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut out = Vec::new();
    let mut timer = 1u32;
    let mut stack: Vec<(NodeId, NodeId, usize)> = Vec::new();

    for root in 0..n as NodeId {
        if visited[root as usize] {
            continue;
        }
        visited[root as usize] = true;
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        stack.push((root, NodeId::MAX, 0));
        while let Some(&mut (v, parent, ref mut idx)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            if *idx < nbrs.len() {
                let u = nbrs[*idx];
                *idx += 1;
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    disc[u as usize] = timer;
                    low[u as usize] = timer;
                    timer += 1;
                    stack.push((u, v, 0));
                } else if u != parent {
                    low[v as usize] = low[v as usize].min(disc[u as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if low[v as usize] > disc[p as usize] {
                        out.push((p.min(v), p.max(v)));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::SeedableRng;

    /// Reference: v is an articulation point iff removing it increases the
    /// component count among the remaining vertices.
    fn naive_cuts(g: &Graph) -> Vec<bool> {
        let base = crate::algo::num_components(g);
        (0..g.n() as NodeId)
            .map(|v| {
                let mut h = g.clone();
                h.isolate(v);
                // Removing v leaves it as its own isolated component.
                let comps_without_v = crate::algo::num_components(&h) - 1;
                comps_without_v > base - usize::from(g.degree(v) == 0)
            })
            .collect()
    }

    #[test]
    fn path_interior_vertices_are_cuts() {
        let g = gen::path(5);
        assert_eq!(
            articulation_points(&g),
            vec![false, true, true, true, false]
        );
        assert_eq!(bridges(&g), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn cycles_have_no_cuts_or_bridges() {
        let g = gen::cycle(6);
        assert!(articulation_points(&g).iter().all(|&c| !c));
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn star_center_is_the_only_cut() {
        let g = gen::star(5);
        let cuts = articulation_points(&g);
        assert!(cuts[0]);
        assert!(cuts[1..].iter().all(|&c| !c));
        assert_eq!(bridges(&g).len(), 4);
    }

    #[test]
    fn barbell_bridge() {
        // Two triangles joined by one edge: that edge is the only bridge,
        // its endpoints the only cuts.
        let g = Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        );
        let cuts = articulation_points(&g);
        assert_eq!(cuts, vec![false, false, true, true, false, false]);
        assert_eq!(bridges(&g), vec![(2, 3)]);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let g = gen::gnp(&mut rng, 25, 0.08);
            assert_eq!(articulation_points(&g), naive_cuts(&g), "{g:?}");
        }
    }

    #[test]
    fn bridge_endpoints_of_degree_over_one_are_cuts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(18);
        for _ in 0..20 {
            let g = gen::gnp(&mut rng, 20, 0.1);
            let cuts = articulation_points(&g);
            for (u, v) in bridges(&g) {
                if g.degree(u) > 1 {
                    assert!(cuts[u as usize]);
                }
                if g.degree(v) > 1 {
                    assert!(cuts[v as usize]);
                }
            }
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        assert!(articulation_points(&Graph::new(0)).is_empty());
        assert_eq!(articulation_points(&Graph::new(1)), vec![false]);
        let e = Graph::from_edges(2, &[(0, 1)]);
        assert_eq!(articulation_points(&e), vec![false, false]);
        assert_eq!(bridges(&e), vec![(0, 1)]);
    }
}
