//! Connectivity queries.

use crate::{Graph, Neighbors, NodeId};
use std::collections::VecDeque;

/// Component label of each vertex (labels are dense, in discovery order).
pub fn connected_components(g: &Graph) -> Vec<u32> {
    let n = g.n();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        label[s] = next;
        queue.push_back(s as NodeId);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if label[u as usize] == u32::MAX {
                    label[u as usize] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    label
}

/// Number of connected components (0 for the empty graph).
pub fn num_components(g: &Graph) -> usize {
    connected_components(g)
        .iter()
        .map(|&l| l + 1)
        .max()
        .unwrap_or(0) as usize
}

/// Whether the graph is connected. The empty graph and singletons count as
/// connected (the simulator never routes on them anyway).
pub fn is_connected(g: &Graph) -> bool {
    num_components(g) <= 1
}

/// Whether the sub-vertex-set `mask` induces a connected subgraph of `g`.
/// An empty set is considered connected.
pub fn is_connected_within<G: Neighbors + ?Sized>(g: &G, mask: &[bool]) -> bool {
    let mut seen = vec![false; g.n()];
    let mut queue = VecDeque::new();
    is_connected_within_scratch(g, mask, &mut seen, &mut queue)
}

/// [`is_connected_within`] with caller-provided scratch (BFS visited flags
/// and queue), so hot loops can run the check allocation-free. The buffers
/// are cleared and resized internally; their contents on entry are ignored.
pub fn is_connected_within_scratch<G: Neighbors + ?Sized>(
    g: &G,
    mask: &[bool],
    seen: &mut Vec<bool>,
    queue: &mut VecDeque<NodeId>,
) -> bool {
    let Some(start) = mask.iter().position(|&b| b) else {
        return true;
    };
    seen.clear();
    seen.resize(g.n(), false);
    queue.clear();
    seen[start] = true;
    queue.push_back(start as NodeId);
    let mut count = 1usize;
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if mask[u as usize] && !seen[u as usize] {
                seen[u as usize] = true;
                count += 1;
                queue.push_back(u);
            }
        }
    }
    count == mask.iter().filter(|&&b| b).count()
}

/// The vertex set of the largest connected component, as a mask. Ties break
/// towards the component discovered first.
pub fn largest_component(g: &Graph) -> Vec<bool> {
    let labels = connected_components(g);
    let k = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
    let mut sizes = vec![0usize; k];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let best = (0..k).max_by_key(|&i| (sizes[i], std::cmp::Reverse(i))).unwrap_or(0);
    labels.iter().map(|&l| l as usize == best).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Graph::new(0)));
        assert_eq!(num_components(&Graph::new(0)), 0);
    }

    #[test]
    fn singleton_is_connected() {
        assert!(is_connected(&Graph::new(1)));
    }

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert!(!is_connected(&g));
        assert_eq!(num_components(&g), 2);
        let labels = connected_components(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let g = Graph::new(3);
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn largest_component_mask() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let mask = largest_component(&g);
        assert_eq!(mask, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn largest_component_tie_breaks_to_first() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mask = largest_component(&g);
        assert_eq!(mask, vec![true, true, false, false]);
    }

    #[test]
    fn connected_within_subset() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(is_connected_within(&g, &[true, true, true, false, false]));
        // {0, 2} is not connected within g (1 is excluded).
        assert!(!is_connected_within(&g, &[true, false, true, false, false]));
        assert!(is_connected_within(&g, &[false; 5]));
        assert!(is_connected_within(&g, &[false, false, true, false, false]));
    }
}
