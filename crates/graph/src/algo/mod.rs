//! Graph algorithms used across the PACDS workspace.

pub mod bfs;
pub mod components;
pub mod paths;
pub mod structure;

pub use bfs::{bfs_distances, bfs_parents, eccentricity};
pub use components::{
    connected_components, is_connected, is_connected_within, is_connected_within_scratch,
    largest_component, num_components,
};
pub use paths::{diameter, restricted_shortest_path, shortest_path, PathError};
pub use structure::{articulation_points, bridges};
