//! Graph generators.
//!
//! [`unit_disk`] is the paper's network model: hosts within mutual
//! transmission range are connected. The deterministic families exist for
//! tests, and [`gnp`] provides a non-geometric random baseline.

use crate::{CsrGraph, Graph, NodeId};
use pacds_geom::{Point2, Rect, SpatialGrid, EPS};
use rand::Rng;

/// Builds the unit-disk graph of `points` with transmission radius `radius`
/// inside `bounds`, using a spatial grid (O(n + m) expected).
///
/// ```
/// use pacds_geom::{Point2, Rect};
/// use pacds_graph::gen::unit_disk;
/// let pts = [Point2::new(0.0, 0.0), Point2::new(20.0, 0.0), Point2::new(60.0, 0.0)];
/// let g = unit_disk(Rect::paper_arena(), 25.0, &pts);
/// assert!(g.has_edge(0, 1) && !g.has_edge(0, 2));
/// ```
pub fn unit_disk(bounds: Rect, radius: f64, points: &[Point2]) -> Graph {
    let mut g = Graph::new(points.len());
    if points.is_empty() {
        return g;
    }
    let grid = SpatialGrid::build(bounds, radius, points);
    for (i, &p) in points.iter().enumerate() {
        grid.for_each_within(p, radius, i, |j| {
            if i < j {
                g.add_edge(i as NodeId, j as NodeId);
            }
        });
    }
    g
}

/// Reusable scratch buffers for [`unit_disk_csr`]: the counting-sort cell
/// index (starts / cursor / item arrays). One instance amortises all grid
/// allocations across the update intervals of a Monte-Carlo run.
#[derive(Debug, Clone, Default)]
pub struct UnitDiskScratch {
    starts: Vec<u32>,
    cursor: Vec<u32>,
    items: Vec<u32>,
}

impl UnitDiskScratch {
    /// Empty scratch; buffers grow to their high-water mark on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Builds the unit-disk graph of `points` straight into CSR form, skipping
/// the intermediate adjacency-list [`Graph`] entirely.
///
/// Produces exactly the edge set of [`unit_disk`] (same clamped binning,
/// same rim-inclusive `r² + EPS` test), written into `out` with rows sorted
/// ascending. Vertices flagged in `off` (switched-off hosts) are isolated:
/// they keep their slot but contribute no edges in either direction.
///
/// All storage is taken from `out` and `scratch`; once both have reached
/// their high-water capacity, a call performs **zero heap allocations** —
/// this is the interval-loop entry point of the zero-allocation hot path.
///
/// # Panics
/// Panics if `radius <= 0` or `off` has the wrong length.
pub fn unit_disk_csr(
    bounds: Rect,
    radius: f64,
    points: &[Point2],
    off: Option<&[bool]>,
    out: &mut CsrGraph,
    scratch: &mut UnitDiskScratch,
) {
    assert!(radius > 0.0, "transmission radius must be positive");
    if let Some(off) = off {
        assert_eq!(off.len(), points.len(), "off-mask length must equal point count");
    }
    let n = points.len();
    let (offsets, targets) = out.parts_mut();
    offsets.clear();
    targets.clear();
    offsets.reserve(n + 1);
    offsets.push(0);
    if n == 0 {
        return;
    }

    // Counting-sort binning, replicating SpatialGrid::build semantics:
    // cells of side `radius`, out-of-bounds points clamped for binning only.
    let cell = radius;
    let nx = (bounds.width() / cell).ceil().max(1.0) as usize;
    let ny = (bounds.height() / cell).ceil().max(1.0) as usize;
    let ncells = nx * ny;
    let is_off = |i: usize| off.is_some_and(|o| o[i]);
    let cell_of = |p: Point2| -> usize {
        let q = bounds.clamp(p);
        let cx = (((q.x - bounds.x0) / cell) as usize).min(nx - 1);
        let cy = (((q.y - bounds.y0) / cell) as usize).min(ny - 1);
        cy * nx + cx
    };

    let UnitDiskScratch {
        starts,
        cursor,
        items,
    } = scratch;
    starts.clear();
    starts.resize(ncells + 1, 0);
    for (i, &p) in points.iter().enumerate() {
        if !is_off(i) {
            starts[cell_of(p) + 1] += 1;
        }
    }
    for c in 0..ncells {
        starts[c + 1] += starts[c];
    }
    cursor.clear();
    cursor.extend_from_slice(starts);
    items.clear();
    items.resize(starts[ncells] as usize, 0);
    for (i, &p) in points.iter().enumerate() {
        if is_off(i) {
            continue;
        }
        let c = cell_of(p);
        items[cursor[c] as usize] = i as u32;
        cursor[c] += 1;
    }

    // Fill pass: scan the 3x3 cell block around each live vertex, pushing
    // hits into the shared target array, then sort that row in place
    // (sort_unstable on a slice allocates nothing).
    let r2 = radius * radius + EPS;
    for (i, &p) in points.iter().enumerate() {
        let row_start = targets.len();
        if !is_off(i) {
            let q = bounds.clamp(p);
            let cx = (((q.x - bounds.x0) / cell) as usize).min(nx - 1);
            let cy = (((q.y - bounds.y0) / cell) as usize).min(ny - 1);
            // The up-to-three cells of each grid row are consecutive cell
            // indices, so their binned items form one contiguous slice.
            let (xlo, xhi) = (cx.saturating_sub(1), (cx + 1).min(nx - 1));
            let (ylo, yhi) = (cy.saturating_sub(1), (cy + 1).min(ny - 1));
            for y in ylo..=yhi {
                let lo = starts[y * nx + xlo] as usize;
                let hi = starts[y * nx + xhi + 1] as usize;
                for &j in &items[lo..hi] {
                    if j as usize != i && points[j as usize].distance2(p) <= r2 {
                        targets.push(j);
                    }
                }
            }
            targets[row_start..].sort_unstable();
        }
        offsets.push(targets.len() as u32);
    }
}

/// Brute-force unit-disk graph (O(n^2)); reference implementation for tests.
pub fn unit_disk_naive(radius: f64, points: &[Point2]) -> Graph {
    let mut g = Graph::new(points.len());
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            if points[i].within(points[j], radius) {
                g.add_edge(i as NodeId, j as NodeId);
            }
        }
    }
    g
}

/// Quasi unit-disk graph: pairs within `r_min` are always connected, pairs
/// beyond `r_max` never, and in between the link exists with probability
/// falling linearly from 1 (at `r_min`) to 0 (at `r_max`) — a standard
/// model of radio irregularity. `r_min = r_max` degenerates to the exact
/// unit-disk graph.
pub fn quasi_unit_disk<R: Rng + ?Sized>(
    rng: &mut R,
    bounds: Rect,
    r_min: f64,
    r_max: f64,
    points: &[Point2],
) -> Graph {
    assert!(0.0 < r_min && r_min <= r_max, "need 0 < r_min <= r_max");
    let mut g = Graph::new(points.len());
    if points.is_empty() {
        return g;
    }
    let grid = SpatialGrid::build(bounds, r_max, points);
    // Collect candidate pairs first so the RNG consumption order is
    // deterministic in (i, j) order regardless of grid iteration details.
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..points.len() {
        grid.for_each_within(points[i], r_max, i, |j| {
            if i < j {
                candidates.push((i, j, points[i].distance(points[j])));
            }
        });
    }
    candidates.sort_unstable_by_key(|a| (a.0, a.1));
    for (i, j, d) in candidates {
        let p = if d <= r_min {
            1.0
        } else {
            (r_max - d) / (r_max - r_min)
        };
        if p >= 1.0 || rng.random_range(0.0..1.0) < p {
            g.add_edge(i as NodeId, j as NodeId);
        }
    }
    g
}

/// Erdős–Rényi G(n, p).
pub fn gnp<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as NodeId {
        for v in u + 1..n as NodeId {
            if rng.random_range(0.0..1.0) < p {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A connected G(n, p): re-samples until connected (up to `max_tries`), then
/// falls back to threading a random spanning path through the last sample.
pub fn connected_gnp<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64, max_tries: usize) -> Graph {
    for _ in 0..max_tries {
        let g = gnp(rng, n, p);
        if crate::algo::is_connected(&g) {
            return g;
        }
    }
    let mut g = gnp(rng, n, p);
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    // Fisher-Yates shuffle for a random spanning path.
    for i in (1..n).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    for w in order.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    g
}

/// Path graph `0 - 1 - ... - n-1`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n as NodeId {
        g.add_edge(v - 1, v);
    }
    g
}

/// Cycle graph on `n >= 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_edge(0, n as NodeId - 1);
    g
}

/// Star graph: vertex 0 adjacent to all others.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n as NodeId {
        g.add_edge(0, v);
    }
    g
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as NodeId {
        for v in u + 1..n as NodeId {
            g.add_edge(u, v);
        }
    }
    g
}

/// `rows x cols` grid graph (4-neighbour lattice).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use pacds_geom::placement;
    use rand::SeedableRng;

    #[test]
    fn unit_disk_matches_naive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        for n in [0usize, 1, 2, 30, 120] {
            let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), n);
            let fast = unit_disk(Rect::paper_arena(), 25.0, &pts);
            let slow = unit_disk_naive(25.0, &pts);
            assert_eq!(fast, slow, "n={n}");
        }
    }

    #[test]
    fn unit_disk_csr_matches_unit_disk() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(35);
        let mut out = CsrGraph::new();
        let mut scratch = UnitDiskScratch::new();
        for n in [0usize, 1, 2, 30, 120, 300] {
            let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), n);
            unit_disk_csr(Rect::paper_arena(), 25.0, &pts, None, &mut out, &mut scratch);
            let reference = CsrGraph::from(&unit_disk(Rect::paper_arena(), 25.0, &pts));
            assert_eq!(out, reference, "n={n}");
        }
    }

    #[test]
    fn unit_disk_csr_off_mask_isolates_hosts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(36);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 90);
        let mut off = vec![false; 90];
        for i in [0usize, 13, 13, 44, 89] {
            off[i] = true;
        }
        let mut out = CsrGraph::new();
        let mut scratch = UnitDiskScratch::new();
        unit_disk_csr(Rect::paper_arena(), 25.0, &pts, Some(&off), &mut out, &mut scratch);
        let mut reference = unit_disk(Rect::paper_arena(), 25.0, &pts);
        for (i, &o) in off.iter().enumerate() {
            if o {
                reference.isolate(i as NodeId);
            }
        }
        assert_eq!(out, CsrGraph::from(&reference));
        assert_eq!(out.degree(13), 0);
    }

    #[test]
    fn unit_disk_csr_scratch_reuse_across_varied_sizes() {
        // Alternating sizes must not leave stale cells/items behind.
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let mut out = CsrGraph::new();
        let mut scratch = UnitDiskScratch::new();
        for n in [200usize, 10, 150, 1, 80] {
            let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), n);
            unit_disk_csr(Rect::paper_arena(), 25.0, &pts, None, &mut out, &mut scratch);
            assert_eq!(
                out,
                CsrGraph::from(&unit_disk(Rect::paper_arena(), 25.0, &pts)),
                "n={n}"
            );
        }
    }

    #[test]
    fn unit_disk_csr_out_of_bounds_points() {
        // Clamped binning must still find true-coordinate neighbours.
        let pts = vec![Point2::new(-5.0, 50.0), Point2::new(3.0, 50.0)];
        let mut out = CsrGraph::new();
        unit_disk_csr(
            Rect::paper_arena(),
            25.0,
            &pts,
            None,
            &mut out,
            &mut UnitDiskScratch::new(),
        );
        assert!(out.has_edge(0, 1));
    }

    #[test]
    fn unit_disk_edges_respect_radius() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(24.0, 0.0),
            Point2::new(50.0, 0.0),
        ];
        let g = unit_disk(Rect::paper_arena(), 25.0, &pts);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2)); // distance 26 > 25
    }

    #[test]
    fn unit_disk_rim_distance() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(25.0, 0.0)];
        let g = unit_disk(Rect::paper_arena(), 25.0, &pts);
        assert!(g.has_edge(0, 1), "rim distance is inclusive");
    }

    #[test]
    fn quasi_udg_degenerates_to_udg() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 50);
        let q = quasi_unit_disk(&mut rng, Rect::paper_arena(), 25.0, 25.0, &pts);
        let u = unit_disk(Rect::paper_arena(), 25.0, &pts);
        assert_eq!(q, u);
    }

    #[test]
    fn quasi_udg_respects_the_bands() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 80);
        let g = quasi_unit_disk(&mut rng, Rect::paper_arena(), 15.0, 30.0, &pts);
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                let d = pts[i].distance(pts[j]);
                let e = g.has_edge(i as NodeId, j as NodeId);
                if d <= 15.0 {
                    assert!(e, "certain band must connect ({i},{j}) at {d}");
                }
                if d > 30.0 {
                    assert!(!e, "outside r_max must not connect ({i},{j}) at {d}");
                }
            }
        }
        // The probabilistic band should produce a mix (statistically).
        let inner = unit_disk_naive(15.0, &pts).m();
        let outer = unit_disk_naive(30.0, &pts).m();
        assert!(g.m() > inner && g.m() < outer);
    }

    #[test]
    fn quasi_udg_is_deterministic_per_seed() {
        let pts = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(46);
            placement::uniform_points(&mut rng, Rect::paper_arena(), 40)
        };
        let a = quasi_unit_disk(
            &mut rand::rngs::StdRng::seed_from_u64(9),
            Rect::paper_arena(),
            15.0,
            30.0,
            &pts,
        );
        let b = quasi_unit_disk(
            &mut rand::rngs::StdRng::seed_from_u64(9),
            Rect::paper_arena(),
            15.0,
            30.0,
            &pts,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(gnp(&mut rng, 10, 0.0).m(), 0);
        assert_eq!(gnp(&mut rng, 10, 1.0).m(), 45);
    }

    #[test]
    fn connected_gnp_is_connected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let g = connected_gnp(&mut rng, 25, 0.05, 5);
            assert!(algo::is_connected(&g));
        }
    }

    #[test]
    fn deterministic_families() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(star(5).m(), 4);
        assert_eq!(complete(5).m(), 10);
        assert!(complete(5).is_complete());
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal 3*3, vertical 2*4
        assert!(algo::is_connected(&g));
        assert_eq!(algo::diameter(&g), Some(5));
    }

    #[test]
    #[should_panic]
    fn tiny_cycle_panics() {
        cycle(2);
    }
}
