//! Graph generators.
//!
//! [`unit_disk`] is the paper's network model: hosts within mutual
//! transmission range are connected. The deterministic families exist for
//! tests, and [`gnp`] provides a non-geometric random baseline.

use crate::{CsrGraph, Graph, NodeId};
use pacds_geom::{Point2, Rect, SpatialGrid, EPS};
use rand::Rng;

/// Builds the unit-disk graph of `points` with transmission radius `radius`
/// inside `bounds`, using a spatial grid (O(n + m) expected).
///
/// ```
/// use pacds_geom::{Point2, Rect};
/// use pacds_graph::gen::unit_disk;
/// let pts = [Point2::new(0.0, 0.0), Point2::new(20.0, 0.0), Point2::new(60.0, 0.0)];
/// let g = unit_disk(Rect::paper_arena(), 25.0, &pts);
/// assert!(g.has_edge(0, 1) && !g.has_edge(0, 2));
/// ```
pub fn unit_disk(bounds: Rect, radius: f64, points: &[Point2]) -> Graph {
    let mut g = Graph::new(points.len());
    if points.is_empty() {
        return g;
    }
    let grid = SpatialGrid::build(bounds, radius, points);
    for (i, &p) in points.iter().enumerate() {
        grid.for_each_within(p, radius, i, |j| {
            if i < j {
                g.add_edge(i as NodeId, j as NodeId);
            }
        });
    }
    g
}

/// Reusable scratch buffers for [`unit_disk_csr`]: the counting-sort cell
/// index (starts / cursor / item arrays). One instance amortises all grid
/// allocations across the update intervals of a Monte-Carlo run.
#[derive(Debug, Clone, Default)]
pub struct UnitDiskScratch {
    starts: Vec<u32>,
    cursor: Vec<u32>,
    items: Vec<u32>,
}

impl UnitDiskScratch {
    /// Empty scratch; buffers grow to their high-water mark on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Builds the unit-disk graph of `points` straight into CSR form, skipping
/// the intermediate adjacency-list [`Graph`] entirely.
///
/// Produces exactly the edge set of [`unit_disk`] (same clamped binning,
/// same rim-inclusive `r² + EPS` test), written into `out` with rows sorted
/// ascending. Vertices flagged in `off` (switched-off hosts) are isolated:
/// they keep their slot but contribute no edges in either direction.
///
/// All storage is taken from `out` and `scratch`; once both have reached
/// their high-water capacity, a call performs **zero heap allocations** —
/// this is the interval-loop entry point of the zero-allocation hot path.
///
/// # Panics
/// Panics if `radius <= 0` or `off` has the wrong length.
pub fn unit_disk_csr(
    bounds: Rect,
    radius: f64,
    points: &[Point2],
    off: Option<&[bool]>,
    out: &mut CsrGraph,
    scratch: &mut UnitDiskScratch,
) {
    assert!(radius > 0.0, "transmission radius must be positive");
    if let Some(off) = off {
        assert_eq!(off.len(), points.len(), "off-mask length must equal point count");
    }
    let n = points.len();
    let (offsets, targets) = out.parts_mut();
    offsets.clear();
    targets.clear();
    offsets.reserve(n + 1);
    offsets.push(0);
    if n == 0 {
        return;
    }

    // Counting-sort binning, replicating SpatialGrid::build semantics:
    // cells of side `radius`, out-of-bounds points clamped for binning only.
    let cell = radius;
    let nx = (bounds.width() / cell).ceil().max(1.0) as usize;
    let ny = (bounds.height() / cell).ceil().max(1.0) as usize;
    let ncells = nx * ny;
    let is_off = |i: usize| off.is_some_and(|o| o[i]);
    let cell_of = |p: Point2| -> usize {
        let q = bounds.clamp(p);
        let cx = (((q.x - bounds.x0) / cell) as usize).min(nx - 1);
        let cy = (((q.y - bounds.y0) / cell) as usize).min(ny - 1);
        cy * nx + cx
    };

    let UnitDiskScratch {
        starts,
        cursor,
        items,
    } = scratch;
    starts.clear();
    starts.resize(ncells + 1, 0);
    for (i, &p) in points.iter().enumerate() {
        if !is_off(i) {
            starts[cell_of(p) + 1] += 1;
        }
    }
    for c in 0..ncells {
        starts[c + 1] += starts[c];
    }
    cursor.clear();
    cursor.extend_from_slice(starts);
    items.clear();
    items.resize(starts[ncells] as usize, 0);
    for (i, &p) in points.iter().enumerate() {
        if is_off(i) {
            continue;
        }
        let c = cell_of(p);
        items[cursor[c] as usize] = i as u32;
        cursor[c] += 1;
    }

    // Fill pass: scan the 3x3 cell block around each live vertex, pushing
    // hits into the shared target array, then sort that row in place
    // (sort_unstable on a slice allocates nothing).
    let r2 = radius * radius + EPS;
    for (i, &p) in points.iter().enumerate() {
        let row_start = targets.len();
        if !is_off(i) {
            let q = bounds.clamp(p);
            let cx = (((q.x - bounds.x0) / cell) as usize).min(nx - 1);
            let cy = (((q.y - bounds.y0) / cell) as usize).min(ny - 1);
            // The up-to-three cells of each grid row are consecutive cell
            // indices, so their binned items form one contiguous slice.
            let (xlo, xhi) = (cx.saturating_sub(1), (cx + 1).min(nx - 1));
            let (ylo, yhi) = (cy.saturating_sub(1), (cy + 1).min(ny - 1));
            for y in ylo..=yhi {
                let lo = starts[y * nx + xlo] as usize;
                let hi = starts[y * nx + xhi + 1] as usize;
                for &j in &items[lo..hi] {
                    if j as usize != i && points[j as usize].distance2(p) <= r2 {
                        targets.push(j);
                    }
                }
            }
            targets[row_start..].sort_unstable();
        }
        offsets.push(targets.len() as u32);
    }
}

/// A retained grid partition of a point set into rectangular tiles — the
/// ownership structure of the sharded CDS engine and the streaming
/// large-`n` unit-disk construction path ([`unit_disk_csr_subset`] builds
/// each tile's CSR directly, so the whole-graph adjacency never
/// materialises).
///
/// The partition domain is the bounding box of `bounds` *and* every point,
/// so out-of-bounds points (which [`unit_disk_csr`] bins by clamping) are
/// owned by a real tile and the halo-gathering distance argument stays
/// exact. Points are bucketed by counting sort in id order, so
/// [`TilePartition::owned`] lists are always ascending.
///
/// All buffers are retained: once warm, [`TilePartition::build`] and
/// [`TilePartition::gather_expanded`] perform zero heap allocations.
#[derive(Debug, Clone, Default)]
pub struct TilePartition {
    tx: usize,
    ty: usize,
    x0: f64,
    y0: f64,
    w: f64,
    h: f64,
    starts: Vec<u32>,
    cursor: Vec<u32>,
    items: Vec<u32>,
}

impl TilePartition {
    /// An empty partition; buffers grow to their high-water mark on use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tile index along one axis; saturating at the edges, whole axis when
    /// the domain is degenerate.
    #[inline]
    fn axis_tile(c: f64, lo: f64, span: f64, k: usize) -> usize {
        if span <= 0.0 {
            return 0;
        }
        // Casting a negative f64 to usize saturates to 0.
        (((c - lo) / span * k as f64) as usize).min(k - 1)
    }

    /// Partitions `points` into a `tx` x `ty` tile grid covering `bounds`
    /// expanded to the points' bounding box.
    ///
    /// # Panics
    /// Panics if `tx` or `ty` is zero.
    pub fn build(&mut self, bounds: Rect, tx: usize, ty: usize, points: &[Point2]) {
        assert!(tx >= 1 && ty >= 1, "tile grid must be at least 1x1");
        let (mut x0, mut y0, mut x1, mut y1) = (bounds.x0, bounds.y0, bounds.x1, bounds.y1);
        for p in points {
            x0 = x0.min(p.x);
            y0 = y0.min(p.y);
            x1 = x1.max(p.x);
            y1 = y1.max(p.y);
        }
        self.tx = tx;
        self.ty = ty;
        self.x0 = x0;
        self.y0 = y0;
        self.w = x1 - x0;
        self.h = y1 - y0;
        let (w, h) = (self.w, self.h);
        let ncells = tx * ty;
        let tile_of = |p: &Point2| -> usize {
            Self::axis_tile(p.y, y0, h, ty) * tx + Self::axis_tile(p.x, x0, w, tx)
        };
        self.starts.clear();
        self.starts.resize(ncells + 1, 0);
        for p in points {
            self.starts[tile_of(p) + 1] += 1;
        }
        for c in 0..ncells {
            self.starts[c + 1] += self.starts[c];
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.starts);
        self.items.clear();
        self.items.resize(points.len(), 0);
        for (i, p) in points.iter().enumerate() {
            let c = tile_of(p);
            self.items[self.cursor[c] as usize] = i as u32;
            self.cursor[c] += 1;
        }
    }

    /// Number of tiles (`tx * ty`).
    #[inline]
    pub fn tiles(&self) -> usize {
        self.tx * self.ty
    }

    /// The point ids owned by tile `t`, ascending.
    #[inline]
    pub fn owned(&self, t: usize) -> &[u32] {
        let lo = self.starts[t] as usize;
        let hi = self.starts[t + 1] as usize;
        &self.items[lo..hi]
    }

    /// Tile `t`'s rectangle as `(x0, y0, x1, y1)` (possibly degenerate).
    fn tile_span(&self, t: usize) -> (f64, f64, f64, f64) {
        let cx = (t % self.tx) as f64;
        let cy = (t / self.tx) as f64;
        let (tx, ty) = (self.tx as f64, self.ty as f64);
        (
            self.x0 + self.w * cx / tx,
            self.y0 + self.h * cy / ty,
            self.x0 + self.w * (cx + 1.0) / tx,
            self.y0 + self.h * (cy + 1.0) / ty,
        )
    }

    /// Collects into `out` (ascending) every point within distance `margin`
    /// of tile `t`'s rectangle — a superset of the points reachable from
    /// tile `t` in `h` hops when `margin >= h * sqrt(radius^2 + EPS)`. The
    /// test is slightly inflated so binning round-off can only widen the
    /// set (supersets are always safe halos).
    pub fn gather_expanded(&self, t: usize, margin: f64, points: &[Point2], out: &mut Vec<u32>) {
        out.clear();
        let (rx0, ry0, rx1, ry1) = self.tile_span(t);
        let m = margin * (1.0 + 1e-12) + 1e-9;
        let m2 = m * m;
        let cx_lo = Self::axis_tile(rx0 - m, self.x0, self.w, self.tx);
        let cx_hi = Self::axis_tile(rx1 + m, self.x0, self.w, self.tx);
        let cy_lo = Self::axis_tile(ry0 - m, self.y0, self.h, self.ty);
        let cy_hi = Self::axis_tile(ry1 + m, self.y0, self.h, self.ty);
        for cy in cy_lo..=cy_hi {
            // Contiguous tile indices per grid row: one slice of items.
            let lo = self.starts[cy * self.tx + cx_lo] as usize;
            let hi = self.starts[cy * self.tx + cx_hi + 1] as usize;
            for &i in &self.items[lo..hi] {
                let p = points[i as usize];
                let dx = (rx0 - p.x).max(p.x - rx1).max(0.0);
                let dy = (ry0 - p.y).max(p.y - ry1).max(0.0);
                if dx * dx + dy * dy <= m2 {
                    out.push(i);
                }
            }
        }
        out.sort_unstable();
    }
}

/// Builds the unit-disk graph **induced by `subset`** straight into CSR
/// form, with local vertex `i` standing for point `subset[i]`.
///
/// Uses the same rim-inclusive `r² + EPS` test as [`unit_disk`] /
/// [`unit_disk_csr`], binned over the subset's own bounding box, so the
/// result is exactly the subgraph of the global unit-disk graph induced by
/// `subset` (relabelled). Rows are sorted ascending in local ids; when
/// `subset` is ascending, local order therefore agrees with global id
/// order. This is the per-tile step of the streaming large-`n` build: the
/// whole-graph adjacency is never materialised.
///
/// All storage comes from `out` and `scratch`; zero heap allocations once
/// both are warm.
///
/// # Panics
/// Panics if `radius <= 0` or `subset` indexes out of `points`.
pub fn unit_disk_csr_subset(
    radius: f64,
    points: &[Point2],
    subset: &[u32],
    out: &mut CsrGraph,
    scratch: &mut UnitDiskScratch,
) {
    assert!(radius > 0.0, "transmission radius must be positive");
    let n = subset.len();
    let (offsets, targets) = out.parts_mut();
    offsets.clear();
    targets.clear();
    offsets.reserve(n + 1);
    offsets.push(0);
    if n == 0 {
        return;
    }

    let (mut x0, mut y0, mut x1, mut y1) = (f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
    for &i in subset {
        let p = points[i as usize];
        x0 = x0.min(p.x);
        y0 = y0.min(p.y);
        x1 = x1.max(p.x);
        y1 = y1.max(p.y);
    }
    let cell = radius;
    let nx = ((x1 - x0) / cell).ceil().max(1.0) as usize;
    let ny = ((y1 - y0) / cell).ceil().max(1.0) as usize;
    let ncells = nx * ny;
    let cell_xy = |p: Point2| -> (usize, usize) {
        (
            (((p.x - x0) / cell) as usize).min(nx - 1),
            (((p.y - y0) / cell) as usize).min(ny - 1),
        )
    };

    let UnitDiskScratch {
        starts,
        cursor,
        items,
    } = scratch;
    starts.clear();
    starts.resize(ncells + 1, 0);
    for &i in subset {
        let (cx, cy) = cell_xy(points[i as usize]);
        starts[cy * nx + cx + 1] += 1;
    }
    for c in 0..ncells {
        starts[c + 1] += starts[c];
    }
    cursor.clear();
    cursor.extend_from_slice(starts);
    items.clear();
    items.resize(n, 0);
    for (li, &i) in subset.iter().enumerate() {
        let (cx, cy) = cell_xy(points[i as usize]);
        let c = cy * nx + cx;
        items[cursor[c] as usize] = li as u32;
        cursor[c] += 1;
    }

    let r2 = radius * radius + EPS;
    for (li, &i) in subset.iter().enumerate() {
        let row_start = targets.len();
        let p = points[i as usize];
        let (cx, cy) = cell_xy(p);
        let (xlo, xhi) = (cx.saturating_sub(1), (cx + 1).min(nx - 1));
        let (ylo, yhi) = (cy.saturating_sub(1), (cy + 1).min(ny - 1));
        for y in ylo..=yhi {
            let lo = starts[y * nx + xlo] as usize;
            let hi = starts[y * nx + xhi + 1] as usize;
            for &lj in &items[lo..hi] {
                if lj as usize != li && points[subset[lj as usize] as usize].distance2(p) <= r2 {
                    targets.push(lj);
                }
            }
        }
        targets[row_start..].sort_unstable();
        offsets.push(targets.len() as u32);
    }
}

/// Brute-force unit-disk graph (O(n^2)); reference implementation for tests.
pub fn unit_disk_naive(radius: f64, points: &[Point2]) -> Graph {
    let mut g = Graph::new(points.len());
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            if points[i].within(points[j], radius) {
                g.add_edge(i as NodeId, j as NodeId);
            }
        }
    }
    g
}

/// Quasi unit-disk graph: pairs within `r_min` are always connected, pairs
/// beyond `r_max` never, and in between the link exists with probability
/// falling linearly from 1 (at `r_min`) to 0 (at `r_max`) — a standard
/// model of radio irregularity. `r_min = r_max` degenerates to the exact
/// unit-disk graph.
pub fn quasi_unit_disk<R: Rng + ?Sized>(
    rng: &mut R,
    bounds: Rect,
    r_min: f64,
    r_max: f64,
    points: &[Point2],
) -> Graph {
    assert!(0.0 < r_min && r_min <= r_max, "need 0 < r_min <= r_max");
    let mut g = Graph::new(points.len());
    if points.is_empty() {
        return g;
    }
    let grid = SpatialGrid::build(bounds, r_max, points);
    // Collect candidate pairs first so the RNG consumption order is
    // deterministic in (i, j) order regardless of grid iteration details.
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..points.len() {
        grid.for_each_within(points[i], r_max, i, |j| {
            if i < j {
                candidates.push((i, j, points[i].distance(points[j])));
            }
        });
    }
    candidates.sort_unstable_by_key(|a| (a.0, a.1));
    for (i, j, d) in candidates {
        let p = if d <= r_min {
            1.0
        } else {
            (r_max - d) / (r_max - r_min)
        };
        if p >= 1.0 || rng.random_range(0.0..1.0) < p {
            g.add_edge(i as NodeId, j as NodeId);
        }
    }
    g
}

/// Erdős–Rényi G(n, p).
pub fn gnp<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as NodeId {
        for v in u + 1..n as NodeId {
            if rng.random_range(0.0..1.0) < p {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A connected G(n, p): re-samples until connected (up to `max_tries`), then
/// falls back to threading a random spanning path through the last sample.
pub fn connected_gnp<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64, max_tries: usize) -> Graph {
    for _ in 0..max_tries {
        let g = gnp(rng, n, p);
        if crate::algo::is_connected(&g) {
            return g;
        }
    }
    let mut g = gnp(rng, n, p);
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    // Fisher-Yates shuffle for a random spanning path.
    for i in (1..n).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    for w in order.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    g
}

/// Path graph `0 - 1 - ... - n-1`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n as NodeId {
        g.add_edge(v - 1, v);
    }
    g
}

/// Cycle graph on `n >= 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_edge(0, n as NodeId - 1);
    g
}

/// Star graph: vertex 0 adjacent to all others.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n as NodeId {
        g.add_edge(0, v);
    }
    g
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as NodeId {
        for v in u + 1..n as NodeId {
            g.add_edge(u, v);
        }
    }
    g
}

/// `rows x cols` grid graph (4-neighbour lattice).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use pacds_geom::placement;
    use rand::SeedableRng;

    #[test]
    fn unit_disk_matches_naive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        for n in [0usize, 1, 2, 30, 120] {
            let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), n);
            let fast = unit_disk(Rect::paper_arena(), 25.0, &pts);
            let slow = unit_disk_naive(25.0, &pts);
            assert_eq!(fast, slow, "n={n}");
        }
    }

    #[test]
    fn unit_disk_csr_matches_unit_disk() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(35);
        let mut out = CsrGraph::new();
        let mut scratch = UnitDiskScratch::new();
        for n in [0usize, 1, 2, 30, 120, 300] {
            let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), n);
            unit_disk_csr(Rect::paper_arena(), 25.0, &pts, None, &mut out, &mut scratch);
            let reference = CsrGraph::from(&unit_disk(Rect::paper_arena(), 25.0, &pts));
            assert_eq!(out, reference, "n={n}");
        }
    }

    #[test]
    fn unit_disk_csr_off_mask_isolates_hosts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(36);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 90);
        let mut off = vec![false; 90];
        for i in [0usize, 13, 13, 44, 89] {
            off[i] = true;
        }
        let mut out = CsrGraph::new();
        let mut scratch = UnitDiskScratch::new();
        unit_disk_csr(Rect::paper_arena(), 25.0, &pts, Some(&off), &mut out, &mut scratch);
        let mut reference = unit_disk(Rect::paper_arena(), 25.0, &pts);
        for (i, &o) in off.iter().enumerate() {
            if o {
                reference.isolate(i as NodeId);
            }
        }
        assert_eq!(out, CsrGraph::from(&reference));
        assert_eq!(out.degree(13), 0);
    }

    #[test]
    fn unit_disk_csr_scratch_reuse_across_varied_sizes() {
        // Alternating sizes must not leave stale cells/items behind.
        let mut rng = rand::rngs::StdRng::seed_from_u64(37);
        let mut out = CsrGraph::new();
        let mut scratch = UnitDiskScratch::new();
        for n in [200usize, 10, 150, 1, 80] {
            let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), n);
            unit_disk_csr(Rect::paper_arena(), 25.0, &pts, None, &mut out, &mut scratch);
            assert_eq!(
                out,
                CsrGraph::from(&unit_disk(Rect::paper_arena(), 25.0, &pts)),
                "n={n}"
            );
        }
    }

    #[test]
    fn unit_disk_csr_out_of_bounds_points() {
        // Clamped binning must still find true-coordinate neighbours.
        let pts = vec![Point2::new(-5.0, 50.0), Point2::new(3.0, 50.0)];
        let mut out = CsrGraph::new();
        unit_disk_csr(
            Rect::paper_arena(),
            25.0,
            &pts,
            None,
            &mut out,
            &mut UnitDiskScratch::new(),
        );
        assert!(out.has_edge(0, 1));
    }

    #[test]
    fn tile_partition_covers_every_point_once_and_ascending() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 250);
        let mut part = TilePartition::new();
        for (tx, ty) in [(1, 1), (2, 1), (2, 2), (4, 4), (5, 3)] {
            part.build(Rect::paper_arena(), tx, ty, &pts);
            assert_eq!(part.tiles(), tx * ty);
            let mut seen = vec![false; pts.len()];
            for t in 0..part.tiles() {
                let owned = part.owned(t);
                assert!(owned.windows(2).all(|w| w[0] < w[1]), "owned ascending");
                for &i in owned {
                    assert!(!seen[i as usize], "point {i} owned twice");
                    seen[i as usize] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "every point owned ({tx}x{ty})");
        }
    }

    #[test]
    fn tile_partition_handles_out_of_bounds_and_degenerate_points() {
        // Points outside the bounds and all-identical points must still be
        // partitioned (domain expands to the point bbox; degenerate spans
        // collapse to tile 0 on that axis).
        let pts = vec![
            Point2::new(-40.0, 50.0),
            Point2::new(150.0, 50.0),
            Point2::new(50.0, 50.0),
        ];
        let mut part = TilePartition::new();
        part.build(Rect::paper_arena(), 4, 4, &pts);
        let total: usize = (0..part.tiles()).map(|t| part.owned(t).len()).sum();
        assert_eq!(total, 3);
        let same = vec![Point2::new(7.0, 7.0); 5];
        part.build(Rect::new(6.9, 6.9, 7.1, 7.1), 3, 3, &same);
        let total: usize = (0..part.tiles()).map(|t| part.owned(t).len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn gather_expanded_is_the_margin_neighbourhood() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(52);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 300);
        let mut part = TilePartition::new();
        part.build(Rect::paper_arena(), 3, 3, &pts);
        let margin = 2.0 * 25.0;
        let mut out = Vec::new();
        for t in 0..part.tiles() {
            part.gather_expanded(t, margin, &pts, &mut out);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "gathered ascending");
            // Superset of the owned points.
            for &i in part.owned(t) {
                assert!(out.binary_search(&i).is_ok(), "tile {t} lost owned {i}");
            }
            // Everything within margin of an owned point is gathered
            // (owned points sit inside the tile, so a point within margin
            // of one is within margin of the tile rectangle).
            for &i in part.owned(t) {
                for (j, &q) in pts.iter().enumerate() {
                    if pts[i as usize].distance(q) <= margin {
                        assert!(
                            out.binary_search(&(j as u32)).is_ok(),
                            "tile {t}: {j} is within margin of owned {i} but not gathered"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unit_disk_csr_subset_is_the_induced_subgraph() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(53);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 200);
        let reference = unit_disk(Rect::paper_arena(), 25.0, &pts);
        let mut out = CsrGraph::new();
        let mut scratch = UnitDiskScratch::new();
        // A few subsets: empty, singleton, every third point, everything.
        let subsets: Vec<Vec<u32>> = vec![
            vec![],
            vec![17],
            (0..200u32).step_by(3).collect(),
            (0..200u32).collect(),
        ];
        for subset in &subsets {
            unit_disk_csr_subset(25.0, &pts, subset, &mut out, &mut scratch);
            assert_eq!(out.n(), subset.len());
            for (li, &gi) in subset.iter().enumerate() {
                let expected: Vec<u32> = subset
                    .iter()
                    .enumerate()
                    .filter(|&(lj, &gj)| lj != li && reference.has_edge(gi, gj))
                    .map(|(lj, _)| lj as u32)
                    .collect();
                assert_eq!(out.neighbors(li as NodeId), &expected[..], "local {li}");
            }
        }
    }

    #[test]
    fn streaming_per_tile_csr_matches_whole_graph_rows() {
        // The streaming large-n path: partition + per-tile induced CSR with
        // a one-hop margin must reproduce every owned row of the reference
        // whole-graph build — the whole adjacency is never materialised.
        let mut rng = rand::rngs::StdRng::seed_from_u64(54);
        for n in [40usize, 300, 800] {
            let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), n);
            let mut whole = CsrGraph::new();
            let mut scratch = UnitDiskScratch::new();
            unit_disk_csr(Rect::paper_arena(), 25.0, &pts, None, &mut whole, &mut scratch);
            let mut part = TilePartition::new();
            part.build(Rect::paper_arena(), 2, 2, &pts);
            let margin = (25.0f64 * 25.0 + pacds_geom::EPS).sqrt();
            let (mut locals, mut tile_csr) = (Vec::new(), CsrGraph::new());
            for t in 0..part.tiles() {
                part.gather_expanded(t, margin, &pts, &mut locals);
                unit_disk_csr_subset(25.0, &pts, &locals, &mut tile_csr, &mut scratch);
                for &g in part.owned(t) {
                    let li = locals.binary_search(&g).unwrap();
                    let row: Vec<u32> = tile_csr
                        .neighbors(li as NodeId)
                        .iter()
                        .map(|&lj| locals[lj as usize])
                        .collect();
                    assert_eq!(row, whole.neighbors(g), "n={n} tile={t} node={g}");
                }
            }
        }
    }

    #[test]
    fn unit_disk_edges_respect_radius() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(24.0, 0.0),
            Point2::new(50.0, 0.0),
        ];
        let g = unit_disk(Rect::paper_arena(), 25.0, &pts);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2)); // distance 26 > 25
    }

    #[test]
    fn unit_disk_rim_distance() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(25.0, 0.0)];
        let g = unit_disk(Rect::paper_arena(), 25.0, &pts);
        assert!(g.has_edge(0, 1), "rim distance is inclusive");
    }

    #[test]
    fn quasi_udg_degenerates_to_udg() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 50);
        let q = quasi_unit_disk(&mut rng, Rect::paper_arena(), 25.0, 25.0, &pts);
        let u = unit_disk(Rect::paper_arena(), 25.0, &pts);
        assert_eq!(q, u);
    }

    #[test]
    fn quasi_udg_respects_the_bands() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 80);
        let g = quasi_unit_disk(&mut rng, Rect::paper_arena(), 15.0, 30.0, &pts);
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                let d = pts[i].distance(pts[j]);
                let e = g.has_edge(i as NodeId, j as NodeId);
                if d <= 15.0 {
                    assert!(e, "certain band must connect ({i},{j}) at {d}");
                }
                if d > 30.0 {
                    assert!(!e, "outside r_max must not connect ({i},{j}) at {d}");
                }
            }
        }
        // The probabilistic band should produce a mix (statistically).
        let inner = unit_disk_naive(15.0, &pts).m();
        let outer = unit_disk_naive(30.0, &pts).m();
        assert!(g.m() > inner && g.m() < outer);
    }

    #[test]
    fn quasi_udg_is_deterministic_per_seed() {
        let pts = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(46);
            placement::uniform_points(&mut rng, Rect::paper_arena(), 40)
        };
        let a = quasi_unit_disk(
            &mut rand::rngs::StdRng::seed_from_u64(9),
            Rect::paper_arena(),
            15.0,
            30.0,
            &pts,
        );
        let b = quasi_unit_disk(
            &mut rand::rngs::StdRng::seed_from_u64(9),
            Rect::paper_arena(),
            15.0,
            30.0,
            &pts,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(gnp(&mut rng, 10, 0.0).m(), 0);
        assert_eq!(gnp(&mut rng, 10, 1.0).m(), 45);
    }

    #[test]
    fn connected_gnp_is_connected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let g = connected_gnp(&mut rng, 25, 0.05, 5);
            assert!(algo::is_connected(&g));
        }
    }

    #[test]
    fn deterministic_families() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(star(5).m(), 4);
        assert_eq!(complete(5).m(), 10);
        assert!(complete(5).is_complete());
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal 3*3, vertical 2*4
        assert!(algo::is_connected(&g));
        assert_eq!(algo::diameter(&g), Some(5));
    }

    #[test]
    #[should_panic]
    fn tiny_cycle_panics() {
        cycle(2);
    }
}
