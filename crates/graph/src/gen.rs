//! Graph generators.
//!
//! [`unit_disk`] is the paper's network model: hosts within mutual
//! transmission range are connected. The deterministic families exist for
//! tests, and [`gnp`] provides a non-geometric random baseline.

use crate::{Graph, NodeId};
use pacds_geom::{Point2, Rect, SpatialGrid};
use rand::Rng;

/// Builds the unit-disk graph of `points` with transmission radius `radius`
/// inside `bounds`, using a spatial grid (O(n + m) expected).
///
/// ```
/// use pacds_geom::{Point2, Rect};
/// use pacds_graph::gen::unit_disk;
/// let pts = [Point2::new(0.0, 0.0), Point2::new(20.0, 0.0), Point2::new(60.0, 0.0)];
/// let g = unit_disk(Rect::paper_arena(), 25.0, &pts);
/// assert!(g.has_edge(0, 1) && !g.has_edge(0, 2));
/// ```
pub fn unit_disk(bounds: Rect, radius: f64, points: &[Point2]) -> Graph {
    let mut g = Graph::new(points.len());
    if points.is_empty() {
        return g;
    }
    let grid = SpatialGrid::build(bounds, radius, points);
    for (i, &p) in points.iter().enumerate() {
        grid.for_each_within(p, radius, i, |j| {
            if i < j {
                g.add_edge(i as NodeId, j as NodeId);
            }
        });
    }
    g
}

/// Brute-force unit-disk graph (O(n^2)); reference implementation for tests.
pub fn unit_disk_naive(radius: f64, points: &[Point2]) -> Graph {
    let mut g = Graph::new(points.len());
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            if points[i].within(points[j], radius) {
                g.add_edge(i as NodeId, j as NodeId);
            }
        }
    }
    g
}

/// Quasi unit-disk graph: pairs within `r_min` are always connected, pairs
/// beyond `r_max` never, and in between the link exists with probability
/// falling linearly from 1 (at `r_min`) to 0 (at `r_max`) — a standard
/// model of radio irregularity. `r_min = r_max` degenerates to the exact
/// unit-disk graph.
pub fn quasi_unit_disk<R: Rng + ?Sized>(
    rng: &mut R,
    bounds: Rect,
    r_min: f64,
    r_max: f64,
    points: &[Point2],
) -> Graph {
    assert!(0.0 < r_min && r_min <= r_max, "need 0 < r_min <= r_max");
    let mut g = Graph::new(points.len());
    if points.is_empty() {
        return g;
    }
    let grid = SpatialGrid::build(bounds, r_max, points);
    // Collect candidate pairs first so the RNG consumption order is
    // deterministic in (i, j) order regardless of grid iteration details.
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..points.len() {
        grid.for_each_within(points[i], r_max, i, |j| {
            if i < j {
                candidates.push((i, j, points[i].distance(points[j])));
            }
        });
    }
    candidates.sort_unstable_by_key(|a| (a.0, a.1));
    for (i, j, d) in candidates {
        let p = if d <= r_min {
            1.0
        } else {
            (r_max - d) / (r_max - r_min)
        };
        if p >= 1.0 || rng.random_range(0.0..1.0) < p {
            g.add_edge(i as NodeId, j as NodeId);
        }
    }
    g
}

/// Erdős–Rényi G(n, p).
pub fn gnp<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as NodeId {
        for v in u + 1..n as NodeId {
            if rng.random_range(0.0..1.0) < p {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A connected G(n, p): re-samples until connected (up to `max_tries`), then
/// falls back to threading a random spanning path through the last sample.
pub fn connected_gnp<R: Rng + ?Sized>(rng: &mut R, n: usize, p: f64, max_tries: usize) -> Graph {
    for _ in 0..max_tries {
        let g = gnp(rng, n, p);
        if crate::algo::is_connected(&g) {
            return g;
        }
    }
    let mut g = gnp(rng, n, p);
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    // Fisher-Yates shuffle for a random spanning path.
    for i in (1..n).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    for w in order.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    g
}

/// Path graph `0 - 1 - ... - n-1`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n as NodeId {
        g.add_edge(v - 1, v);
    }
    g
}

/// Cycle graph on `n >= 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_edge(0, n as NodeId - 1);
    g
}

/// Star graph: vertex 0 adjacent to all others.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n as NodeId {
        g.add_edge(0, v);
    }
    g
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n as NodeId {
        for v in u + 1..n as NodeId {
            g.add_edge(u, v);
        }
    }
    g
}

/// `rows x cols` grid graph (4-neighbour lattice).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use pacds_geom::placement;
    use rand::SeedableRng;

    #[test]
    fn unit_disk_matches_naive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        for n in [0usize, 1, 2, 30, 120] {
            let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), n);
            let fast = unit_disk(Rect::paper_arena(), 25.0, &pts);
            let slow = unit_disk_naive(25.0, &pts);
            assert_eq!(fast, slow, "n={n}");
        }
    }

    #[test]
    fn unit_disk_edges_respect_radius() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(24.0, 0.0),
            Point2::new(50.0, 0.0),
        ];
        let g = unit_disk(Rect::paper_arena(), 25.0, &pts);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2)); // distance 26 > 25
    }

    #[test]
    fn unit_disk_rim_distance() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(25.0, 0.0)];
        let g = unit_disk(Rect::paper_arena(), 25.0, &pts);
        assert!(g.has_edge(0, 1), "rim distance is inclusive");
    }

    #[test]
    fn quasi_udg_degenerates_to_udg() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 50);
        let q = quasi_unit_disk(&mut rng, Rect::paper_arena(), 25.0, 25.0, &pts);
        let u = unit_disk(Rect::paper_arena(), 25.0, &pts);
        assert_eq!(q, u);
    }

    #[test]
    fn quasi_udg_respects_the_bands() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(45);
        let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), 80);
        let g = quasi_unit_disk(&mut rng, Rect::paper_arena(), 15.0, 30.0, &pts);
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                let d = pts[i].distance(pts[j]);
                let e = g.has_edge(i as NodeId, j as NodeId);
                if d <= 15.0 {
                    assert!(e, "certain band must connect ({i},{j}) at {d}");
                }
                if d > 30.0 {
                    assert!(!e, "outside r_max must not connect ({i},{j}) at {d}");
                }
            }
        }
        // The probabilistic band should produce a mix (statistically).
        let inner = unit_disk_naive(15.0, &pts).m();
        let outer = unit_disk_naive(30.0, &pts).m();
        assert!(g.m() > inner && g.m() < outer);
    }

    #[test]
    fn quasi_udg_is_deterministic_per_seed() {
        let pts = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(46);
            placement::uniform_points(&mut rng, Rect::paper_arena(), 40)
        };
        let a = quasi_unit_disk(
            &mut rand::rngs::StdRng::seed_from_u64(9),
            Rect::paper_arena(),
            15.0,
            30.0,
            &pts,
        );
        let b = quasi_unit_disk(
            &mut rand::rngs::StdRng::seed_from_u64(9),
            Rect::paper_arena(),
            15.0,
            30.0,
            &pts,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(gnp(&mut rng, 10, 0.0).m(), 0);
        assert_eq!(gnp(&mut rng, 10, 1.0).m(), 45);
    }

    #[test]
    fn connected_gnp_is_connected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let g = connected_gnp(&mut rng, 25, 0.05, 5);
            assert!(algo::is_connected(&g));
        }
    }

    #[test]
    fn deterministic_families() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(star(5).m(), 4);
        assert_eq!(complete(5).m(), 10);
        assert!(complete(5).is_complete());
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal 3*3, vertical 2*4
        assert!(algo::is_connected(&g));
        assert_eq!(algo::diameter(&g), Some(5));
    }

    #[test]
    #[should_panic]
    fn tiny_cycle_panics() {
        cycle(2);
    }
}
