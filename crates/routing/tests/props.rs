//! Property-based tests for dominating-set routing.

use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy};
use pacds_graph::{algo, gen, Graph, NodeId};
use pacds_routing::{backbone_robustness, flood_cost, route, stretch_summary, RoutingState};
use proptest::prelude::*;
use rand::SeedableRng;

/// A connected unit-disk graph at paper parameters.
fn connected_udg() -> impl Strategy<Value = Graph> {
    (5usize..60, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bounds = pacds_geom::Rect::paper_arena();
        let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, n);
        let g = gen::unit_disk(bounds, 25.0, &pts);
        let keep = algo::largest_component(&g);
        g.induced(&keep).0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    #[test]
    fn every_pair_routes_and_walks_are_valid(g in connected_udg()) {
        let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Degree));
        let state = RoutingState::build(&g, &cds);
        let n = g.n() as NodeId;
        for s in 0..n {
            for t in 0..n {
                let path = route(&g, &state, s, t);
                prop_assert!(path.is_ok(), "{s}->{t}: {path:?}");
                let path = path.unwrap();
                prop_assert_eq!(path.first(), Some(&s));
                prop_assert_eq!(path.last(), Some(&t));
                prop_assert!(path.windows(2).all(|w| g.has_edge(w[0], w[1])));
                // Routes never revisit a host.
                let uniq: std::collections::HashSet<_> = path.iter().collect();
                prop_assert_eq!(uniq.len(), path.len());
            }
        }
    }

    #[test]
    fn stretch_is_never_negative_and_failures_zero(g in connected_udg()) {
        for policy in [Policy::NoPruning, Policy::Id, Policy::Degree] {
            let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(policy));
            let state = RoutingState::build(&g, &cds);
            let s = stretch_summary(&g, &state);
            prop_assert_eq!(s.failures, 0, "{:?}", policy);
            prop_assert!(s.mean_extra_hops >= 0.0);
            prop_assert!(s.optimal_fraction >= 0.0 && s.optimal_fraction <= 1.0);
        }
    }

    #[test]
    fn cds_flood_covers_the_component_from_any_source(g in connected_udg()) {
        let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Id));
        let blind = flood_cost(&g, 0, None);
        let overlay = flood_cost(&g, 0, Some(&cds));
        prop_assert_eq!(blind.reached, g.n() - 1);
        prop_assert_eq!(overlay.reached, g.n() - 1);
        prop_assert!(overlay.transmissions <= blind.transmissions);
        // Gateway-only floods may be deeper but never shallower than the
        // eccentricity of the source.
        prop_assert!(overlay.depth >= blind.depth);
    }

    #[test]
    fn robustness_report_is_consistent(g in connected_udg()) {
        let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Degree));
        let r = backbone_robustness(&g, &cds);
        prop_assert_eq!(r.gateways, cds.iter().filter(|&&b| b).count());
        prop_assert!((0.0..=1.0).contains(&r.spof_fraction));
        prop_assert!(r.backbone_cut_vertices.iter().all(|&v| cds[v as usize]));
        prop_assert!(r.sole_dominators.iter().all(|&v| cds[v as usize]));
        prop_assert!(r.backbone_cut_vertices.len() + r.sole_dominators.len()
            >= (r.spof_fraction * r.gateways as f64).round() as usize);
    }

    #[test]
    fn tables_agree_with_restricted_bfs(g in connected_udg()) {
        if g.n() <= 35 {
            let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Id));
            let state = RoutingState::build(&g, &cds);
            prop_assert!(pacds_routing::tables::tables_consistent(&g, &state));
        }
    }
}
