//! Pins the paper's broadcast claim over the whole adversarial corpus:
//! gateway-relayed flooding never transmits more than blind flooding,
//! and on connected graphs it loses no coverage.
//!
//! This is the routing-crate half of the broadcast story; the dataplane's
//! conformance suite separately pins its batched [`FloodEngine`] to
//! [`flood_cost`] exactly.
//!
//! [`FloodEngine`]: ../../dataplane/src/flood.rs

use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy};
use pacds_graph::NodeId;
use pacds_routing::flood_cost;
use pacds_testkit::corpus;

#[test]
fn gateway_flood_never_exceeds_blind_flood_on_the_corpus() {
    let mut cases = corpus::named_families();
    cases.extend(corpus::random_unit_disk_cases(0xB10D, 26));
    let mut checked = 0usize;
    for case in &cases {
        let g = &case.graph;
        if g.n() == 0 {
            continue;
        }
        for policy in [Policy::Degree, Policy::Energy, Policy::Id] {
            let cds = compute_cds(
                &CdsInput::with_energy(g, &case.energy),
                &CdsConfig::policy(policy),
            );
            for src in 0..g.n() as NodeId {
                let blind = flood_cost(g, src, None);
                let gateway = flood_cost(g, src, Some(&cds));
                assert!(
                    gateway.transmissions <= blind.transmissions,
                    "{} {policy:?} src={src}: gateway {} > blind {}",
                    case.name,
                    gateway.transmissions,
                    blind.transmissions
                );
                if case.connected {
                    assert_eq!(
                        gateway.reached, blind.reached,
                        "{} {policy:?} src={src}: gateway flood lost coverage",
                        case.name
                    );
                    assert!(
                        gateway.depth >= blind.depth,
                        "{} {policy:?} src={src}: relay restriction cannot shorten paths",
                        case.name
                    );
                }
            }
        }
        checked += 1;
    }
    assert!(checked >= 40, "corpus shrank? only {checked} cases checked");
}

/// Blind flooding makes every reached host transmit; on a connected graph
/// that is exactly `n` transmissions and the gateway saving is therefore
/// `(n - 1 - gateways_downstream) / n` — the corpus-wide sanity bound
/// that the per-topology pins in `tests/paper_examples.rs` instantiate.
#[test]
fn blind_flood_transmission_count_is_the_host_count_when_connected() {
    let mut cases = corpus::named_families();
    cases.extend(corpus::random_unit_disk_cases(0xB11D, 13));
    for case in &cases {
        let g = &case.graph;
        if !case.connected || g.n() == 0 {
            continue;
        }
        let blind = flood_cost(g, 0, None);
        assert_eq!(blind.transmissions, g.n(), "{}", case.name);
        assert_eq!(blind.reached, g.n() - 1, "{}", case.name);
    }
}
