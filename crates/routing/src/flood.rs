//! Broadcast/flood cost — the motivation for dominating-set-based routing.
//!
//! On-demand route discovery floods a request through the network. With
//! blind flooding every host retransmits once; with a CDS overlay only
//! gateway hosts retransmit, and domination guarantees every host still
//! hears the request. [`flood_cost`] simulates both and counts
//! transmissions, making the paper's "reduced searching space" claim
//! measurable.

use pacds_graph::{Graph, NodeId};
use serde::Serialize;
use std::collections::VecDeque;

/// Outcome of one flood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct FloodCost {
    /// Hosts that transmitted (the source always transmits once).
    pub transmissions: usize,
    /// Hosts that received the message (excluding the source).
    pub reached: usize,
    /// Maximum hop count at which a host first received the message.
    pub depth: u32,
}

/// Simulates a flood from `source`. A host retransmits the first time it
/// receives the message iff `relays` marks it (the source always
/// transmits; `None` = blind flooding, everyone relays).
///
/// ```
/// use pacds_graph::gen;
/// use pacds_routing::flood_cost;
/// let g = gen::star(6);
/// // Only the hub relays: one transmission from the hub floods everyone.
/// let relays = vec![true, false, false, false, false, false];
/// let c = flood_cost(&g, 0, Some(&relays));
/// assert_eq!((c.transmissions, c.reached), (1, 5));
/// ```
pub fn flood_cost(g: &Graph, source: NodeId, relays: Option<&[bool]>) -> FloodCost {
    let n = g.n();
    assert!((source as usize) < n, "source out of range");
    if let Some(r) = relays {
        assert_eq!(r.len(), n);
    }
    let mut received = vec![false; n];
    let mut depth = vec![0u32; n];
    let mut transmissions = 0usize;
    let mut queue = VecDeque::new();

    // The source transmits unconditionally.
    queue.push_back(source);
    let mut transmitted = vec![false; n];
    transmitted[source as usize] = true;

    while let Some(v) = queue.pop_front() {
        transmissions += 1;
        for &u in g.neighbors(v) {
            if u == source || received[u as usize] {
                continue;
            }
            received[u as usize] = true;
            depth[u as usize] = depth[v as usize] + 1;
            let is_relay = relays.is_none_or(|r| r[u as usize]);
            if is_relay && !transmitted[u as usize] {
                transmitted[u as usize] = true;
                queue.push_back(u);
            }
        }
    }

    FloodCost {
        transmissions,
        reached: received.iter().filter(|&&b| b).count(),
        depth: depth.into_iter().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy};
    use pacds_graph::gen;
    use rand::SeedableRng;

    #[test]
    fn blind_flood_reaches_everyone_with_n_transmissions() {
        let g = gen::cycle(8);
        let c = flood_cost(&g, 0, None);
        assert_eq!(c.reached, 7);
        // Everyone relays except possibly the last hosts to hear (a cycle:
        // all transmit).
        assert_eq!(c.transmissions, 8);
        assert_eq!(c.depth, 4);
    }

    #[test]
    fn cds_flood_still_reaches_everyone_cheaper() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let bounds = pacds_geom::Rect::paper_arena();
        for _ in 0..10 {
            let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, 60);
            let full = gen::unit_disk(bounds, 25.0, &pts);
            let keep = pacds_graph::algo::largest_component(&full);
            let (g, _) = full.induced(&keep);
            if g.n() < 10 {
                continue;
            }
            let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Degree));
            let blind = flood_cost(&g, 0, None);
            let overlay = flood_cost(&g, 0, Some(&cds));
            assert_eq!(blind.reached, g.n() - 1);
            assert_eq!(
                overlay.reached,
                g.n() - 1,
                "domination guarantees full coverage"
            );
            assert!(
                overlay.transmissions < blind.transmissions,
                "gateway flood must be cheaper: {} vs {}",
                overlay.transmissions,
                blind.transmissions
            );
        }
    }

    #[test]
    fn flood_depth_on_a_path() {
        let g = gen::path(6);
        let c = flood_cost(&g, 0, None);
        assert_eq!(c.depth, 5);
        assert_eq!(c.reached, 5);
    }

    #[test]
    fn non_relay_neighbors_receive_but_do_not_forward() {
        // Star: leaves never relay, but the centre's single transmission
        // reaches them all.
        let g = gen::star(6);
        let relays = vec![true, false, false, false, false, false];
        let from_center = flood_cost(&g, 0, Some(&relays));
        assert_eq!(from_center.transmissions, 1);
        assert_eq!(from_center.reached, 5);
        // From a leaf, the centre relays once: 2 transmissions total.
        let from_leaf = flood_cost(&g, 3, Some(&relays));
        assert_eq!(from_leaf.transmissions, 2);
        assert_eq!(from_leaf.reached, 5);
    }

    #[test]
    fn disconnected_source_component_only() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        let c = flood_cost(&g, 0, None);
        assert_eq!(c.reached, 1);
    }
}
