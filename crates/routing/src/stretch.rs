//! Path-stretch analysis of dominating-set-based routing.
//!
//! Property 3 guarantees that the *marking* output preserves shortest
//! paths exactly; after pruning, a route through the gateway overlay may be
//! longer than the true shortest path. These helpers quantify that cost.

use crate::tables::{route, RoutingState};
use pacds_graph::{algo, Graph, NodeId};
use serde::Serialize;

/// Stretch of one pair: routed hops minus shortest hops (`None` when either
/// path does not exist).
pub fn stretch(g: &Graph, state: &RoutingState, src: NodeId, dst: NodeId) -> Option<u32> {
    let routed = route(g, state, src, dst).ok()?;
    let shortest = algo::shortest_path(g, src, dst).ok()?;
    Some((routed.len() - shortest.len()) as u32)
}

/// Aggregate stretch over all ordered reachable pairs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StretchSummary {
    /// Pairs successfully routed.
    pub pairs: usize,
    /// Pairs where routing failed although a path exists in `g`.
    pub failures: usize,
    /// Mean additive stretch (extra hops) over routed pairs.
    pub mean_extra_hops: f64,
    /// Maximum additive stretch observed.
    pub max_extra_hops: u32,
    /// Fraction of routed pairs with zero extra hops.
    pub optimal_fraction: f64,
}

/// Computes the [`StretchSummary`] over every ordered pair of distinct
/// vertices connected in `g`.
pub fn stretch_summary(g: &Graph, state: &RoutingState) -> StretchSummary {
    let mut pairs = 0usize;
    let mut failures = 0usize;
    let mut total_extra = 0u64;
    let mut max_extra = 0u32;
    let mut optimal = 0usize;
    for s in g.vertices() {
        let dist = algo::bfs_distances(g, s);
        for t in g.vertices() {
            if s == t || dist[t as usize] == u32::MAX {
                continue;
            }
            match route(g, state, s, t) {
                Ok(path) => {
                    let extra = (path.len() as u32 - 1) - dist[t as usize];
                    pairs += 1;
                    total_extra += u64::from(extra);
                    max_extra = max_extra.max(extra);
                    if extra == 0 {
                        optimal += 1;
                    }
                }
                Err(_) => failures += 1,
            }
        }
    }
    StretchSummary {
        pairs,
        failures,
        mean_extra_hops: if pairs == 0 {
            0.0
        } else {
            total_extra as f64 / pairs as f64
        },
        max_extra_hops: max_extra,
        optimal_fraction: if pairs == 0 {
            0.0
        } else {
            optimal as f64 / pairs as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::{compute_cds, marking, CdsConfig, CdsInput, Policy};
    use pacds_graph::gen;
    use rand::SeedableRng;

    #[test]
    fn marking_output_has_low_stretch_on_paths() {
        let g = gen::path(8);
        let m = marking(&g);
        let state = RoutingState::build(&g, &m);
        let s = stretch_summary(&g, &state);
        assert_eq!(s.failures, 0);
        assert_eq!(s.max_extra_hops, 0, "path marking keeps all interior vertices");
        assert_eq!(s.optimal_fraction, 1.0);
    }

    #[test]
    fn stretch_counts_detours() {
        // Cycle C6 with gateways forced to one arc: pairs across the gap
        // must detour the long way round.
        let g = gen::cycle(6);
        let state = RoutingState::build(&g, &[true, true, true, true, false, false]);
        let s = stretch_summary(&g, &state);
        assert_eq!(s.failures, 0);
        assert!(s.max_extra_hops >= 2, "detour must cost extra hops: {s:?}");
        assert!(s.mean_extra_hops > 0.0);
        assert!(s.optimal_fraction < 1.0);
    }

    #[test]
    fn single_pair_stretch() {
        let g = gen::cycle(6);
        let state = RoutingState::build(&g, &[true, true, true, true, false, false]);
        // 4 -> 5 is a direct edge: stretch 0.
        assert_eq!(stretch(&g, &state, 4, 5), Some(0));
        // 3 -> 5: shortest 3-4-5 (2 hops); routed 3-2-1-0-5 (4 hops): +2.
        assert_eq!(stretch(&g, &state, 3, 5), Some(2));
    }

    #[test]
    fn pruned_cds_keeps_stretch_bounded_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let g = gen::connected_gnp(&mut rng, 30, 0.15, 8);
            if g.is_complete() {
                continue;
            }
            let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Id));
            let state = RoutingState::build(&g, &cds);
            let s = stretch_summary(&g, &state);
            assert_eq!(s.failures, 0, "CDS routing must reach every pair");
            // Entering and leaving the overlay costs at most 2 extra hops
            // beyond the overlay's own detour; sanity-bound the mean.
            assert!(s.mean_extra_hops <= 4.0, "{s:?}");
        }
    }
}
