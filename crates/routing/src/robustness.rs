//! Robustness analysis of a gateway backbone.
//!
//! Smaller backbones route with less state, but concentrate failure risk:
//! a gateway that is an articulation point of the induced backbone — or
//! the sole dominator of some host — is a single point of failure. This
//! module scores a gateway set on both axes, quantifying the
//! size-vs-resilience trade-off the paper's conclusion alludes to
//! ("trade offs are possible by increasing the size of the connected
//! dominating set...").

use pacds_graph::{algo, Graph, NodeId};
use serde::Serialize;

/// Robustness report for one gateway set.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RobustnessReport {
    /// Number of gateways.
    pub gateways: usize,
    /// Gateways whose removal disconnects the remaining backbone.
    pub backbone_cut_vertices: Vec<NodeId>,
    /// Bridge links of the backbone.
    pub backbone_bridges: usize,
    /// Gateways that are the *only* dominator of some non-gateway host.
    pub sole_dominators: Vec<NodeId>,
    /// Fraction of gateways that are a single point of failure (union of
    /// the two criteria above).
    pub spof_fraction: f64,
}

/// Analyses the backbone induced by `gateways` in `g`.
pub fn backbone_robustness(g: &Graph, gateways: &[bool]) -> RobustnessReport {
    assert_eq!(gateways.len(), g.n());
    let (backbone, old_of) = g.induced(gateways);
    let cuts = algo::articulation_points(&backbone);
    let backbone_cut_vertices: Vec<NodeId> = cuts
        .iter()
        .enumerate()
        .filter(|&(_i, &c)| c).map(|(i, &_c)| old_of[i])
        .collect();
    let backbone_bridges = algo::bridges(&backbone).len();

    // Sole dominators: for each non-gateway host with exactly one gateway
    // neighbour, that gateway is critical for domination.
    let mut sole = std::collections::BTreeSet::new();
    for v in g.vertices() {
        if gateways[v as usize] {
            continue;
        }
        let mut dominators = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| gateways[u as usize]);
        if let (Some(only), None) = (dominators.next(), dominators.next()) {
            sole.insert(only);
        }
    }
    let sole_dominators: Vec<NodeId> = sole.into_iter().collect();

    let gateway_count = old_of.len();
    let spof: std::collections::BTreeSet<NodeId> = backbone_cut_vertices
        .iter()
        .chain(sole_dominators.iter())
        .copied()
        .collect();
    RobustnessReport {
        gateways: gateway_count,
        backbone_cut_vertices,
        backbone_bridges,
        sole_dominators,
        spof_fraction: if gateway_count == 0 {
            0.0
        } else {
            spof.len() as f64 / gateway_count as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy};
    use pacds_graph::gen;
    use rand::SeedableRng;

    #[test]
    fn path_backbone_is_maximally_fragile() {
        let g = gen::path(6);
        // Gateways = interior vertices 1..4 (the marking output).
        let gw = pacds_core::marking(&g);
        let r = backbone_robustness(&g, &gw);
        assert_eq!(r.gateways, 4);
        // Interior of the backbone path: 2 and 3 are cut vertices.
        assert_eq!(r.backbone_cut_vertices, vec![2, 3]);
        assert_eq!(r.backbone_bridges, 3);
        // Ends 0 and 5 are dominated only by 1 and 4 respectively.
        assert_eq!(r.sole_dominators, vec![1, 4]);
        assert_eq!(r.spof_fraction, 1.0);
    }

    #[test]
    fn redundant_backbone_has_no_spof() {
        // C6 with all vertices as gateways: a cycle has no cut vertices and
        // no undominated hosts.
        let g = gen::cycle(6);
        let r = backbone_robustness(&g, &[true; 6]);
        assert!(r.backbone_cut_vertices.is_empty());
        assert_eq!(r.backbone_bridges, 0);
        assert!(r.sole_dominators.is_empty());
        assert_eq!(r.spof_fraction, 0.0);
    }

    #[test]
    fn empty_gateway_set() {
        let g = gen::complete(4);
        let r = backbone_robustness(&g, &[false; 4]);
        assert_eq!(r.gateways, 0);
        assert_eq!(r.spof_fraction, 0.0);
    }

    #[test]
    fn pruning_increases_fragility_on_average() {
        // The size-vs-resilience trade-off: the pruned backbone should have
        // at least the SPOF fraction of the raw marking.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let bounds = pacds_geom::Rect::paper_arena();
        let mut pruned_worse = 0;
        let mut trials = 0;
        for _ in 0..20 {
            let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, 50);
            let full = gen::unit_disk(bounds, 25.0, &pts);
            let keep = algo::largest_component(&full);
            let (g, _) = full.induced(&keep);
            if g.n() < 10 {
                continue;
            }
            trials += 1;
            let nr = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::NoPruning));
            let nd = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Degree));
            let r_nr = backbone_robustness(&g, &nr);
            let r_nd = backbone_robustness(&g, &nd);
            if r_nd.spof_fraction >= r_nr.spof_fraction {
                pruned_worse += 1;
            }
        }
        assert!(
            pruned_worse * 3 >= trials * 2,
            "pruned backbones should usually be more fragile ({pruned_worse}/{trials})"
        );
    }
}
