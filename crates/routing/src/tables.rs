//! Gateway tables and the three-step forwarding procedure.

use pacds_graph::{algo, Graph, NodeId};
use serde::Serialize;

/// Errors from the routing procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// An endpoint is out of range.
    OutOfRange,
    /// The source is a non-gateway with no adjacent gateway (the set does
    /// not dominate it).
    SourceNotDominated,
    /// The destination is a non-gateway with no adjacent gateway.
    DestinationNotDominated,
    /// No gateway-only path connects the source and destination gateways
    /// (the gateway set is disconnected, or empty on a non-trivial graph).
    GatewayPathMissing,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::OutOfRange => write!(f, "endpoint out of range"),
            RouteError::SourceNotDominated => write!(f, "source has no adjacent gateway"),
            RouteError::DestinationNotDominated => {
                write!(f, "destination has no adjacent gateway")
            }
            RouteError::GatewayPathMissing => write!(f, "gateway subgraph has no path"),
        }
    }
}

impl std::error::Error for RouteError {}

/// One gateway's routing-table entry (a row of Figure 2(c)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct GatewayEntry {
    /// The gateway host this entry describes.
    pub gateway: NodeId,
    /// Its domain membership list: adjacent non-gateway hosts.
    pub members: Vec<NodeId>,
    /// Hop distance from the owning gateway, within the gateway subgraph.
    pub distance: u32,
    /// Next gateway on a shortest gateway-only path (self for distance 0).
    pub next_hop: NodeId,
}

/// Routing state of the whole network under a fixed gateway set.
///
/// Holds, for every gateway, the gateway routing table of Figure 2 —
/// distances and next hops are all *within the induced gateway subgraph*,
/// because Step 2 of the procedure never leaves it.
#[derive(Debug, Clone)]
pub struct RoutingState {
    n: usize,
    gateway: Vec<bool>,
    /// Domain membership list per gateway (empty vec for non-gateways).
    members: Vec<Vec<NodeId>>,
    /// Gateway-subgraph hop distances: `dist[g][h]` for gateways g, h.
    /// Stored densely over all vertex ids for simplicity.
    dist: Vec<Vec<u32>>,
    /// Next hop towards each gateway, `next[g][h]`; `NodeId::MAX` when
    /// unreachable.
    next: Vec<Vec<NodeId>>,
}

impl RoutingState {
    /// Builds membership lists and gateway routing tables for `g` under the
    /// gateway mask `gateway`.
    ///
    /// ```
    /// use pacds_graph::Graph;
    /// use pacds_routing::{route, RoutingState};
    /// // Figure 1: u=0, v=1, w=2, x=3, y=4 with gateways {v, w}.
    /// let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
    /// let state = RoutingState::build(&g, &[false, true, true, false, false]);
    /// assert_eq!(route(&g, &state, 4, 3).unwrap(), vec![4, 1, 2, 3]);
    /// ```
    pub fn build(g: &Graph, gateway: &[bool]) -> Self {
        assert_eq!(gateway.len(), g.n());
        let n = g.n();

        // Membership lists: non-gateway hosts adjacent to each gateway.
        let mut members = vec![Vec::new(); n];
        for v in g.vertices() {
            if gateway[v as usize] {
                members[v as usize] = g
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| !gateway[u as usize])
                    .collect();
            }
        }

        // Gateway-only BFS from every gateway (Step 2 operates in G[V']).
        let mut dist = vec![Vec::new(); n];
        let mut next = vec![Vec::new(); n];
        for s in g.vertices() {
            if !gateway[s as usize] {
                continue;
            }
            let (d, parents) = gateway_bfs(g, gateway, s);
            // Convert parents (towards s) into next hops (from s): walk
            // back from each target.
            let mut nh = vec![NodeId::MAX; n];
            for t in g.vertices() {
                if d[t as usize] == u32::MAX || !gateway[t as usize] {
                    continue;
                }
                if t == s {
                    nh[t as usize] = s;
                    continue;
                }
                let mut cur = t;
                while parents[cur as usize] != s {
                    cur = parents[cur as usize];
                }
                nh[t as usize] = cur;
            }
            dist[s as usize] = d;
            next[s as usize] = nh;
        }

        Self {
            n,
            gateway: gateway.to_vec(),
            members,
            dist,
            next,
        }
    }

    /// Whether `v` is a gateway.
    pub fn is_gateway(&self, v: NodeId) -> bool {
        self.gateway[v as usize]
    }

    /// The gateway hosts.
    pub fn gateways(&self) -> Vec<NodeId> {
        pacds_graph::mask_to_vec(&self.gateway)
    }

    /// Domain membership list of gateway `v` (Figure 2(b)); empty for
    /// non-gateways.
    pub fn members(&self, v: NodeId) -> &[NodeId] {
        &self.members[v as usize]
    }

    /// The full gateway routing table stored at gateway `at` (Figure 2(c)).
    ///
    /// # Panics
    /// Panics if `at` is not a gateway.
    pub fn routing_table(&self, at: NodeId) -> Vec<GatewayEntry> {
        assert!(self.is_gateway(at), "host {at} is not a gateway");
        let d = &self.dist[at as usize];
        let nh = &self.next[at as usize];
        (0..self.n as NodeId)
            .filter(|&h| self.gateway[h as usize] && d[h as usize] != u32::MAX)
            .map(|h| GatewayEntry {
                gateway: h,
                members: self.members[h as usize].clone(),
                distance: d[h as usize],
                next_hop: nh[h as usize],
            })
            .collect()
    }

    /// The gateway whose domain contains non-gateway `v`, chosen as the
    /// smallest-id adjacent gateway; `None` if `v` is undominated.
    /// Gateways belong to themselves.
    pub fn gateway_of(&self, g: &Graph, v: NodeId) -> Option<NodeId> {
        if self.gateway[v as usize] {
            return Some(v);
        }
        g.neighbors(v)
            .iter()
            .copied()
            .find(|&u| self.gateway[u as usize])
    }

    /// Gateway-subgraph hop distance between two gateways.
    pub fn gateway_distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        if !self.is_gateway(a) || !self.is_gateway(b) {
            return None;
        }
        let d = self.dist[a as usize][b as usize];
        (d != u32::MAX).then_some(d)
    }
}

/// BFS restricted to gateway vertices, returning (distances, parents).
fn gateway_bfs(g: &Graph, gateway: &[bool], src: NodeId) -> (Vec<u32>, Vec<NodeId>) {
    let n = g.n();
    let mut d = vec![u32::MAX; n];
    let mut parent = vec![NodeId::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    d[src as usize] = 0;
    parent[src as usize] = src;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if gateway[u as usize] && d[u as usize] == u32::MAX {
                d[u as usize] = d[v as usize] + 1;
                parent[u as usize] = v;
                queue.push_back(u);
            }
        }
    }
    (d, parent)
}

/// Executes the paper's three-step routing procedure from `src` to `dst`,
/// returning the full hop sequence (inclusive of both endpoints).
///
/// * Step 1 — a non-gateway source hands the packet to its source gateway;
/// * Step 2 — the packet follows gateway routing tables through `G[V']`;
/// * Step 3 — the destination gateway delivers directly to the destination.
///
/// Direct neighbours short-circuit: if `dst ∈ N(src)` the packet is handed
/// over in one hop without entering the gateway overlay.
pub fn route(
    g: &Graph,
    state: &RoutingState,
    src: NodeId,
    dst: NodeId,
) -> Result<Vec<NodeId>, RouteError> {
    let n = g.n();
    if (src as usize) >= n || (dst as usize) >= n {
        return Err(RouteError::OutOfRange);
    }
    if src == dst {
        return Ok(vec![src]);
    }
    if g.has_edge(src, dst) {
        return Ok(vec![src, dst]);
    }

    let sg = state
        .gateway_of(g, src)
        .ok_or(RouteError::SourceNotDominated)?;
    let dg = state
        .gateway_of(g, dst)
        .ok_or(RouteError::DestinationNotDominated)?;

    // Step 2: walk the gateway tables from sg to dg.
    let mut path = Vec::new();
    path.push(src);
    if sg != src {
        path.push(sg);
    }
    if state.gateway_distance(sg, dg).is_none() {
        return Err(RouteError::GatewayPathMissing);
    }
    let mut cur = sg;
    while cur != dg {
        let nh = state.next[cur as usize][dg as usize];
        debug_assert_ne!(nh, NodeId::MAX);
        path.push(nh);
        cur = nh;
    }
    if dg != dst {
        path.push(dst);
    }
    Ok(path)
}

/// Validates that `path` is a walk in `g` (each consecutive pair adjacent).
pub fn is_valid_walk(g: &Graph, path: &[NodeId]) -> bool {
    path.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

/// Convenience: hop count of a routed path (`len - 1`).
pub fn hop_count(path: &[NodeId]) -> usize {
    path.len().saturating_sub(1)
}

/// Checks the routing tables against a freshly recomputed restricted BFS
/// (used by tests and the simulator's self-checks).
pub fn tables_consistent(g: &Graph, state: &RoutingState) -> bool {
    for a in g.vertices().filter(|&a| state.is_gateway(a)) {
        for b in g.vertices().filter(|&b| state.is_gateway(b)) {
            let expected =
                algo::restricted_shortest_path(g, a, b, |v| state.is_gateway(v)).ok();
            let table = state.gateway_distance(a, b);
            match (expected, table) {
                (None, None) => {}
                (Some(p), Some(d)) => {
                    if (p.len() - 1) as u32 != d {
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy};
    use pacds_graph::gen;
    use rand::SeedableRng;

    /// Figure 1's network: u=0, v=1, w=2, x=3, y=4; gateways {1, 2}.
    fn fig1() -> (Graph, RoutingState) {
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Id));
        let state = RoutingState::build(&g, &cds);
        (g, state)
    }

    #[test]
    fn membership_lists_partition_non_gateways() {
        let (_, state) = fig1();
        assert_eq!(state.members(1), &[0, 4]); // v's domain: u, y
        assert_eq!(state.members(2), &[3]); // w's domain: x
        assert!(state.members(0).is_empty());
    }

    #[test]
    fn routing_table_rows() {
        let (_, state) = fig1();
        let table = state.routing_table(1);
        assert_eq!(table.len(), 2); // entries for gateways 1 and 2
        let row2 = table.iter().find(|e| e.gateway == 2).unwrap();
        assert_eq!(row2.distance, 1);
        assert_eq!(row2.next_hop, 2);
        assert_eq!(row2.members, vec![3]);
    }

    #[test]
    #[should_panic]
    fn routing_table_at_non_gateway_panics() {
        let (_, state) = fig1();
        state.routing_table(0);
    }

    #[test]
    fn three_step_route_crosses_the_backbone() {
        let (g, state) = fig1();
        // y=4 to x=3: 4 -> 1 (source gateway) -> 2 (dest gateway) -> 3.
        let path = route(&g, &state, 4, 3).unwrap();
        assert_eq!(path, vec![4, 1, 2, 3]);
        assert!(is_valid_walk(&g, &path));
    }

    #[test]
    fn direct_neighbors_bypass_the_overlay() {
        let (g, state) = fig1();
        assert_eq!(route(&g, &state, 0, 4).unwrap(), vec![0, 4]);
        assert_eq!(route(&g, &state, 3, 3).unwrap(), vec![3]);
    }

    #[test]
    fn gateway_endpoints_skip_steps_one_or_three() {
        let (g, state) = fig1();
        assert_eq!(route(&g, &state, 1, 3).unwrap(), vec![1, 2, 3]);
        assert_eq!(route(&g, &state, 4, 2).unwrap(), vec![4, 1, 2]);
        assert_eq!(route(&g, &state, 1, 2).unwrap(), vec![1, 2]);
    }

    #[test]
    fn undominated_endpoints_error() {
        // 0-1-2 path plus isolated 3: empty-adjacent host.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let state = RoutingState::build(&g, &[false, true, false, false]);
        assert_eq!(route(&g, &state, 3, 0), Err(RouteError::SourceNotDominated));
        assert_eq!(
            route(&g, &state, 0, 3),
            Err(RouteError::DestinationNotDominated)
        );
        assert_eq!(route(&g, &state, 0, 9), Err(RouteError::OutOfRange));
    }

    #[test]
    fn disconnected_gateway_set_reports_missing_path() {
        // Path 0-1-2-3-4-5 with gateways {1, 4} (dominating 0..5 except 3? no:
        // 2 adj 1, 3 adj 4 — dominating but disconnected as a gateway set).
        let g = gen::path(6);
        let state = RoutingState::build(&g, &[false, true, false, false, true, false]);
        assert_eq!(route(&g, &state, 0, 5), Err(RouteError::GatewayPathMissing));
    }

    #[test]
    fn routes_are_valid_walks_on_random_unit_disks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let bounds = pacds_geom::Rect::paper_arena();
        for _ in 0..10 {
            let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, 40);
            let full = gen::unit_disk(bounds, 25.0, &pts);
            let keep = pacds_graph::algo::largest_component(&full);
            let (g, _) = full.induced(&keep);
            if g.n() < 3 || g.is_complete() {
                continue;
            }
            let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Degree));
            let state = RoutingState::build(&g, &cds);
            assert!(tables_consistent(&g, &state));
            for s in 0..g.n() as NodeId {
                for t in 0..g.n() as NodeId {
                    let path = route(&g, &state, s, t).unwrap();
                    assert!(is_valid_walk(&g, &path), "{s}->{t}: {path:?}");
                    assert_eq!(path.first(), Some(&s));
                    assert_eq!(path.last(), Some(&t));
                }
            }
        }
    }
}
