//! Gateway tables and the three-step forwarding procedure.

use pacds_graph::{algo, Graph, NodeId};
use serde::Serialize;

/// Errors from the routing procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// An endpoint is out of range.
    OutOfRange,
    /// The source is a non-gateway with no adjacent gateway (the set does
    /// not dominate it).
    SourceNotDominated,
    /// The destination is a non-gateway with no adjacent gateway.
    DestinationNotDominated,
    /// No gateway-only path connects the source and destination gateways
    /// (the gateway set is disconnected, or empty on a non-trivial graph).
    GatewayPathMissing,
    /// The tables reference a node that is no longer alive: a dead
    /// endpoint, a dead chosen gateway, or a dead next hop mid-path. The
    /// route was valid when the tables were built — the caller should
    /// rebuild them (e.g. after a churn refresh) and retry; this is the
    /// error the dataplane's NACK/retransmit path consumes.
    StaleGateway,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::OutOfRange => write!(f, "endpoint out of range"),
            RouteError::SourceNotDominated => write!(f, "source has no adjacent gateway"),
            RouteError::DestinationNotDominated => {
                write!(f, "destination has no adjacent gateway")
            }
            RouteError::GatewayPathMissing => write!(f, "gateway subgraph has no path"),
            RouteError::StaleGateway => {
                write!(f, "route references a dead node (stale gateway tables)")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// One gateway's routing-table entry (a row of Figure 2(c)).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct GatewayEntry {
    /// The gateway host this entry describes.
    pub gateway: NodeId,
    /// Its domain membership list: adjacent non-gateway hosts.
    pub members: Vec<NodeId>,
    /// Hop distance from the owning gateway, within the gateway subgraph.
    pub distance: u32,
    /// Next gateway on a shortest gateway-only path (self for distance 0).
    pub next_hop: NodeId,
}

/// A borrowed routing-table row: the zero-allocation view of
/// [`GatewayEntry`] yielded by [`RoutingState::entries`]. The dataplane's
/// warm forwarding loop reads these without cloning membership lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayEntryRef<'a> {
    /// The gateway host this entry describes.
    pub gateway: NodeId,
    /// Its domain membership list (borrowed from the state).
    pub members: &'a [NodeId],
    /// Hop distance from the owning gateway, within the gateway subgraph.
    pub distance: u32,
    /// Next gateway on a shortest gateway-only path (self for distance 0).
    pub next_hop: NodeId,
}

impl GatewayEntryRef<'_> {
    /// Clones into the owned row type.
    pub fn to_owned(self) -> GatewayEntry {
        GatewayEntry {
            gateway: self.gateway,
            members: self.members.to_vec(),
            distance: self.distance,
            next_hop: self.next_hop,
        }
    }
}

/// Routing state of the whole network under a fixed gateway set.
///
/// Holds, for every gateway, the gateway routing table of Figure 2 —
/// distances and next hops are all *within the induced gateway subgraph*,
/// because Step 2 of the procedure never leaves it.
#[derive(Debug, Clone)]
pub struct RoutingState {
    n: usize,
    gateway: Vec<bool>,
    /// Cached gateway population so hot paths never rescan the mask.
    gateway_count: usize,
    /// Domain membership list per gateway (empty vec for non-gateways).
    members: Vec<Vec<NodeId>>,
    /// Gateway-subgraph hop distances: `dist[g][h]` for gateways g, h.
    /// Stored densely over all vertex ids for simplicity.
    dist: Vec<Vec<u32>>,
    /// Next hop towards each gateway, `next[g][h]`; `NodeId::MAX` when
    /// unreachable.
    next: Vec<Vec<NodeId>>,
}

impl RoutingState {
    /// Builds membership lists and gateway routing tables for `g` under the
    /// gateway mask `gateway`.
    ///
    /// ```
    /// use pacds_graph::Graph;
    /// use pacds_routing::{route, RoutingState};
    /// // Figure 1: u=0, v=1, w=2, x=3, y=4 with gateways {v, w}.
    /// let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
    /// let state = RoutingState::build(&g, &[false, true, true, false, false]);
    /// assert_eq!(route(&g, &state, 4, 3).unwrap(), vec![4, 1, 2, 3]);
    /// ```
    pub fn build(g: &Graph, gateway: &[bool]) -> Self {
        assert_eq!(gateway.len(), g.n());
        let n = g.n();

        // Membership lists: non-gateway hosts adjacent to each gateway.
        let mut members = vec![Vec::new(); n];
        for v in g.vertices() {
            if gateway[v as usize] {
                members[v as usize] = g
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| !gateway[u as usize])
                    .collect();
            }
        }

        // Gateway-only BFS from every gateway (Step 2 operates in G[V']).
        let mut dist = vec![Vec::new(); n];
        let mut next = vec![Vec::new(); n];
        for s in g.vertices() {
            if !gateway[s as usize] {
                continue;
            }
            let (d, parents) = gateway_bfs(g, gateway, s);
            // Convert parents (towards s) into next hops (from s): walk
            // back from each target.
            let mut nh = vec![NodeId::MAX; n];
            for t in g.vertices() {
                if d[t as usize] == u32::MAX || !gateway[t as usize] {
                    continue;
                }
                if t == s {
                    nh[t as usize] = s;
                    continue;
                }
                let mut cur = t;
                while parents[cur as usize] != s {
                    cur = parents[cur as usize];
                }
                nh[t as usize] = cur;
            }
            dist[s as usize] = d;
            next[s as usize] = nh;
        }

        Self {
            n,
            gateway: gateway.to_vec(),
            gateway_count: gateway.iter().filter(|&&b| b).count(),
            members,
            dist,
            next,
        }
    }

    /// Whether `v` is a gateway.
    pub fn is_gateway(&self, v: NodeId) -> bool {
        self.gateway[v as usize]
    }

    /// The gateway hosts, collected into a fresh `Vec`.
    ///
    /// Allocates per call — hot paths should use [`Self::gateways_iter`]
    /// (or [`Self::gateway_mask`]) instead.
    pub fn gateways(&self) -> Vec<NodeId> {
        pacds_graph::mask_to_vec(&self.gateway)
    }

    /// Iterates the gateway hosts in ascending id order without
    /// allocating.
    pub fn gateways_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.gateway
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(i, _)| i as NodeId)
    }

    /// Number of gateway hosts (cached at build time; O(1)).
    pub fn gateway_count(&self) -> usize {
        self.gateway_count
    }

    /// The gateway membership mask, indexed by node id.
    pub fn gateway_mask(&self) -> &[bool] {
        &self.gateway
    }

    /// Next gateway on a shortest gateway-only path from gateway `at`
    /// towards gateway `toward` (zero-allocation table read); `None` when
    /// either endpoint is not a gateway or no gateway path exists.
    pub fn next_hop(&self, at: NodeId, toward: NodeId) -> Option<NodeId> {
        if !self.is_gateway(at) || !self.is_gateway(toward) {
            return None;
        }
        let nh = self.next[at as usize][toward as usize];
        (nh != NodeId::MAX).then_some(nh)
    }

    /// Domain membership list of gateway `v` (Figure 2(b)); empty for
    /// non-gateways.
    pub fn members(&self, v: NodeId) -> &[NodeId] {
        &self.members[v as usize]
    }

    /// The full gateway routing table stored at gateway `at` (Figure 2(c)).
    ///
    /// Allocates the table and clones every membership list — use
    /// [`Self::entries`] on hot paths.
    ///
    /// # Panics
    /// Panics if `at` is not a gateway.
    pub fn routing_table(&self, at: NodeId) -> Vec<GatewayEntry> {
        self.entries(at).map(GatewayEntryRef::to_owned).collect()
    }

    /// Iterates gateway `at`'s routing-table rows (Figure 2(c)) without
    /// allocating: membership lists are borrowed, not cloned.
    ///
    /// # Panics
    /// Panics if `at` is not a gateway.
    pub fn entries(&self, at: NodeId) -> impl Iterator<Item = GatewayEntryRef<'_>> {
        assert!(self.is_gateway(at), "host {at} is not a gateway");
        let d = &self.dist[at as usize];
        let nh = &self.next[at as usize];
        (0..self.n as NodeId)
            .filter(move |&h| self.gateway[h as usize] && d[h as usize] != u32::MAX)
            .map(move |h| GatewayEntryRef {
                gateway: h,
                members: &self.members[h as usize],
                distance: d[h as usize],
                next_hop: nh[h as usize],
            })
    }

    /// The gateway whose domain contains non-gateway `v`, chosen as the
    /// smallest-id adjacent gateway; `None` if `v` is undominated.
    /// Gateways belong to themselves.
    pub fn gateway_of(&self, g: &Graph, v: NodeId) -> Option<NodeId> {
        if self.gateway[v as usize] {
            return Some(v);
        }
        g.neighbors(v)
            .iter()
            .copied()
            .find(|&u| self.gateway[u as usize])
    }

    /// Gateway-subgraph hop distance between two gateways.
    pub fn gateway_distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        if !self.is_gateway(a) || !self.is_gateway(b) {
            return None;
        }
        let d = self.dist[a as usize][b as usize];
        (d != u32::MAX).then_some(d)
    }
}

/// BFS restricted to gateway vertices, returning (distances, parents).
fn gateway_bfs(g: &Graph, gateway: &[bool], src: NodeId) -> (Vec<u32>, Vec<NodeId>) {
    let n = g.n();
    let mut d = vec![u32::MAX; n];
    let mut parent = vec![NodeId::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    d[src as usize] = 0;
    parent[src as usize] = src;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if gateway[u as usize] && d[u as usize] == u32::MAX {
                d[u as usize] = d[v as usize] + 1;
                parent[u as usize] = v;
                queue.push_back(u);
            }
        }
    }
    (d, parent)
}

/// Executes the paper's three-step routing procedure from `src` to `dst`,
/// returning the full hop sequence (inclusive of both endpoints).
///
/// * Step 1 — a non-gateway source hands the packet to its source gateway;
/// * Step 2 — the packet follows gateway routing tables through `G[V']`;
/// * Step 3 — the destination gateway delivers directly to the destination.
///
/// Direct neighbours short-circuit: if `dst ∈ N(src)` the packet is handed
/// over in one hop without entering the gateway overlay.
pub fn route(
    g: &Graph,
    state: &RoutingState,
    src: NodeId,
    dst: NodeId,
) -> Result<Vec<NodeId>, RouteError> {
    let mut path = Vec::new();
    route_into(g, state, src, dst, &mut path)?;
    Ok(path)
}

/// [`route`] into a caller-retained buffer: `out` is cleared and filled
/// with the hop sequence, so a warm forwarding loop reusing the same
/// buffer performs zero heap allocations past its high-water capacity.
pub fn route_into(
    g: &Graph,
    state: &RoutingState,
    src: NodeId,
    dst: NodeId,
    out: &mut Vec<NodeId>,
) -> Result<(), RouteError> {
    route_alive_into(g, state, None, src, dst, out)
}

/// [`route_into`] against possibly-stale tables: `alive` marks the hosts
/// still up, and any dead node the procedure would traverse — a dead
/// endpoint, a dead chosen gateway, or a dead next hop mid-walk — aborts
/// with [`RouteError::StaleGateway`] instead of emitting a route through
/// it. `None` means every host is alive (identical to [`route_into`]).
///
/// This is the detection half of the dataplane's retransmit path: on
/// `StaleGateway` the caller NACKs, refreshes the gateway set (churn
/// engine), rebuilds the tables, and retries.
pub fn route_alive_into(
    g: &Graph,
    state: &RoutingState,
    alive: Option<&[bool]>,
    src: NodeId,
    dst: NodeId,
    out: &mut Vec<NodeId>,
) -> Result<(), RouteError> {
    out.clear();
    let n = g.n();
    if (src as usize) >= n || (dst as usize) >= n {
        return Err(RouteError::OutOfRange);
    }
    let up = |v: NodeId| alive.is_none_or(|a| a[v as usize]);
    if !up(src) || !up(dst) {
        return Err(RouteError::StaleGateway);
    }
    if src == dst {
        out.push(src);
        return Ok(());
    }
    if g.has_edge(src, dst) {
        out.push(src);
        out.push(dst);
        return Ok(());
    }

    let sg = state
        .gateway_of(g, src)
        .ok_or(RouteError::SourceNotDominated)?;
    let dg = state
        .gateway_of(g, dst)
        .ok_or(RouteError::DestinationNotDominated)?;
    // The tables may still name a gateway that has since died.
    if !up(sg) || !up(dg) {
        return Err(RouteError::StaleGateway);
    }

    // Step 2: walk the gateway tables from sg to dg.
    out.push(src);
    if sg != src {
        out.push(sg);
    }
    if state.gateway_distance(sg, dg).is_none() {
        out.clear();
        return Err(RouteError::GatewayPathMissing);
    }
    let mut cur = sg;
    while cur != dg {
        let nh = state.next[cur as usize][dg as usize];
        debug_assert_ne!(nh, NodeId::MAX);
        if !up(nh) {
            out.clear();
            return Err(RouteError::StaleGateway);
        }
        out.push(nh);
        cur = nh;
    }
    if dg != dst {
        out.push(dst);
    }
    Ok(())
}

/// Validates that `path` is a walk in `g` (each consecutive pair adjacent).
pub fn is_valid_walk(g: &Graph, path: &[NodeId]) -> bool {
    path.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

/// Convenience: hop count of a routed path (`len - 1`).
pub fn hop_count(path: &[NodeId]) -> usize {
    path.len().saturating_sub(1)
}

/// Checks the routing tables against a freshly recomputed restricted BFS
/// (used by tests and the simulator's self-checks).
pub fn tables_consistent(g: &Graph, state: &RoutingState) -> bool {
    for a in g.vertices().filter(|&a| state.is_gateway(a)) {
        for b in g.vertices().filter(|&b| state.is_gateway(b)) {
            let expected =
                algo::restricted_shortest_path(g, a, b, |v| state.is_gateway(v)).ok();
            let table = state.gateway_distance(a, b);
            match (expected, table) {
                (None, None) => {}
                (Some(p), Some(d)) => {
                    if (p.len() - 1) as u32 != d {
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::{compute_cds, CdsConfig, CdsInput, Policy};
    use pacds_graph::gen;
    use rand::SeedableRng;

    /// Figure 1's network: u=0, v=1, w=2, x=3, y=4; gateways {1, 2}.
    fn fig1() -> (Graph, RoutingState) {
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Id));
        let state = RoutingState::build(&g, &cds);
        (g, state)
    }

    #[test]
    fn membership_lists_partition_non_gateways() {
        let (_, state) = fig1();
        assert_eq!(state.members(1), &[0, 4]); // v's domain: u, y
        assert_eq!(state.members(2), &[3]); // w's domain: x
        assert!(state.members(0).is_empty());
    }

    #[test]
    fn routing_table_rows() {
        let (_, state) = fig1();
        let table = state.routing_table(1);
        assert_eq!(table.len(), 2); // entries for gateways 1 and 2
        let row2 = table.iter().find(|e| e.gateway == 2).unwrap();
        assert_eq!(row2.distance, 1);
        assert_eq!(row2.next_hop, 2);
        assert_eq!(row2.members, vec![3]);
    }

    #[test]
    #[should_panic]
    fn routing_table_at_non_gateway_panics() {
        let (_, state) = fig1();
        state.routing_table(0);
    }

    #[test]
    fn three_step_route_crosses_the_backbone() {
        let (g, state) = fig1();
        // y=4 to x=3: 4 -> 1 (source gateway) -> 2 (dest gateway) -> 3.
        let path = route(&g, &state, 4, 3).unwrap();
        assert_eq!(path, vec![4, 1, 2, 3]);
        assert!(is_valid_walk(&g, &path));
    }

    #[test]
    fn direct_neighbors_bypass_the_overlay() {
        let (g, state) = fig1();
        assert_eq!(route(&g, &state, 0, 4).unwrap(), vec![0, 4]);
        assert_eq!(route(&g, &state, 3, 3).unwrap(), vec![3]);
    }

    #[test]
    fn gateway_endpoints_skip_steps_one_or_three() {
        let (g, state) = fig1();
        assert_eq!(route(&g, &state, 1, 3).unwrap(), vec![1, 2, 3]);
        assert_eq!(route(&g, &state, 4, 2).unwrap(), vec![4, 1, 2]);
        assert_eq!(route(&g, &state, 1, 2).unwrap(), vec![1, 2]);
    }

    #[test]
    fn undominated_endpoints_error() {
        // 0-1-2 path plus isolated 3: empty-adjacent host.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let state = RoutingState::build(&g, &[false, true, false, false]);
        assert_eq!(route(&g, &state, 3, 0), Err(RouteError::SourceNotDominated));
        assert_eq!(
            route(&g, &state, 0, 3),
            Err(RouteError::DestinationNotDominated)
        );
        assert_eq!(route(&g, &state, 0, 9), Err(RouteError::OutOfRange));
    }

    #[test]
    fn disconnected_gateway_set_reports_missing_path() {
        // Path 0-1-2-3-4-5 with gateways {1, 4} (dominating 0..5 except 3? no:
        // 2 adj 1, 3 adj 4 — dominating but disconnected as a gateway set).
        let g = gen::path(6);
        let state = RoutingState::build(&g, &[false, true, false, false, true, false]);
        assert_eq!(route(&g, &state, 0, 5), Err(RouteError::GatewayPathMissing));
    }

    #[test]
    fn retained_accessors_match_allocating_ones() {
        let (_, state) = fig1();
        assert_eq!(state.gateways_iter().collect::<Vec<_>>(), state.gateways());
        assert_eq!(state.gateway_count(), state.gateways().len());
        assert_eq!(
            pacds_graph::mask_to_vec(state.gateway_mask()),
            state.gateways()
        );
        let owned = state.routing_table(1);
        let borrowed: Vec<_> = state.entries(1).map(GatewayEntryRef::to_owned).collect();
        assert_eq!(owned, borrowed);
        for e in state.entries(1) {
            assert_eq!(state.next_hop(1, e.gateway), Some(e.next_hop));
        }
        assert_eq!(state.next_hop(1, 0), None, "0 is not a gateway");
    }

    #[test]
    fn route_into_reuses_the_buffer() {
        let (g, state) = fig1();
        let mut buf = vec![9, 9, 9, 9, 9, 9];
        route_into(&g, &state, 4, 3, &mut buf).unwrap();
        assert_eq!(buf, vec![4, 1, 2, 3]);
        route_into(&g, &state, 0, 4, &mut buf).unwrap();
        assert_eq!(buf, vec![0, 4]);
    }

    #[test]
    fn dead_next_hop_mid_path_is_stale() {
        let (g, state) = fig1();
        // Route 4 -> 3 crosses gateway 2; killing 2 makes the walk stale.
        let mut alive = vec![true; 5];
        alive[2] = false;
        let mut buf = Vec::new();
        assert_eq!(
            route_alive_into(&g, &state, Some(&alive), 4, 3, &mut buf),
            Err(RouteError::StaleGateway)
        );
        assert!(buf.is_empty(), "a failed walk must not leak partial hops");
    }

    #[test]
    fn dead_source_gateway_is_stale() {
        let (g, state) = fig1();
        // 4's source gateway is 1; with 1 dead the tables are stale.
        let mut alive = vec![true; 5];
        alive[1] = false;
        let mut buf = Vec::new();
        assert_eq!(
            route_alive_into(&g, &state, Some(&alive), 4, 3, &mut buf),
            Err(RouteError::StaleGateway)
        );
    }

    #[test]
    fn dead_endpoints_are_stale_but_all_alive_matches_route() {
        let (g, state) = fig1();
        let mut buf = Vec::new();
        let mut alive = vec![true; 5];
        alive[3] = false;
        assert_eq!(
            route_alive_into(&g, &state, Some(&alive), 4, 3, &mut buf),
            Err(RouteError::StaleGateway)
        );
        alive[3] = true;
        for s in 0..5 {
            for t in 0..5 {
                route_alive_into(&g, &state, Some(&alive), s, t, &mut buf).unwrap();
                assert_eq!(buf, route(&g, &state, s, t).unwrap());
            }
        }
    }

    #[test]
    fn direct_neighbors_bypass_stale_tables() {
        let (g, state) = fig1();
        // Both gateways dead, but 0-4 is a direct edge: still deliverable.
        let alive = vec![true, false, false, true, true];
        let mut buf = Vec::new();
        route_alive_into(&g, &state, Some(&alive), 0, 4, &mut buf).unwrap();
        assert_eq!(buf, vec![0, 4]);
    }

    #[test]
    fn routes_are_valid_walks_on_random_unit_disks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let bounds = pacds_geom::Rect::paper_arena();
        for _ in 0..10 {
            let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, 40);
            let full = gen::unit_disk(bounds, 25.0, &pts);
            let keep = pacds_graph::algo::largest_component(&full);
            let (g, _) = full.induced(&keep);
            if g.n() < 3 || g.is_complete() {
                continue;
            }
            let cds = compute_cds(&CdsInput::new(&g), &CdsConfig::policy(Policy::Degree));
            let state = RoutingState::build(&g, &cds);
            assert!(tables_consistent(&g, &state));
            for s in 0..g.n() as NodeId {
                for t in 0..g.n() as NodeId {
                    let path = route(&g, &state, s, t).unwrap();
                    assert!(is_valid_walk(&g, &path), "{s}->{t}: {path:?}");
                    assert_eq!(path.first(), Some(&s));
                    assert_eq!(path.last(), Some(&t));
                }
            }
        }
    }
}
