//! Dominating-set-based routing (Section 2.1 of the paper).
//!
//! Once a connected dominating set (the *gateway* hosts) is in place,
//! routing reduces to three steps:
//!
//! 1. a non-gateway source forwards to an adjacent *source gateway*;
//! 2. the packet travels inside the subgraph induced by the gateways;
//! 3. the *destination gateway* (the destination itself, or one of its
//!    gateway neighbours) delivers the packet.
//!
//! Each gateway maintains a **domain membership list** (its adjacent
//! non-gateway hosts) and a **gateway routing table** with one entry per
//! gateway carrying that gateway's membership list — exactly the tables of
//! Figure 2. [`RoutingState`] materialises those tables; [`route`] executes
//! the three-step procedure; [`stretch`] compares the resulting hop counts
//! against true shortest paths.

pub mod flood;
pub mod robustness;
pub mod stretch;
pub mod tables;

pub use flood::{flood_cost, FloodCost};
pub use robustness::{backbone_robustness, RobustnessReport};
pub use stretch::{stretch, stretch_summary, StretchSummary};
pub use tables::{
    hop_count, is_valid_walk, route, route_alive_into, route_into, GatewayEntry,
    GatewayEntryRef, RouteError, RoutingState,
};
