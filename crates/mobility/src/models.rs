//! The mobility model trait and its implementations.

use pacds_geom::{Boundary, Compass, Point2, Rect};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A mobility model advances host positions by one update interval.
///
/// Models are stateless per-host except through `state` slots they manage
/// themselves (random waypoint keeps per-host targets), so a single model
/// instance drives any number of hosts.
pub trait MobilityModel {
    /// Advances all `positions` by one update interval, using `rng` for
    /// randomness and keeping every host inside `bounds`.
    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, bounds: Rect, positions: &mut [Point2]);
}

/// The paper's probabilistic 8-direction walk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperWalk {
    /// Probability that a host remains stable during an interval (`c`,
    /// 0.5 in the paper).
    pub stay_probability: f64,
    /// Maximum step length; the paper draws `l ∈ [1..6]` uniformly.
    pub max_step: u32,
    /// Boundary policy (the paper's free space clamps at the walls).
    pub boundary: Boundary,
    /// If true, diagonal moves displace `l` along *each* axis (the paper's
    /// integer-grid reading); if false, every move has length exactly `l`.
    pub grid_diagonals: bool,
}

impl PaperWalk {
    /// The parameters used in the paper's simulation.
    pub fn paper() -> Self {
        Self {
            stay_probability: 0.5,
            max_step: 6,
            boundary: Boundary::Clamp,
            grid_diagonals: true,
        }
    }

    /// Same walk with a different stay probability `c`.
    pub fn with_stay_probability(c: f64) -> Self {
        assert!((0.0..=1.0).contains(&c), "probability out of range");
        Self {
            stay_probability: c,
            ..Self::paper()
        }
    }
}

impl MobilityModel for PaperWalk {
    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, bounds: Rect, positions: &mut [Point2]) {
        for p in positions.iter_mut() {
            // rand(0,1) < c  =>  the host remains stable this interval.
            if rng.random_range(0.0..1.0) < self.stay_probability {
                continue;
            }
            let dir = Compass::random(rng);
            let l = rng.random_range(1..=self.max_step) as f64;
            let v = if self.grid_diagonals {
                dir.offset(l)
            } else {
                dir.unit() * l
            };
            *p = bounds.step(*p, v, self.boundary);
        }
    }
}

/// Hosts never move. Useful for isolating CDS-size effects from mobility.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Static;

impl MobilityModel for Static {
    fn step<R: Rng + ?Sized>(&mut self, _rng: &mut R, _bounds: Rect, _positions: &mut [Point2]) {}
}

/// Random waypoint: each host walks toward a private uniformly-drawn target
/// at a fixed speed, picking a new target on arrival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomWaypoint {
    /// Distance covered per update interval.
    pub speed: f64,
    targets: Vec<Point2>,
}

impl RandomWaypoint {
    /// A random-waypoint model moving `speed` units per interval.
    pub fn new(speed: f64) -> Self {
        assert!(speed > 0.0);
        Self {
            speed,
            targets: Vec::new(),
        }
    }
}

impl MobilityModel for RandomWaypoint {
    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, bounds: Rect, positions: &mut [Point2]) {
        if self.targets.len() != positions.len() {
            self.targets = positions
                .iter()
                .map(|_| pacds_geom::placement::uniform_point(rng, bounds))
                .collect();
        }
        for (p, target) in positions.iter_mut().zip(self.targets.iter_mut()) {
            let to_target = *target - *p;
            let dist = to_target.norm();
            if dist <= self.speed {
                *p = *target;
                *target = pacds_geom::placement::uniform_point(rng, bounds);
            } else {
                let dir = to_target / dist;
                *p = bounds.clamp(*p + dir * self.speed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn positions(n: usize, seed: u64) -> Vec<Point2> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        pacds_geom::placement::uniform_points(&mut rng, Rect::paper_arena(), n)
    }

    #[test]
    fn static_model_never_moves() {
        let mut pos = positions(20, 1);
        let orig = pos.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        Static.step(&mut rng, Rect::paper_arena(), &mut pos);
        assert_eq!(pos, orig);
    }

    #[test]
    fn paper_walk_keeps_hosts_in_bounds() {
        let bounds = Rect::paper_arena();
        let mut pos = positions(50, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut walk = PaperWalk::paper();
        for _ in 0..200 {
            walk.step(&mut rng, bounds, &mut pos);
            assert!(pos.iter().all(|&p| bounds.contains(p)));
        }
    }

    #[test]
    fn paper_walk_moves_roughly_half_the_hosts() {
        let bounds = Rect::paper_arena();
        let mut pos = positions(1000, 5);
        let before = pos.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        PaperWalk::paper().step(&mut rng, bounds, &mut pos);
        let moved = pos
            .iter()
            .zip(&before)
            .filter(|(a, b)| a.distance2(**b) > 0.0)
            .count();
        // c = 0.5: expect ~500 movers; allow generous slack.
        assert!((350..=650).contains(&moved), "moved = {moved}");
    }

    #[test]
    fn stay_probability_one_freezes_everyone() {
        let bounds = Rect::paper_arena();
        let mut pos = positions(30, 7);
        let before = pos.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        PaperWalk::with_stay_probability(1.0).step(&mut rng, bounds, &mut pos);
        assert_eq!(pos, before);
    }

    #[test]
    fn stay_probability_zero_moves_everyone() {
        let bounds = Rect::paper_arena();
        // Interior positions so clamping cannot mask a move of >= 1 unit.
        let mut pos = vec![Point2::new(50.0, 50.0); 40];
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        PaperWalk::with_stay_probability(0.0).step(&mut rng, bounds, &mut pos);
        assert!(pos.iter().all(|p| p.distance(Point2::new(50.0, 50.0)) >= 1.0 - 1e-9));
    }

    #[test]
    fn paper_walk_step_lengths_are_bounded() {
        let bounds = Rect::square(1000.0);
        let start = Point2::new(500.0, 500.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut walk = PaperWalk::with_stay_probability(0.0);
        for _ in 0..500 {
            let mut pos = vec![start];
            walk.step(&mut rng, bounds, &mut pos);
            let d = pos[0].distance(start);
            // Grid diagonals: max displacement 6 * sqrt(2).
            assert!((1.0 - 1e-9..=6.0 * std::f64::consts::SQRT_2 + 1e-9).contains(&d));
        }
    }

    #[test]
    fn unit_diagonals_bound_step_by_max_step() {
        let bounds = Rect::square(1000.0);
        let start = Point2::new(500.0, 500.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut walk = PaperWalk {
            grid_diagonals: false,
            ..PaperWalk::with_stay_probability(0.0)
        };
        for _ in 0..500 {
            let mut pos = vec![start];
            walk.step(&mut rng, bounds, &mut pos);
            let d = pos[0].distance(start);
            assert!((1.0 - 1e-9..=6.0 + 1e-9).contains(&d));
        }
    }

    #[test]
    fn random_waypoint_converges_on_targets() {
        let bounds = Rect::paper_arena();
        let mut pos = positions(10, 12);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut rw = RandomWaypoint::new(5.0);
        for _ in 0..500 {
            rw.step(&mut rng, bounds, &mut pos);
            assert!(pos.iter().all(|&p| bounds.contains(p)));
        }
        // After many steps positions should have spread from their origins.
        let spread = pos
            .iter()
            .zip(positions(10, 12).iter())
            .filter(|(a, b)| a.distance(**b) > 1.0)
            .count();
        assert!(spread >= 8, "random waypoint should move hosts");
    }

    #[test]
    fn random_waypoint_moves_at_most_speed_per_step() {
        let bounds = Rect::paper_arena();
        let mut pos = positions(5, 14);
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let mut rw = RandomWaypoint::new(2.5);
        for _ in 0..100 {
            let before = pos.clone();
            rw.step(&mut rng, bounds, &mut pos);
            for (a, b) in pos.iter().zip(&before) {
                assert!(a.distance(*b) <= 2.5 + 1e-9);
            }
        }
    }

    #[test]
    #[should_panic]
    fn invalid_stay_probability_panics() {
        PaperWalk::with_stay_probability(1.5);
    }
}
