//! Host mobility models.
//!
//! The paper's movement model (Section 4): in each update interval, every
//! host independently stays put with probability `c` (0.5 in the paper);
//! otherwise it moves `l ∈ [1..6]` units in one of the eight compass
//! directions, `dir ∈ [1..8]`.
//!
//! [`RandomWaypoint`] and [`Static`] are provided for extension experiments
//! (the paper's future work asks for "more in-depth simulation under
//! different settings").

pub mod models;

pub use models::{MobilityModel, PaperWalk, RandomWaypoint, Static};
