//! Property-based tests for the mobility models.

use pacds_geom::{Boundary, Point2, Rect};
use pacds_mobility::{MobilityModel, PaperWalk, RandomWaypoint, Static};
use proptest::prelude::*;
use rand::SeedableRng;

fn positions(n: usize, bounds: Rect, seed: u64) -> Vec<Point2> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    pacds_geom::placement::uniform_points(&mut rng, bounds, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn paper_walk_confines_and_bounds_steps(
        seed in any::<u64>(),
        n in 1usize..60,
        c in 0.0f64..=1.0,
        steps in 1usize..30,
        grid_diag in any::<bool>(),
    ) {
        let bounds = Rect::paper_arena();
        let mut pos = positions(n, bounds, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut walk = PaperWalk {
            stay_probability: c,
            max_step: 6,
            boundary: Boundary::Clamp,
            grid_diagonals: grid_diag,
        };
        for _ in 0..steps {
            let before = pos.clone();
            walk.step(&mut rng, bounds, &mut pos);
            let cap = if grid_diag { 6.0 * std::f64::consts::SQRT_2 } else { 6.0 };
            for (a, b) in pos.iter().zip(&before) {
                prop_assert!(bounds.contains(*a));
                // Clamping can only shorten a move, never lengthen it.
                prop_assert!(a.distance(*b) <= cap + 1e-9);
            }
        }
    }

    #[test]
    fn stay_probability_one_is_static(seed in any::<u64>(), n in 1usize..40) {
        let bounds = Rect::paper_arena();
        let mut a = positions(n, bounds, seed);
        let b = a.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        PaperWalk::with_stay_probability(1.0).step(&mut rng, bounds, &mut a);
        prop_assert_eq!(a.clone(), b.clone());
        let mut c = b.clone();
        Static.step(&mut rng, bounds, &mut c);
        prop_assert_eq!(c, b);
    }

    #[test]
    fn random_waypoint_speed_cap_holds(
        seed in any::<u64>(),
        n in 1usize..30,
        speed in 0.5f64..20.0,
        steps in 1usize..40,
    ) {
        let bounds = Rect::paper_arena();
        let mut pos = positions(n, bounds, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 1);
        let mut rw = RandomWaypoint::new(speed);
        for _ in 0..steps {
            let before = pos.clone();
            rw.step(&mut rng, bounds, &mut pos);
            for (a, b) in pos.iter().zip(&before) {
                prop_assert!(bounds.contains(*a));
                prop_assert!(a.distance(*b) <= speed + 1e-9);
            }
        }
    }

    #[test]
    fn walks_are_deterministic_per_seed(seed in any::<u64>(), n in 1usize..30) {
        let bounds = Rect::paper_arena();
        let run = |s: u64| {
            let mut pos = positions(n, bounds, seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(s);
            let mut walk = PaperWalk::paper();
            for _ in 0..10 {
                walk.step(&mut rng, bounds, &mut pos);
            }
            pos
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
