//! Differential check of the protocol-overhead accounting: the message
//! counts the instrumented engine *observes* must equal the analytic
//! predictions in [`pacds_distributed::stats`] on the adversarial corpus.
//!
//! Two layers of evidence, both over the same corpus cases:
//!
//! * the engine's own send counter (`run_distributed_counted`) — always on;
//! * the `pacds-obs` hello/marker counters ticked inside `host_main` —
//!   only under `--features obs`, where the per-case *delta* of the global
//!   counters must match the per-round analytic split exactly.

use pacds_core::{CdsConfig, Policy};
use pacds_distributed::{protocol_stats, run_distributed_counted};
use pacds_testkit::corpus;

/// Threaded engine spawns one OS thread per host; keep corpus cases small
/// enough that the whole sweep stays cheap.
const MAX_N: usize = 64;

#[test]
fn observed_message_counts_match_analytic_stats_on_corpus() {
    let mut cases = corpus::named_families();
    cases.extend(corpus::random_unit_disk_cases(77, 6));

    let configs = [
        CdsConfig::policy(Policy::NoPruning),
        CdsConfig::policy(Policy::Id),
        CdsConfig::paper(Policy::EnergyDegree),
    ];

    let mut checked = 0usize;
    for case in &cases {
        if case.graph.n() > MAX_N {
            continue;
        }
        for cfg in &configs {
            let expected = protocol_stats(&case.graph, cfg);

            #[cfg(feature = "obs")]
            let before = pacds_obs::Snapshot::capture();

            let (_, sent) = run_distributed_counted(&case.graph, Some(&case.energy), cfg);
            assert_eq!(
                sent,
                expected.total_messages(),
                "engine send counter diverged from analytic stats on {} ({:?})",
                case.name,
                cfg.policy,
            );

            #[cfg(feature = "obs")]
            {
                let after = pacds_obs::Snapshot::capture();
                let delta = |label: &str| after.counter(label) - before.counter(label);
                assert_eq!(
                    delta("dist.hello_messages"),
                    expected.hello_messages,
                    "hello counter diverged on {} ({:?})",
                    case.name,
                    cfg.policy,
                );
                assert_eq!(
                    delta("dist.marker_messages"),
                    expected.marker_messages,
                    "marker counter diverged on {} ({:?})",
                    case.name,
                    cfg.policy,
                );
                assert!(delta("dist.runs") >= 1);
            }

            checked += 1;
        }
    }
    assert!(checked >= 30, "corpus sweep too small: {checked} runs");
}
