//! Incremental maintenance under edit sequences, differentially checked
//! against a full recompute after every step.
//!
//! The corpus cases seed the initial topology; each step then applies one
//! random edit — an edge flip, an energy drain, or a node death
//! (`Graph::isolate`) — and the maintained gateway mask must be
//! bit-identical to `compute_cds` on the edited instance.

use pacds_core::{compute_cds, CdsConfig, CdsInput, IncrementalCds, Policy};
use pacds_graph::Graph;
use pacds_testkit::{named_families, random_unit_disk_cases};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn full(g: &Graph, energy: &[u64], cfg: &CdsConfig) -> Vec<bool> {
    compute_cds(&CdsInput::with_energy(g, energy), cfg)
}

fn drive_sequence(
    name: &str,
    g0: &Graph,
    e0: &[u64],
    cfg: &CdsConfig,
    steps: usize,
    rng: &mut StdRng,
) {
    let mut g = g0.clone();
    let mut energy = e0.to_vec();
    let mut inc = IncrementalCds::new(g.clone(), energy.clone(), *cfg);
    assert_eq!(inc.gateways(), &full(&g, &energy, cfg), "{name}: initial");
    let n = g.n();
    for step in 0..steps {
        match rng.random_range(0..4u32) {
            // Edge flip: toggle a uniformly random pair.
            0 | 1 => {
                let u = rng.random_range(0..n as u32);
                let mut v = rng.random_range(0..n as u32);
                if u == v {
                    v = (v + 1) % n as u32;
                }
                if g.has_edge(u, v) {
                    g.remove_edge(u, v);
                } else {
                    g.add_edge(u, v);
                }
            }
            // Energy drain on one host (relevant to EL policies).
            2 => {
                let v = rng.random_range(0..n);
                energy[v] = energy[v].saturating_sub(rng.random_range(1..4u64));
            }
            // Node death: the host keeps its slot but loses every link.
            _ => {
                let v = rng.random_range(0..n as u32);
                g.isolate(v);
            }
        }
        let got = inc.update(g.clone(), energy.clone()).clone();
        assert_eq!(
            got,
            full(&g, &energy, cfg),
            "{name}: diverged at step {step} (recomputed {} hosts)",
            inc.last_recomputed()
        );
    }
}

#[test]
fn incremental_tracks_full_recompute_over_named_families() {
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    for case in named_families().iter().filter(|c| c.graph.n() >= 2) {
        let mut rng = StdRng::seed_from_u64(0xABCD ^ case.graph.n() as u64);
        drive_sequence(&case.name, &case.graph, &case.energy, &cfg, 12, &mut rng);
    }
}

#[test]
fn incremental_tracks_full_recompute_over_random_cases_and_policies() {
    let cases = random_unit_disk_cases(606, 12);
    for (i, case) in cases.iter().enumerate() {
        if case.graph.n() > 60 {
            continue;
        }
        let policy = Policy::ALL[i % Policy::ALL.len()];
        let cfg = CdsConfig::policy(policy);
        let mut rng = StdRng::seed_from_u64(7_000 + i as u64);
        drive_sequence(&case.name, &case.graph, &case.energy, &cfg, 20, &mut rng);
    }
}

#[test]
fn incremental_survives_adversarial_burst_edits() {
    // Many edits between updates is not supported (update() is called per
    // step here), but bursts of *deaths* in one region stress the k-ball
    // dirty-set logic: kill an entire neighbourhood one host per update.
    let case = &random_unit_disk_cases(11, 4)[3];
    let g0 = &case.graph;
    let cfg = CdsConfig::policy(Policy::Degree);
    let mut g = g0.clone();
    let energy = case.energy.clone();
    let mut inc = IncrementalCds::new(g.clone(), energy.clone(), cfg);
    // Kill host 0 and then each of its (former) neighbours in turn.
    let victims: Vec<u32> = std::iter::once(0)
        .chain(g0.neighbors(0).to_vec())
        .collect();
    for v in victims {
        g.isolate(v);
        let got = inc.update(g.clone(), energy.clone()).clone();
        assert_eq!(got, full(&g, &energy, &cfg), "after killing {v}");
    }
}
