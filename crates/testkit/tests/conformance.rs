//! The differential conformance suite: every production implementation
//! against the oracles, over the named adversarial families and the
//! seeded random unit-disk corpus, across the full configuration matrix.

use pacds_core::{Application, CdsConfig, Policy, Rule2Semantics};
use pacds_testkit::harness::{full_config_matrix, ConformanceReport, ImplKind};
use pacds_testkit::{named_families, oracle, random_unit_disk_cases};
use std::collections::HashSet;

/// How many random unit-disk cases the suite runs. ≥ 200 by acceptance
/// criteria; CI bumps it via the environment.
fn random_case_count() -> usize {
    std::env::var("PACDS_TESTKIT_RANDOM_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
        .max(200)
}

#[test]
fn corpus_meets_the_acceptance_floor() {
    let named = named_families();
    let families: HashSet<&str> = named.iter().map(|c| c.family).collect();
    assert!(
        families.len() >= 12,
        "need >= 12 named families, have {}: {families:?}",
        families.len()
    );
    assert!(random_case_count() >= 200);
    // All rule variants are covered by the matrix: every policy (1/2,
    // 1a/2a, 1b/2b, 1b'/2b') under both Rule 2 semantics.
    let matrix = full_config_matrix();
    let mut covered: HashSet<(Policy, Rule2Semantics)> = HashSet::new();
    for cfg in &matrix {
        covered.insert((cfg.policy, cfg.rule2));
    }
    for policy in Policy::ALL {
        for sem in [Rule2Semantics::MinOfThree, Rule2Semantics::CaseAnalysis] {
            assert!(covered.contains(&(policy, sem)), "{policy:?}/{sem:?} uncovered");
        }
    }
}

#[test]
fn named_families_conform_across_the_full_matrix() {
    let cases = named_families();
    let matrix = full_config_matrix();
    let mut report = ConformanceReport::new();
    for case in &cases {
        for cfg in &matrix {
            // The threaded distributed engine spawns one OS thread per
            // host; named families are small, so it runs everywhere here.
            report.check_case(case, cfg, &ImplKind::ALL);
        }
    }
    assert!(report.checked > 0);
    report.finish();
}

#[test]
fn random_unit_disk_corpus_conforms() {
    let cases = random_unit_disk_cases(2001, random_case_count());
    assert!(cases.len() >= 200);
    let matrix = full_config_matrix();
    let mut report = ConformanceReport::new();
    for (i, case) in cases.iter().enumerate() {
        // Every case runs the full implementation set on one safe and one
        // paper-literal configuration; the rest of the 40-entry matrix
        // rotates across cases so the whole matrix is exercised every 40
        // cases without making the naive O(n·Δ⁴) oracle the bottleneck.
        let policy = Policy::ALL[i % Policy::ALL.len()];
        let rotating = matrix[i % matrix.len()];
        let impls: &[ImplKind] = if case.graph.n() <= 40 && i % 10 == 0 {
            &ImplKind::ALL
        } else {
            // The threaded engine is sampled above; everything else always.
            &[
                ImplKind::SeedBaseline,
                ImplKind::Pipeline,
                ImplKind::WorkspaceAdj,
                ImplKind::WorkspaceCsr,
                ImplKind::Parallel,
                ImplKind::Incremental,
                ImplKind::DistributedSeq,
            ]
        };
        report.check_case(case, &CdsConfig::policy(policy), impls);
        report.check_case(case, &CdsConfig::paper(policy), impls);
        report.check_case(case, &rotating, impls);
    }
    assert!(report.checked >= 3 * 200);
    report.finish();
}

#[test]
fn production_unit_disk_builders_match_the_pairwise_oracle() {
    use pacds_graph::{gen, CsrGraph};
    let mut cases = named_families();
    cases.extend(random_unit_disk_cases(77, 40));
    let mut geometric = 0;
    for case in &cases {
        let Some((bounds, radius, pts)) = &case.positions else {
            continue;
        };
        geometric += 1;
        let reference = oracle::unit_disk_oracle(*radius, pts);
        assert_eq!(gen::unit_disk(*bounds, *radius, pts), reference, "{}", case.name);
        assert_eq!(gen::unit_disk_naive(*radius, pts), reference, "{}", case.name);
        let mut csr = CsrGraph::new();
        let mut scratch = gen::UnitDiskScratch::new();
        gen::unit_disk_csr(*bounds, *radius, pts, None, &mut csr, &mut scratch);
        assert_eq!(csr, CsrGraph::from(&reference), "{} (csr)", case.name);
    }
    assert!(geometric >= 40, "only {geometric} geometric cases");
}

#[test]
fn simultaneous_vs_sequential_divergence_is_cds_invariant() {
    // The documented intentional non-equivalence: the applications may
    // produce different masks, but both must verify. The corpus must
    // actually exhibit the divergence (otherwise the assertion is vacuous).
    let mut cases = named_families();
    cases.extend(random_unit_disk_cases(501, 60));
    let mut report = ConformanceReport::new();
    let mut diverged = 0;
    for case in &cases {
        for policy in [Policy::Id, Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
            if report.check_cross_application(case, policy) {
                diverged += 1;
            }
        }
    }
    assert!(
        diverged > 0,
        "corpus never exercised the simultaneous/sequential divergence"
    );
    report.finish();
}

#[test]
fn paper_literal_semantics_unsoundness_is_visible_and_agreed_on() {
    // CaseAnalysis + Simultaneous is the documented-unsound configuration:
    // the corpus must contain at least one connected topology where it
    // loses domination or connectivity, and on every such instance the
    // production verifier and the oracle verifier must agree (that verdict
    // agreement is asserted per-case inside check_case; here we pin that
    // the phenomenon itself is represented).
    let mut cases = named_families();
    cases.extend(random_unit_disk_cases(9009, 120));
    let mut invalid = 0;
    for case in cases.iter().filter(|c| c.connected) {
        for policy in [Policy::Degree, Policy::Energy, Policy::EnergyDegree] {
            let cfg = CdsConfig::paper(policy);
            let mask = oracle::compute_cds_oracle(&case.graph, Some(&case.energy), &cfg);
            let o = oracle::verify_oracle(&case.graph, &mask);
            let p = pacds_core::verify_cds(&case.graph, &mask);
            assert_eq!(o.is_ok(), p.is_ok(), "{} {policy:?}", case.name);
            if o.is_err() {
                invalid += 1;
            }
        }
    }
    assert!(
        invalid > 0,
        "corpus never triggered the paper-literal Rule 2 unsoundness; \
         add the counterexample topology"
    );
}

#[test]
fn counterexample_topology_is_in_reach_of_the_harness() {
    // The 7-node counterexample from pacds-core's rule tests, run through
    // the full harness machinery end to end.
    let g = pacds_graph::Graph::from_edges(
        7,
        &[
            (0, 3), (0, 5), (0, 6), (1, 2), (1, 3), (1, 4), (1, 5), (1, 6),
            (2, 6), (3, 4), (4, 5), (4, 6), (5, 6),
        ],
    );
    let energy = vec![5u64, 1, 8, 4, 9, 7, 2];
    let cfg = CdsConfig {
        policy: Policy::Energy,
        rule2: Rule2Semantics::CaseAnalysis,
        application: Application::Simultaneous,
        ..CdsConfig::policy(Policy::Energy)
    };
    let mask = oracle::compute_cds_oracle(&g, Some(&energy), &cfg);
    assert!(oracle::verify_oracle(&g, &mask).is_err(), "unsoundness must reproduce");
    // Every implementation still agrees bit-for-bit on the invalid mask.
    for kind in ImplKind::ALL {
        if kind.applicable(&cfg) {
            assert_eq!(
                pacds_testkit::run_impl(kind, &g, Some(&energy), &cfg),
                mask,
                "{kind:?}"
            );
        }
    }
    // And the safe semantics fixes it.
    let safe = CdsConfig::policy(Policy::Energy);
    let safe_mask = oracle::compute_cds_oracle(&g, Some(&energy), &safe);
    assert_eq!(oracle::verify_oracle(&g, &safe_mask), Ok(()));
}
