//! Meta-test: the differential harness must actually catch bugs.
//!
//! A deliberately wrong "implementation" (it skips Rule 2) is run through
//! the same capture → shrink → emit → replay flow the harness uses for
//! production code, proving end to end that a real regression would be
//! detected, minimised, and persisted as a replayable case file.

use pacds_core::{CdsConfig, Policy};
use pacds_graph::{gen, Graph};
use pacds_testkit::casefile::{case_dir, emit_case, replay, shrink_case, CaseFile};
use pacds_testkit::harness::ImplKind;
use pacds_testkit::oracle;

/// The planted bug: marking + Rule 1, but no Rule 2.
fn buggy_cds(g: &Graph, energy: &[u64], cfg: &CdsConfig) -> Vec<bool> {
    let marked = oracle::marking_oracle(g);
    oracle::rule1_oracle(g, &marked, cfg.policy, Some(energy), cfg.application)
}

#[test]
fn planted_bug_is_caught_shrunk_and_replayable() {
    // Rule 2 needs a triangle u–v–w with N(v) ⊆ N(u) ∪ N(w) while Rule 1
    // fires nowhere: v=0 sits in triangle {0,1,2}; its other neighbours 3
    // and 4 are covered by 1 and 2 respectively, and pendants 5..=8 keep
    // every closed neighbourhood incomparable so Rule 1 is inert. The
    // oracle prunes exactly vertex 0; the planted bug keeps it.
    let g = Graph::from_edges(
        9,
        &[
            (0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (0, 4), (2, 4),
            (3, 5), (4, 6), (1, 7), (2, 8),
        ],
    );
    let energy: Vec<u64> = (0..g.n() as u64).map(|v| (v * 13 + 5) % 97).collect();
    let cfg = CdsConfig::policy(Policy::Degree);

    let expected = oracle::compute_cds_oracle(&g, Some(&energy), &cfg);
    let got = buggy_cds(&g, &energy, &cfg);
    assert_ne!(got, expected, "the planted bug must actually diverge");

    // Same flow as ConformanceReport::check_case on a mismatch. The
    // ImplKind recorded in the file is only a label here; replay() is
    // exercised separately below on a real-implementation case.
    let file = CaseFile::capture(
        "harness-sensitivity",
        ImplKind::Pipeline,
        &g,
        &energy,
        &cfg,
        &expected,
        &got,
    );
    let shrunk = shrink_case(file, |g2, e2| {
        buggy_cds(g2, e2, &cfg) != oracle::compute_cds_oracle(g2, Some(e2), &cfg)
    });
    assert!(
        shrunk.n < g.n(),
        "shrinker made no progress (still n={})",
        shrunk.n
    );
    // The shrunk instance must still expose the bug.
    let g2 = shrunk.graph();
    assert_ne!(
        buggy_cds(&g2, &shrunk.energy, &cfg),
        oracle::compute_cds_oracle(&g2, Some(&shrunk.energy), &cfg)
    );

    let path = emit_case(&shrunk);
    assert!(path.exists());
    assert!(path.starts_with(case_dir()));

    // A healthy implementation on the same recorded instance replays clean.
    let rep = replay(&path).expect("replay parses and runs");
    assert!(
        !rep.reproduces(),
        "pipeline should agree with the oracle on the shrunk instance"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn replay_reproduces_a_recorded_real_mismatch() {
    // Forge a case file whose `got` differs from what the implementation
    // actually produces — replay must recompute (not trust) the masks.
    let g = gen::path(6);
    let energy = vec![3u64; 6];
    let cfg = CdsConfig::policy(Policy::Id);
    let expected = oracle::compute_cds_oracle(&g, Some(&energy), &cfg);
    let file = CaseFile::capture(
        "replay-check",
        ImplKind::WorkspaceCsr,
        &g,
        &energy,
        &cfg,
        &expected,
        &[false; 6], // stale lie
    );
    let path = emit_case(&file);
    let rep = replay(&path).expect("replay runs");
    // The implementation is actually correct, so the recomputed masks agree
    // even though the recorded `got` claimed otherwise.
    assert!(!rep.reproduces());
    assert_eq!(pacds_testkit::casefile::to_mask(6, &rep.expected), expected);
    std::fs::remove_file(&path).ok();
}
