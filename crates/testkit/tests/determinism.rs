//! Parallel-vs-sequential determinism (satellite: thread-count sweep).
//!
//! `compute_cds_par` must be bit-identical to the sequential pipeline
//! regardless of rayon pool width. The parallel passes are written as
//! pure per-vertex maps over an immutable snapshot, so the result must
//! not depend on scheduling; this suite pins that at 1, 2, and 8 threads
//! across policies and corpus samples.

use pacds_core::{compute_cds_par, CdsConfig, Policy};
use pacds_testkit::{named_families, random_unit_disk_cases, run_impl, ImplKind};
use pacds_graph::VertexMask;

fn par_at(threads: usize, f: impl FnOnce() -> VertexMask + Send) -> VertexMask {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool")
        .install(f)
}

#[test]
fn parallel_is_bit_identical_across_1_2_8_threads() {
    let mut cases = named_families();
    cases.extend(random_unit_disk_cases(31337, 30));
    let mut compared = 0;
    for case in &cases {
        for policy in Policy::ALL {
            let cfg = CdsConfig::policy(policy);
            let sequential = run_impl(ImplKind::Pipeline, &case.graph, Some(&case.energy), &cfg);
            for threads in [1usize, 2, 8] {
                let par = par_at(threads, || {
                    compute_cds_par(&case.graph, Some(&case.energy), &cfg)
                });
                assert_eq!(
                    par, sequential,
                    "compute_cds_par diverged from sequential on {} under {policy:?} at {threads} thread(s)",
                    case.name
                );
                compared += 1;
            }
        }
    }
    assert!(compared >= 3 * 5 * 30);
}

#[test]
fn parallel_matches_the_oracle_under_paper_semantics() {
    use pacds_testkit::oracle;
    let cases = random_unit_disk_cases(424242, 20);
    for case in &cases {
        for policy in [Policy::Degree, Policy::EnergyDegree] {
            let cfg = CdsConfig::paper(policy);
            let expected =
                oracle::compute_cds_oracle(&case.graph, Some(&case.energy), &cfg);
            for threads in [2usize, 8] {
                let par = par_at(threads, || {
                    compute_cds_par(&case.graph, Some(&case.energy), &cfg)
                });
                assert_eq!(par, expected, "{} {policy:?} @{threads}", case.name);
            }
        }
    }
}

#[test]
fn repeated_runs_on_one_pool_are_stable() {
    let case = &random_unit_disk_cases(9, 8)[7];
    let cfg = CdsConfig::policy(Policy::EnergyDegree);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("build rayon pool");
    let first = pool.install(|| compute_cds_par(&case.graph, Some(&case.energy), &cfg));
    for _ in 0..10 {
        let again = pool.install(|| compute_cds_par(&case.graph, Some(&case.energy), &cfg));
        assert_eq!(again, first);
    }
}
