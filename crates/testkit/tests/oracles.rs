//! Oracle-vs-production parity on the individual stages, plus the
//! exhaustive-minimum quality check that only a naive oracle can provide.

use pacds_core::{marking, verify_cds, CdsConfig, Policy};
use pacds_graph::{gen, mask_to_vec};
use pacds_testkit::{named_families, oracle, random_unit_disk_cases, run_impl, ImplKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn marking_oracle_matches_production_marking_everywhere() {
    let mut cases = named_families();
    cases.extend(random_unit_disk_cases(555, 60));
    for case in &cases {
        assert_eq!(
            oracle::marking_oracle(&case.graph),
            marking(&case.graph),
            "{}",
            case.name
        );
    }
}

#[test]
fn verifier_verdicts_agree_on_random_masks() {
    // Good masks, bad masks, empty masks: the independent union-find
    // verifier and the production BFS verifier must agree on accept/reject
    // for arbitrary vertex subsets, not just algorithm outputs.
    let mut cases = named_families();
    cases.extend(random_unit_disk_cases(808, 40));
    let mut rng = StdRng::seed_from_u64(99);
    let mut rejects = 0usize;
    let mut accepts = 0usize;
    for case in &cases {
        let n = case.graph.n();
        for trial in 0..8 {
            let mask: Vec<bool> = match trial {
                0 => vec![false; n],
                1 => vec![true; n],
                _ => (0..n).map(|_| rng.random_range(0..3) > 0).collect(),
            };
            let o = oracle::verify_oracle(&case.graph, &mask);
            let p = verify_cds(&case.graph, &mask);
            assert_eq!(
                o.is_ok(),
                p.is_ok(),
                "{}: oracle={o:?} production={p:?} mask={:?}",
                case.name,
                mask_to_vec(&mask)
            );
            if o.is_ok() {
                accepts += 1;
            } else {
                rejects += 1;
            }
        }
    }
    assert!(accepts > 0 && rejects > 0, "one-sided sample: {accepts} ok / {rejects} err");
}

#[test]
fn computed_cds_is_never_smaller_than_the_exhaustive_minimum() {
    // On every small connected topology the production result must be a
    // valid CDS no smaller than the brute-force optimum. This is the one
    // property only an exhaustive oracle can check, and it also records
    // the paper's approximation behaviour on the adversarial families.
    let cases: Vec<_> = named_families()
        .into_iter()
        .filter(|c| c.connected && c.graph.n() >= 2 && c.graph.n() <= 12)
        .collect();
    assert!(cases.len() >= 8, "need small connected families, have {}", cases.len());
    for case in &cases {
        let Some((min_size, _)) = oracle::min_cds_exhaustive(&case.graph) else {
            panic!("{}: connected case has no CDS?", case.name);
        };
        for policy in Policy::ALL {
            let cfg = CdsConfig::policy(policy);
            let got = run_impl(ImplKind::Pipeline, &case.graph, Some(&case.energy), &cfg);
            assert_eq!(
                oracle::verify_oracle(&case.graph, &got),
                Ok(()),
                "{} {policy:?}",
                case.name
            );
            let size = got.iter().filter(|&&b| b).count();
            assert!(
                size >= min_size,
                "{} {policy:?}: computed {size} < exhaustive minimum {min_size} — verifier bug",
                case.name
            );
        }
    }
}

#[test]
fn exhaustive_minimum_agrees_with_known_closed_forms() {
    // min CDS of P_n is n-2 (all internal vertices), of C_n is n-2, of
    // K_{1,k} is 1 (the hub), of K_n is 0 by the empty-set-on-complete
    // convention shared with the production verifier.
    for n in 3..=9usize {
        let (p, _) = oracle::min_cds_exhaustive(&gen::path(n)).unwrap();
        assert_eq!(p, n - 2, "path {n}");
        let (c, _) = oracle::min_cds_exhaustive(&gen::cycle(n)).unwrap();
        // C_3 = K_3 falls under the empty-set-on-complete convention.
        assert_eq!(c, if n == 3 { 0 } else { n - 2 }, "cycle {n}");
        let (s, witness) = oracle::min_cds_exhaustive(&gen::star(n)).unwrap();
        assert_eq!((s, witness[0]), (1, true), "star {n}");
        let (k, _) = oracle::min_cds_exhaustive(&gen::complete(n)).unwrap();
        assert_eq!(k, 0, "complete {n}");
    }
}

#[test]
fn priority_order_is_total_and_consistent_with_production_sorting() {
    // The oracle's Vec<u64> keys must induce the same strict order as the
    // production PriorityKey on every pair, for every policy.
    use pacds_core::PriorityKey;
    let cases = random_unit_disk_cases(4242, 10);
    for case in &cases {
        let g = &case.graph;
        for policy in Policy::ALL {
            if policy == Policy::NoPruning {
                continue;
            }
            let energy = policy.needs_energy().then_some(case.energy.as_slice());
            let table = PriorityKey::build(policy, g, energy);
            for u in 0..g.n() as u32 {
                for v in 0..g.n() as u32 {
                    assert_eq!(
                        oracle::priority_lt(policy, g, energy, u, v),
                        table.lt(u, v),
                        "{}: {policy:?} order disagrees on ({u},{v})",
                        case.name
                    );
                }
            }
        }
    }
}
