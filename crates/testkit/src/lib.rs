//! Correctness layer for the PACDS workspace.
//!
//! The workspace now ships five coexisting ways of computing the same
//! gateway set (the frozen seed baseline, the allocating pipeline, the
//! zero-allocation workspace over adjacency and CSR graphs, the rayon
//! parallel passes, the incremental maintainer, and the distributed
//! engine). This crate pins all of them to a single ground truth:
//!
//! * [`oracle`] — transparently-naive reference implementations written
//!   directly from the paper's prose: O(n·Δ²) marking, literal Rules 1/2
//!   under every priority variant (1/2, 1a/2a, 1b/2b, 1b'/2b'), an
//!   independent domination + connectivity verifier (union-find, no BFS),
//!   an O(n²) pairwise unit-disk constructor, and an exhaustive
//!   minimum-CDS search for small graphs.
//! * [`corpus`] — named adversarial topology families (paths, cycles,
//!   stars, cliques, bipartite graphs, grids, trees, bridge-joined
//!   cliques, disconnected graphs, co-located hosts, tied-degree and
//!   tied-energy configurations) plus seeded random unit-disk graphs at
//!   the paper's density range.
//! * [`harness`] — the differential conformance harness driving every
//!   production implementation over the corpus against the oracles.
//! * [`casefile`] — greedy shrinking and replayable JSON case files for
//!   failures.
//!
//! # Intentional non-equivalences
//!
//! Two divergences between implementations are *by design* and are
//! asserted CDS-invariant rather than bit-identical:
//!
//! 1. **Simultaneous vs sequential application** of the rules produce
//!    different masks on the same topology (the sequential sweep sees
//!    earlier removals). Under safe semantics both must still verify as
//!    connected dominating sets; the harness checks exactly that.
//! 2. **`Rule2Semantics::CaseAnalysis` under simultaneous application**
//!    (the paper-literal extended Rule 2) is unsound on a small fraction
//!    of topologies — see `rules::tests::paper_literal_rule2_counterexample`
//!    in `pacds-core`. Every implementation must still agree bit-for-bit
//!    on *which* (possibly invalid) mask the configuration produces, and
//!    the production and oracle verifiers must agree on its verdict.

pub mod casefile;
pub mod churn;
pub mod corpus;
pub mod harness;
pub mod oracle;

pub use casefile::{emit_case, shrink_case, CaseFile};
pub use churn::{
    corpus_traces, emit_trace, first_divergence, shardable_matrix, shrink_trace, ChurnReport,
    ChurnTrace, TraceEvent,
};
pub use corpus::{named_families, random_unit_disk_cases, TopoCase};
pub use harness::{run_impl, ConformanceReport, ImplKind};
