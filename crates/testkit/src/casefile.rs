//! Shrunk, replayable failure case files.
//!
//! When the harness finds a mismatch it does not panic on the full-size
//! instance: it first greedily shrinks the topology (dropping vertices,
//! then edges, as long as the mismatch survives), then writes a JSON case
//! file that [`replay`] can re-execute verbatim. The emit directory is
//! `$PACDS_TESTKIT_CASE_DIR` when set (CI uploads it as an artifact),
//! `target/testkit-failures` otherwise.

use crate::harness::ImplKind;
use pacds_core::CdsConfig;
use pacds_graph::{mask_to_vec, vec_to_mask, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// A self-contained, replayable record of one conformance mismatch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseFile {
    /// Corpus case name the failure came from.
    pub case: String,
    /// [`ImplKind::name`] of the diverging implementation.
    pub implementation: String,
    /// The configuration under test.
    pub cfg: CdsConfig,
    /// Vertex count of the (shrunk) topology.
    pub n: usize,
    /// Edge list of the (shrunk) topology.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Energy table of the (shrunk) instance.
    pub energy: Vec<u64>,
    /// Oracle gateway set (as a sorted vertex list).
    pub expected: Vec<NodeId>,
    /// What the implementation produced at capture time.
    pub got: Vec<NodeId>,
}

impl CaseFile {
    /// Captures a mismatch at full size (pre-shrink).
    pub fn capture(
        case: &str,
        kind: ImplKind,
        g: &Graph,
        energy: &[u64],
        cfg: &CdsConfig,
        expected: &[bool],
        got: &[bool],
    ) -> Self {
        Self::capture_named(case, kind.name(), g, energy, cfg, expected, got)
    }

    /// [`capture`](Self::capture) for implementations outside [`ImplKind`]
    /// (e.g. the serving layer's wire round-trip), identified by a free
    /// label. [`replay`] cannot re-execute such cases, but the shrunk
    /// instance is still a complete repro recipe.
    pub fn capture_named(
        case: &str,
        implementation: &str,
        g: &Graph,
        energy: &[u64],
        cfg: &CdsConfig,
        expected: &[bool],
        got: &[bool],
    ) -> Self {
        Self {
            case: case.to_string(),
            implementation: implementation.to_string(),
            cfg: *cfg,
            n: g.n(),
            edges: g.edges().collect(),
            energy: energy.to_vec(),
            expected: mask_to_vec(expected),
            got: mask_to_vec(got),
        }
    }

    /// Rebuilds the recorded topology.
    pub fn graph(&self) -> Graph {
        Graph::from_edges(self.n, &self.edges)
    }
}

/// Greedily shrinks `file` while `still_fails(graph, energy)` holds:
/// repeatedly tries dropping one vertex (via [`Graph::induced`], which
/// renumbers and keeps the matching energy entries), then one edge, until
/// neither shrinks further. The mismatch masks in the result are *not*
/// recomputed — [`replay`] re-derives them on the shrunk instance.
pub fn shrink_case<F>(mut file: CaseFile, mut still_fails: F) -> CaseFile
where
    F: FnMut(&Graph, &[u64]) -> bool,
{
    let mut g = file.graph();
    let mut energy = file.energy.clone();
    let mut progress = true;
    while progress {
        progress = false;
        // Vertex removal pass.
        let mut v = 0;
        while v < g.n() {
            let mut keep = vec![true; g.n()];
            keep[v] = false;
            let (candidate, old_of) = g.induced(&keep);
            let cand_energy: Vec<u64> =
                old_of.iter().map(|&o| energy[o as usize]).collect();
            if still_fails(&candidate, &cand_energy) {
                g = candidate;
                energy = cand_energy;
                progress = true;
                // Do not advance v: the same index now names a new vertex.
            } else {
                v += 1;
            }
        }
        // Edge removal pass.
        let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
        for (u, w) in edges {
            let mut candidate = g.clone();
            candidate.remove_edge(u, w);
            if still_fails(&candidate, &energy) {
                g = candidate;
                progress = true;
            }
        }
    }
    file.n = g.n();
    file.edges = g.edges().collect();
    file.energy = energy;
    file
}

/// Directory case files are written to.
pub fn case_dir() -> PathBuf {
    std::env::var_os("PACDS_TESTKIT_CASE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/testkit-failures"))
}

/// Writes `file` as pretty JSON into [`case_dir`], returning the path.
pub fn emit_case(file: &CaseFile) -> PathBuf {
    let dir = case_dir();
    std::fs::create_dir_all(&dir).expect("create case dir");
    let slug: String = file
        .case
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = dir.join(format!("{}-{}-n{}.json", file.implementation, slug, file.n));
    std::fs::write(&path, serde_json::to_string_pretty(file).expect("serialize case"))
        .expect("write case file");
    path
}

/// Outcome of replaying a case file.
#[derive(Debug)]
pub struct Replay {
    /// Oracle result on the recorded instance, recomputed now.
    pub expected: Vec<NodeId>,
    /// Implementation result, recomputed now.
    pub got: Vec<NodeId>,
}

impl Replay {
    /// Whether the mismatch still reproduces.
    pub fn reproduces(&self) -> bool {
        self.expected != self.got
    }
}

/// Re-executes a case file: rebuilds the graph, reruns the oracle and the
/// named implementation, and reports both results.
pub fn replay(path: &Path) -> Result<Replay, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let file: CaseFile = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let kind = ImplKind::ALL
        .into_iter()
        .find(|k| k.name() == file.implementation)
        .ok_or_else(|| format!("unknown implementation {:?}", file.implementation))?;
    let g = file.graph();
    let expected = crate::oracle::compute_cds_oracle(&g, Some(&file.energy), &file.cfg);
    let got = crate::harness::run_impl(kind, &g, Some(&file.energy), &file.cfg);
    Ok(Replay {
        expected: mask_to_vec(&expected),
        got: mask_to_vec(&got),
    })
}

/// Round-trips a vertex list through a mask of size `n` (replay helper).
pub fn to_mask(n: usize, verts: &[NodeId]) -> Vec<bool> {
    vec_to_mask(n, verts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::Policy;
    use pacds_graph::gen;

    #[test]
    fn shrink_preserves_the_predicate() {
        // Predicate: graph still contains a vertex of degree >= 3. The
        // greedy shrinker must reduce a 4x5 grid to (near) the minimal
        // witness — a star on 4 vertices.
        let g = gen::grid(4, 5);
        let energy: Vec<u64> = (0..20).collect();
        let file = CaseFile {
            case: "shrink-test".into(),
            implementation: "pipeline".into(),
            cfg: CdsConfig::policy(Policy::Id),
            n: g.n(),
            edges: g.edges().collect(),
            energy: energy.clone(),
            expected: vec![],
            got: vec![],
        };
        let shrunk = shrink_case(file, |g2, _| g2.max_degree() >= 3);
        assert!(shrunk.n <= 4, "shrunk to n={}", shrunk.n);
        assert!(shrunk.graph().max_degree() >= 3);
        assert_eq!(shrunk.energy.len(), shrunk.n);
    }

    #[test]
    fn casefile_round_trips_through_json() {
        let g = gen::cycle(5);
        let file = CaseFile {
            case: "round-trip".into(),
            implementation: "workspace_csr".into(),
            cfg: CdsConfig::paper(Policy::Degree),
            n: 5,
            edges: g.edges().collect(),
            energy: vec![1, 2, 3, 4, 5],
            expected: vec![0, 1],
            got: vec![0, 2],
        };
        let json = serde_json::to_string(&file).unwrap();
        let back: CaseFile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.graph(), g);
        assert_eq!(back.cfg, file.cfg);
        assert_eq!(back.expected, file.expected);
    }
}
