//! Brute-force reference implementations ("oracles").
//!
//! Everything here is written straight from the paper's prose with no
//! shared machinery from the production crates: priorities are recomputed
//! per comparison instead of materialised in a [`pacds_core::PriorityKey`]
//! table, coverage is decided by sorted-slice scans instead of
//! [`pacds_graph::NeighborBitmap`] word operations, connectivity uses
//! union-find instead of BFS, and the unit-disk constructor is the O(n²)
//! pairwise loop with its own distance arithmetic. Slow on purpose: if a
//! production optimisation and an oracle ever disagree, the oracle is the
//! spec.

use pacds_core::{Application, CdsConfig, CdsViolation, Policy, PruneSchedule, Rule2Semantics};
use pacds_geom::Point2;
use pacds_graph::{Graph, NodeId, VertexMask};

/// The lexicographic priority of `v` under `policy`, recomputed from the
/// graph on every call (Rules 1/2 = id; 1a/2a = (degree, id); 1b/2b =
/// (energy, id); 1b'/2b' = (energy, degree, id)). Lower sorts first and is
/// pruned first.
pub fn priority_of(policy: Policy, g: &Graph, energy: Option<&[u64]>, v: NodeId) -> Vec<u64> {
    let id = v as u64;
    let deg = g.degree(v) as u64;
    let el = || {
        energy.expect("energy-aware policy requires energy levels")[v as usize]
    };
    match policy {
        Policy::NoPruning | Policy::Id => vec![id],
        Policy::Degree => vec![deg, id],
        Policy::Energy => vec![el(), id],
        Policy::EnergyDegree => vec![el(), deg, id],
    }
}

/// Whether `a` has strictly lower priority than `b` under `policy`.
pub fn priority_lt(policy: Policy, g: &Graph, energy: Option<&[u64]>, a: NodeId, b: NodeId) -> bool {
    priority_of(policy, g, energy, a) < priority_of(policy, g, energy, b)
}

/// The marking process, literally: `v` is marked iff it has two neighbours
/// that are not connected to each other. Scans every neighbour pair with
/// no early exit — O(n·Δ²).
pub fn marking_oracle(g: &Graph) -> VertexMask {
    let mut out = vec![false; g.n()];
    for v in g.vertices() {
        let nv = g.neighbors(v);
        let mut unconnected_pair = false;
        for (i, &u) in nv.iter().enumerate() {
            for &w in &nv[i + 1..] {
                if !g.has_edge(u, w) {
                    unconnected_pair = true;
                }
            }
        }
        out[v as usize] = unconnected_pair;
    }
    out
}

/// `N[v] ⊆ N[u]` by sorted-slice scan (Rule 1's coverage condition).
fn closed_covered(g: &Graph, v: NodeId, u: NodeId) -> bool {
    let in_closed_u =
        |x: NodeId| x == u || g.neighbors(u).binary_search(&x).is_ok();
    in_closed_u(v) && g.neighbors(v).iter().all(|&x| in_closed_u(x))
}

/// `N(v) ⊆ N(u) ∪ N(w)` by sorted-slice scan (Rule 2's coverage
/// condition, open neighbourhoods, no special cases).
fn open_covered_pair(g: &Graph, v: NodeId, u: NodeId, w: NodeId) -> bool {
    g.neighbors(v).iter().all(|&x| {
        g.neighbors(u).binary_search(&x).is_ok() || g.neighbors(w).binary_search(&x).is_ok()
    })
}

/// Whether Rule 1 unmarks `v` against the `marked` snapshot: some marked
/// `u ≠ v` with `N[v] ⊆ N[u]` and lower priority for `v`. Scans *all*
/// vertices, not just neighbours (coverage forces `u ∈ N(v)` anyway).
fn rule1_unmarks(
    g: &Graph,
    marked: &[bool],
    policy: Policy,
    energy: Option<&[u64]>,
    v: NodeId,
) -> bool {
    g.vertices().any(|u| {
        u != v
            && marked[u as usize]
            && closed_covered(g, v, u)
            && priority_lt(policy, g, energy, v, u)
    })
}

/// Whether Rule 2 unmarks `v` against the `marked` snapshot under
/// `semantics`: some pair of distinct marked neighbours `u, w` with
/// `N(v) ⊆ N(u) ∪ N(w)` whose priority case approves.
fn rule2_unmarks(
    g: &Graph,
    marked: &[bool],
    policy: Policy,
    energy: Option<&[u64]>,
    semantics: Rule2Semantics,
    v: NodeId,
) -> bool {
    let lt = |a: NodeId, b: NodeId| priority_lt(policy, g, energy, a, b);
    let nv = g.neighbors(v);
    for (i, &u) in nv.iter().enumerate() {
        if !marked[u as usize] {
            continue;
        }
        for &w in &nv[i + 1..] {
            if !marked[w as usize] || !open_covered_pair(g, v, u, w) {
                continue;
            }
            let approves = match semantics {
                Rule2Semantics::MinOfThree => lt(v, u) && lt(v, w),
                Rule2Semantics::CaseAnalysis => {
                    let cu = open_covered_pair(g, u, v, w);
                    let cw = open_covered_pair(g, w, v, u);
                    match (cu, cw) {
                        (false, false) => true,
                        (true, false) => lt(v, u),
                        (false, true) => lt(v, w),
                        (true, true) => lt(v, u) && lt(v, w),
                    }
                }
            };
            if approves {
                return true;
            }
        }
    }
    false
}

/// One Rule 1 pass under `application` (snapshot or in-place sweep).
pub fn rule1_oracle(
    g: &Graph,
    marked: &[bool],
    policy: Policy,
    energy: Option<&[u64]>,
    application: Application,
) -> VertexMask {
    let mut cur = marked.to_vec();
    for v in g.vertices() {
        let unmark = match application {
            Application::Simultaneous => {
                marked[v as usize] && rule1_unmarks(g, marked, policy, energy, v)
            }
            Application::Sequential => {
                cur[v as usize] && rule1_unmarks(g, &cur, policy, energy, v)
            }
        };
        if unmark {
            cur[v as usize] = false;
        }
    }
    cur
}

/// One Rule 2 pass under `application`.
pub fn rule2_oracle(
    g: &Graph,
    marked: &[bool],
    policy: Policy,
    energy: Option<&[u64]>,
    semantics: Rule2Semantics,
    application: Application,
) -> VertexMask {
    let mut cur = marked.to_vec();
    for v in g.vertices() {
        let unmark = match application {
            Application::Simultaneous => {
                marked[v as usize] && rule2_unmarks(g, marked, policy, energy, semantics, v)
            }
            Application::Sequential => {
                cur[v as usize] && rule2_unmarks(g, &cur, policy, energy, semantics, v)
            }
        };
        if unmark {
            cur[v as usize] = false;
        }
    }
    cur
}

/// The full reference pipeline for any [`CdsConfig`]: marking, then the
/// rule pair under the configured application and schedule, with the same
/// `Id`-forces-min-of-three override as the production
/// [`CdsConfig::rule2_semantics`].
pub fn compute_cds_oracle(g: &Graph, energy: Option<&[u64]>, cfg: &CdsConfig) -> VertexMask {
    let marked = marking_oracle(g);
    if !cfg.policy.prunes() {
        return marked;
    }
    if cfg.policy.needs_energy() {
        let e = energy.expect("energy-aware policy requires energy levels");
        assert_eq!(e.len(), g.n(), "energy table length must equal n");
    }
    let semantics = cfg.rule2_semantics();
    let round = |m: &[bool]| {
        let after1 = rule1_oracle(g, m, cfg.policy, energy, cfg.application);
        rule2_oracle(g, &after1, cfg.policy, energy, semantics, cfg.application)
    };
    let mut cur = round(&marked);
    if cfg.schedule == PruneSchedule::Fixpoint {
        loop {
            let next = round(&cur);
            if next == cur {
                break;
            }
            cur = next;
        }
    }
    cur
}

/// Independent CDS verifier: domination by direct scan, connectivity of
/// the induced subgraph by union-find (no shared code with
/// [`pacds_core::verify_cds`], but the identical contract, including the
/// empty-set-on-complete-graph special case). Returns the same
/// [`CdsViolation`] type so verdicts can be compared directly.
pub fn verify_oracle(g: &Graph, mask: &[bool]) -> Result<(), CdsViolation> {
    assert_eq!(mask.len(), g.n());
    if mask.iter().all(|&b| !b) {
        let n = g.n();
        return if n <= 1 || g.m() == n * (n - 1) / 2 {
            Ok(())
        } else {
            Err(CdsViolation::Empty)
        };
    }
    for v in g.vertices() {
        if !mask[v as usize] && !g.neighbors(v).iter().any(|&u| mask[u as usize]) {
            return Err(CdsViolation::NotDominating { witness: v });
        }
    }
    // Union-find over edges internal to the set.
    let mut parent: Vec<usize> = (0..g.n()).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    for (u, v) in g.edges() {
        if mask[u as usize] && mask[v as usize] {
            let (a, b) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
            parent[a] = b;
        }
    }
    let mut root = None;
    for (v, &in_set) in mask.iter().enumerate().take(g.n()) {
        if in_set {
            let r = find(&mut parent, v);
            if *root.get_or_insert(r) != r {
                return Err(CdsViolation::NotConnected);
            }
        }
    }
    Ok(())
}

/// O(n²) pairwise unit-disk construction with its own distance arithmetic
/// (`dx² + dy² ≤ r² + EPS`, rim-inclusive like the production builders).
pub fn unit_disk_oracle(radius: f64, points: &[Point2]) -> Graph {
    let mut g = Graph::new(points.len());
    let r2 = radius * radius + pacds_geom::EPS;
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            let dx = points[i].x - points[j].x;
            let dy = points[i].y - points[j].y;
            if dx * dx + dy * dy <= r2 {
                g.add_edge(i as NodeId, j as NodeId);
            }
        }
    }
    g
}

/// Exhaustive minimum connected dominating set: enumerates all 2ⁿ vertex
/// subsets and returns the size and one witness of the smallest set
/// accepted by [`verify_oracle`]. `None` when no subset verifies (a
/// disconnected graph). On complete graphs this returns size 0 (the empty
/// set verifies there by contract).
///
/// # Panics
/// Panics for `n > 20` — the enumeration is the point, not the scale.
pub fn min_cds_exhaustive(g: &Graph) -> Option<(usize, VertexMask)> {
    let n = g.n();
    assert!(n <= 20, "exhaustive search is for n <= 20 (got {n})");
    let mut best: Option<(usize, VertexMask)> = None;
    for bits in 0u32..(1u32 << n) {
        let size = bits.count_ones() as usize;
        if best.as_ref().is_some_and(|(b, _)| size >= *b) {
            continue;
        }
        let mask: VertexMask = (0..n).map(|v| bits >> v & 1 == 1).collect();
        if verify_oracle(g, &mask).is_ok() {
            best = Some((size, mask));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_graph::{gen, mask_to_vec};

    #[test]
    fn marking_oracle_on_figure_1() {
        // u=0, v=1, w=2, x=3, y=4 from the paper's Figure 1.
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        assert_eq!(mask_to_vec(&marking_oracle(&g)), vec![1, 2]);
    }

    #[test]
    fn priorities_are_strict_total_orders() {
        let g = gen::cycle(6);
        let energy = [3u64, 3, 1, 4, 1, 5];
        for policy in Policy::ALL {
            for a in 0..6u32 {
                for b in 0..6u32 {
                    let ab = priority_lt(policy, &g, Some(&energy), a, b);
                    let ba = priority_lt(policy, &g, Some(&energy), b, a);
                    if a == b {
                        assert!(!ab && !ba);
                    } else {
                        assert!(ab ^ ba, "{policy:?} {a} {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn verify_oracle_contract_matches_production() {
        let path = gen::path(5);
        assert_eq!(
            verify_oracle(&path, &[false, true, false, true, false]),
            Err(CdsViolation::NotConnected)
        );
        assert_eq!(
            verify_oracle(&path, &[true, false, false, false, true]),
            Err(CdsViolation::NotDominating { witness: 2 })
        );
        assert_eq!(verify_oracle(&path, &[false, true, true, true, false]), Ok(()));
        assert_eq!(verify_oracle(&path, &[false; 5]), Err(CdsViolation::Empty));
        assert_eq!(verify_oracle(&gen::complete(4), &[false; 4]), Ok(()));
    }

    #[test]
    fn min_cds_on_known_families() {
        assert_eq!(min_cds_exhaustive(&gen::path(7)).unwrap().0, 5);
        assert_eq!(min_cds_exhaustive(&gen::star(6)).unwrap().0, 1);
        assert_eq!(min_cds_exhaustive(&gen::cycle(6)).unwrap().0, 4);
        // Complete graphs verify the empty set by contract.
        assert_eq!(min_cds_exhaustive(&gen::complete(5)).unwrap().0, 0);
        // Disconnected: nothing verifies.
        assert_eq!(min_cds_exhaustive(&Graph::new(3)), None);
    }

    #[test]
    fn unit_disk_oracle_rim_is_inclusive() {
        let pts = [Point2::new(0.0, 0.0), Point2::new(25.0, 0.0), Point2::new(51.0, 0.0)];
        let g = unit_disk_oracle(25.0, &pts);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 2));
    }
}
