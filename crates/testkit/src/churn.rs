//! Churn-trace oracle: replayable JSON event traces, seeded trace
//! generators, and a per-event differential harness pinning
//! [`ChurnEngine`] bit-identical to from-scratch recomputes.
//!
//! The harness replays a [`ChurnTrace`] one event at a time and, after
//! *every* accepted event, compares the engine's three masks (marked,
//! after-Rule-1, gateways) against **two** independent from-scratch
//! oracles:
//!
//! 1. a fresh [`ShardedCds`] run in masked mode over the live positions
//!    (the bit-identity target the churn engine claims), and
//! 2. the whole-graph [`CdsWorkspace`] on an O(n²) pairwise unit-disk
//!    graph with dead hosts isolated (independent of all sharding code).
//!
//! A divergence is shrunk greedily to a minimal failing trace
//! ([`shrink_trace`]) and emitted as a replayable JSON file next to the
//! casefile corpus ([`emit_trace`], same `PACDS_TESTKIT_CASE_DIR`
//! convention as [`crate::casefile::case_dir`]).
//!
//! Replay semantics: events the engine rejects (unknown node, double
//! kill, out-of-bounds move) are deterministic no-ops, so removing an
//! `Add` during shrinking never makes a trace ill-formed — later events
//! that referenced the added node simply become rejected no-ops.

use crate::casefile::case_dir;
use crate::harness::full_config_matrix;
use pacds_core::{CdsConfig, CdsWorkspace};
use pacds_geom::{placement, Point2, Rect};
use pacds_graph::{gen, NodeId};
use pacds_shard::{check_shardable, ChurnEngine, ChurnEvent, ShardSpec, ShardedCds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Serialisable mirror of [`ChurnEvent`] (flat coordinates so the JSON
/// stays trivially diffable and stable across geometry-type changes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Mirrors [`ChurnEvent::AddNode`].
    Add {
        /// Spawn x coordinate.
        x: f64,
        /// Spawn y coordinate.
        y: f64,
        /// Initial residual energy.
        energy: u64,
    },
    /// Mirrors [`ChurnEvent::MoveNode`].
    Move {
        /// The moving host.
        node: u32,
        /// Destination x coordinate.
        x: f64,
        /// Destination y coordinate.
        y: f64,
    },
    /// Mirrors [`ChurnEvent::KillNode`].
    Kill {
        /// The dying host.
        node: u32,
    },
    /// Mirrors [`ChurnEvent::DrainBattery`] (absolute level, so a trace
    /// replays without history).
    Drain {
        /// The draining host.
        node: u32,
        /// New absolute residual level.
        remaining: u64,
    },
}

impl TraceEvent {
    /// Convert to the engine's event type.
    pub fn to_event(self) -> ChurnEvent {
        match self {
            Self::Add { x, y, energy } => ChurnEvent::AddNode {
                pos: Point2 { x, y },
                energy,
            },
            Self::Move { node, x, y } => ChurnEvent::MoveNode {
                node,
                to: Point2 { x, y },
            },
            Self::Kill { node } => ChurnEvent::KillNode { node },
            Self::Drain { node, remaining } => ChurnEvent::DrainBattery { node, remaining },
        }
    }

    /// Convert from the engine's event type.
    pub fn from_event(ev: &ChurnEvent) -> Self {
        match *ev {
            ChurnEvent::AddNode { pos, energy } => Self::Add {
                x: pos.x,
                y: pos.y,
                energy,
            },
            ChurnEvent::MoveNode { node, to } => Self::Move {
                node,
                x: to.x,
                y: to.y,
            },
            ChurnEvent::KillNode { node } => Self::Kill { node },
            ChurnEvent::DrainBattery { node, remaining } => Self::Drain { node, remaining },
        }
    }
}

/// A replayable churn scenario: an initial instance plus an ordered
/// event stream. Everything needed to reproduce a failure is in the
/// file — no RNG state, no config (the config sweeps outside the trace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnTrace {
    /// Human-readable scenario name (becomes part of the emitted slug).
    pub name: String,
    /// Seed the generator used (provenance only; replay never re-rolls).
    pub seed: u64,
    /// The engine's open-time bounds.
    pub bounds: Rect,
    /// Unit-disk transmission radius.
    pub radius: f64,
    /// Shard count handed to [`ShardSpec::new`].
    pub shards: usize,
    /// Initial host positions.
    pub points: Vec<Point2>,
    /// Initial residual energies (same length as `points`).
    pub energy: Vec<u64>,
    /// The mutation stream, applied one event per step.
    pub events: Vec<TraceEvent>,
}

impl ChurnTrace {
    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialize churn trace")
    }

    /// Parse a trace previously written by [`ChurnTrace::to_json`] /
    /// [`emit_trace`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("parse churn trace: {e:?}"))
    }

    /// Load a trace file from disk.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }
}

/// The shardable half of the 40-configuration matrix — exactly the
/// configurations [`ChurnEngine::open`] accepts (7 of 40; the other 33
/// are pinned to typed rejection by the conformance tests).
pub fn shardable_matrix() -> Vec<CdsConfig> {
    full_config_matrix()
        .into_iter()
        .filter(|cfg| check_shardable(cfg).is_ok())
        .collect()
}

// ---------------------------------------------------------------------
// Seeded generators
// ---------------------------------------------------------------------

fn base_instance(rng: &mut StdRng, n: usize) -> (Rect, f64, Vec<Point2>, Vec<u64>) {
    let bounds = Rect::paper_arena();
    let radius = 25.0;
    let points = placement::uniform_points(rng, bounds, n);
    let energy: Vec<u64> = (0..n).map(|_| rng.random_range(5..100)).collect();
    (bounds, radius, points, energy)
}

fn clamp(bounds: Rect, x: f64, y: f64) -> (f64, f64) {
    (x.clamp(bounds.x0, bounds.x1), y.clamp(bounds.y0, bounds.y1))
}

/// Mobility walk: every step one live host takes a bounded random step
/// (the paper's update-interval model — hosts drift, the gateway set is
/// refreshed).
pub fn mobility_trace(seed: u64, n: usize, steps: usize) -> ChurnTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let (bounds, radius, points, energy) = base_instance(&mut rng, n);
    let mut pos = points.clone();
    let mut events = Vec::with_capacity(steps);
    for _ in 0..steps {
        let node = rng.random_range(0..n as u32);
        let p = pos[node as usize];
        let (x, y) = clamp(
            bounds,
            p.x + rng.random_range(-12.0..12.0),
            p.y + rng.random_range(-12.0..12.0),
        );
        pos[node as usize] = Point2 { x, y };
        events.push(TraceEvent::Move { node, x, y });
    }
    ChurnTrace {
        name: format!("mobility-s{seed}"),
        seed,
        bounds,
        radius,
        shards: 9,
        points,
        energy,
        events,
    }
}

/// Death bursts: clusters of permanent switch-offs separated by single
/// moves (exercises mass invalidation and the dead-host model).
pub fn death_burst_trace(seed: u64, n: usize, bursts: usize, burst_size: usize) -> ChurnTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let (bounds, radius, points, energy) = base_instance(&mut rng, n);
    let mut alive: Vec<u32> = (0..n as u32).collect();
    let mut events = Vec::new();
    for _ in 0..bursts {
        for _ in 0..burst_size.min(alive.len().saturating_sub(2)) {
            let k = rng.random_range(0..alive.len());
            events.push(TraceEvent::Kill {
                node: alive.swap_remove(k),
            });
        }
        if let Some(&node) = alive.first() {
            let (x, y) = clamp(
                bounds,
                rng.random_range(bounds.x0..bounds.x1),
                rng.random_range(bounds.y0..bounds.y1),
            );
            events.push(TraceEvent::Move { node, x, y });
        }
    }
    ChurnTrace {
        name: format!("death-burst-s{seed}"),
        seed,
        bounds,
        radius,
        shards: 9,
        points,
        energy,
        events,
    }
}

/// Battery drain schedule: monotonically decreasing absolute levels on
/// random hosts (exercises the energy-only dirty path, which reaches one
/// hop instead of two and is a no-op under energy-blind policies).
pub fn drain_trace(seed: u64, n: usize, steps: usize) -> ChurnTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let (bounds, radius, points, energy) = base_instance(&mut rng, n);
    let mut level = energy.clone();
    let mut events = Vec::with_capacity(steps);
    for _ in 0..steps {
        let node = rng.random_range(0..n as u32);
        let cur = level[node as usize];
        let remaining = cur.saturating_sub(rng.random_range(1..20)).max(1);
        level[node as usize] = remaining;
        events.push(TraceEvent::Drain { node, remaining });
    }
    ChurnTrace {
        name: format!("drain-s{seed}"),
        seed,
        bounds,
        radius,
        shards: 9,
        points,
        energy,
        events,
    }
}

/// Mixed stream interleaving all four mutation kinds, including spawns
/// (new ids mid-trace) and kills of freshly spawned hosts.
pub fn mixed_trace(seed: u64, n: usize, steps: usize) -> ChurnTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let (bounds, radius, points, energy) = base_instance(&mut rng, n);
    let mut pos = points.clone();
    let mut alive: Vec<bool> = vec![true; n];
    let mut events = Vec::with_capacity(steps);
    for _ in 0..steps {
        let live: Vec<u32> = (0..pos.len() as u32)
            .filter(|&v| alive[v as usize])
            .collect();
        match rng.random_range(0..10u32) {
            0 | 1 => {
                let x = rng.random_range(bounds.x0..bounds.x1);
                let y = rng.random_range(bounds.y0..bounds.y1);
                let e = rng.random_range(5..100);
                pos.push(Point2 { x, y });
                alive.push(true);
                events.push(TraceEvent::Add { x, y, energy: e });
            }
            2 if live.len() > 3 => {
                let node = live[rng.random_range(0..live.len())];
                alive[node as usize] = false;
                events.push(TraceEvent::Kill { node });
            }
            3 | 4 if !live.is_empty() => {
                let node = live[rng.random_range(0..live.len())];
                events.push(TraceEvent::Drain {
                    node,
                    remaining: rng.random_range(1..100),
                });
            }
            _ if !live.is_empty() => {
                let node = live[rng.random_range(0..live.len())];
                let p = pos[node as usize];
                let (x, y) = clamp(
                    bounds,
                    p.x + rng.random_range(-15.0..15.0),
                    p.y + rng.random_range(-15.0..15.0),
                );
                pos[node as usize] = Point2 { x, y };
                events.push(TraceEvent::Move { node, x, y });
            }
            _ => {}
        }
    }
    ChurnTrace {
        name: format!("mixed-s{seed}"),
        seed,
        bounds,
        radius,
        shards: 9,
        points,
        energy,
        events,
    }
}

/// The standard churn corpus: one trace per generator family at a couple
/// of sizes, all seeded from `seed`.
pub fn corpus_traces(seed: u64) -> Vec<ChurnTrace> {
    vec![
        mobility_trace(seed, 60, 30),
        mobility_trace(seed ^ 0x9e37_79b9, 120, 25),
        death_burst_trace(seed.wrapping_add(1), 80, 3, 6),
        drain_trace(seed.wrapping_add(2), 70, 30),
        mixed_trace(seed.wrapping_add(3), 60, 40),
    ]
}

// ---------------------------------------------------------------------
// Differential replay
// ---------------------------------------------------------------------

/// Replay `trace` under `cfg`, checking the engine's masks against both
/// from-scratch oracles after the initial solve and after every accepted
/// event. Returns the number of events applied at the first divergence
/// (`Some(0)` means the initial full solve already diverged), or `None`
/// if the whole trace is bit-identical.
///
/// # Panics
/// Panics if `cfg` is not shardable (sweep callers filter with
/// [`shardable_matrix`]; the rejection half has its own tests).
pub fn first_divergence(trace: &ChurnTrace, cfg: &CdsConfig) -> Option<usize> {
    let mut eng = ChurnEngine::open(
        ShardSpec::new(trace.shards),
        trace.bounds,
        trace.radius,
        &trace.points,
        &trace.energy,
        cfg,
    )
    .expect("first_divergence expects a shardable config");
    if !matches_scratch(&eng, trace, cfg) {
        return Some(0);
    }
    for (i, ev) in trace.events.iter().enumerate() {
        // Rejected events are deterministic no-ops; the engine state is
        // untouched, so the oracles must still match (checked anyway —
        // a rejection that *did* mutate state is exactly the kind of bug
        // this harness exists to catch).
        let _ = eng.apply(&ev.to_event());
        eng.refresh();
        if !matches_scratch(&eng, trace, cfg) {
            return Some(i + 1);
        }
    }
    None
}

/// Compare `eng`'s three masks against a fresh masked [`ShardedCds`] and
/// the whole-graph [`CdsWorkspace`] over the current live topology.
fn matches_scratch(eng: &ChurnEngine, trace: &ChurnTrace, cfg: &CdsConfig) -> bool {
    let off = eng.off_mask();

    // Oracle 1: from-scratch sharded recompute in masked mode.
    let mut scratch = ShardedCds::new(ShardSpec::new(trace.shards)).expect("scratch engine");
    scratch
        .compute_unit_disk_masked(
            trace.bounds,
            trace.radius,
            eng.positions(),
            Some(&off),
            Some(eng.energy()),
            cfg,
        )
        .expect("scratch masked solve");
    if eng.marked() != scratch.marked()
        || eng.after_rule1() != scratch.after_rule1()
        || eng.gateways() != scratch.gateways()
    {
        return false;
    }

    // Oracle 2: whole-graph workspace, dead hosts isolated. Independent
    // of every sharding/halo/dirty-set code path.
    let mut whole = gen::unit_disk(trace.bounds, trace.radius, eng.positions());
    for (i, &o) in off.iter().enumerate() {
        if o {
            whole.isolate(i as NodeId);
        }
    }
    let mut ws = CdsWorkspace::new();
    let expected = ws.compute(&whole, Some(eng.energy()), cfg);
    eng.gateways() == expected && eng.marked() == ws.marked() && eng.after_rule1() == ws.after_rule1()
}

// ---------------------------------------------------------------------
// Shrinking + emission
// ---------------------------------------------------------------------

/// Greedily shrink a failing trace to a locally-minimal event stream:
/// repeatedly delete single events while `still_fails` holds, until no
/// single deletion keeps the failure. (Initial points are kept — events
/// reference ids by index, and rejected references are harmless no-ops,
/// so event deletion alone is always well-formed.)
pub fn shrink_trace<F>(mut trace: ChurnTrace, mut still_fails: F) -> ChurnTrace
where
    F: FnMut(&ChurnTrace) -> bool,
{
    // Fast pass: drop the tail beyond the first failure point by
    // bisecting on prefix length.
    let mut lo = 0usize;
    let mut hi = trace.events.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let mut cand = trace.clone();
        cand.events.truncate(mid);
        if still_fails(&cand) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    trace.events.truncate(lo.max(hi));

    // Greedy single-event deletion to a local fixpoint.
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < trace.events.len() {
            let mut cand = trace.clone();
            cand.events.remove(i);
            if still_fails(&cand) {
                trace = cand;
                changed = true;
            } else {
                i += 1;
            }
        }
        if !changed {
            return trace;
        }
    }
}

/// Write a trace to the failure-case directory (same
/// `PACDS_TESTKIT_CASE_DIR` convention as [`crate::emit_case`]) and
/// return the path. `label` names the checking context (config slug).
pub fn emit_trace(trace: &ChurnTrace, label: &str) -> PathBuf {
    let dir = case_dir();
    std::fs::create_dir_all(&dir).expect("create case dir");
    let slug: String = format!("{}-{}", trace.name, label)
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = dir.join(format!(
        "churn-{slug}-n{}-e{}.json",
        trace.points.len(),
        trace.events.len()
    ));
    std::fs::write(&path, trace.to_json()).expect("write churn trace");
    path
}

/// Accumulates churn-conformance results across a corpus × config sweep,
/// shrinking and emitting every failing trace; [`ChurnReport::finish`]
/// panics with the artifact paths if anything diverged.
#[derive(Debug, Default)]
pub struct ChurnReport {
    /// (trace, config) pairs replayed.
    pub replays: usize,
    /// Total events replayed (each followed by a two-oracle comparison).
    pub events: usize,
    /// Shrunk failing-trace files, one per divergent (trace, config).
    pub failures: Vec<PathBuf>,
}

impl ChurnReport {
    /// Fresh empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replay `trace` under `cfg`; on divergence, shrink to a minimal
    /// failing trace and emit it as a replayable JSON artifact.
    pub fn check_trace(&mut self, trace: &ChurnTrace, cfg: &CdsConfig) {
        self.replays += 1;
        self.events += trace.events.len();
        if first_divergence(trace, cfg).is_none() {
            return;
        }
        let shrunk = shrink_trace(trace.clone(), |t| first_divergence(t, cfg).is_some());
        let label = format!(
            "{:?}-{:?}-{:?}-{:?}",
            cfg.policy, cfg.schedule, cfg.rule2, cfg.application
        );
        let path = emit_trace(&shrunk, &label);
        eprintln!(
            "CHURN DIVERGENCE {} under {label}: shrunk to {} event(s), trace at {}",
            trace.name,
            shrunk.events.len(),
            path.display()
        );
        self.failures.push(path);
    }

    /// Panic if any replay diverged, listing the emitted artifacts.
    pub fn finish(self) {
        assert!(
            self.failures.is_empty(),
            "{} of {} churn replays diverged; shrunk traces: {:?}",
            self.failures.len(),
            self.replays,
            self.failures
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_round_trip_through_json() {
        let t = mixed_trace(11, 20, 15);
        let back = ChurnTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(mobility_trace(5, 30, 10), mobility_trace(5, 30, 10));
        assert_ne!(mobility_trace(5, 30, 10), mobility_trace(6, 30, 10));
    }

    #[test]
    fn shardable_matrix_has_seven_configs() {
        let m = shardable_matrix();
        assert_eq!(m.len(), 7);
        for cfg in &m {
            assert!(check_shardable(cfg).is_ok());
        }
    }

    #[test]
    fn shrinker_reaches_a_minimal_trace() {
        // Synthetic predicate: "fails" iff the trace still contains a
        // Kill of node 3 — the shrinker must strip everything else.
        let mut t = mobility_trace(9, 20, 12);
        t.events.insert(5, TraceEvent::Kill { node: 3 });
        let has_kill = |tr: &ChurnTrace| {
            tr.events
                .iter()
                .any(|e| matches!(e, TraceEvent::Kill { node: 3 }))
        };
        assert!(has_kill(&t));
        let shrunk = shrink_trace(t, has_kill);
        assert_eq!(shrunk.events, vec![TraceEvent::Kill { node: 3 }]);
    }

    #[test]
    fn a_clean_trace_replays_without_divergence() {
        let t = mobility_trace(21, 40, 8);
        let cfg = CdsConfig::policy(pacds_core::Policy::Degree);
        assert_eq!(first_divergence(&t, &cfg), None);
    }
}
