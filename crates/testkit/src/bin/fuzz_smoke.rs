//! Time-bounded randomized conformance smoke.
//!
//! Default mode generates random topologies (unit-disk at the paper's
//! density, plus G(n, p) as a non-geometric control), walks the
//! configuration matrix, and differentially checks every applicable
//! implementation against the oracle until the time budget runs out.
//!
//! `PACDS_FUZZ_MODE=churn` instead fuzzes the churn engine: random event
//! traces (mobility walks, death bursts, battery drains, mixed streams)
//! against random unit-disk instances, replayed through
//! `ChurnEngine::apply`/`refresh` with the incremental state checked
//! against both from-scratch oracles after **every** event, across the
//! shardable configuration matrix.
//!
//! Exit code 1 on any mismatch, after shrinking and emitting a replayable
//! case/trace file.
//!
//! Environment:
//! * `PACDS_FUZZ_SECS` — time budget in seconds (default 60).
//! * `PACDS_FUZZ_SEED` — base seed (default 0xC0FFEE).
//! * `PACDS_FUZZ_MODE` — `matrix` (default) or `churn`.
//! * `PACDS_TESTKIT_CASE_DIR` — where failure case/trace files go.

use pacds_geom::{placement, Rect};
use pacds_graph::gen;
use pacds_testkit::casefile::{emit_case, shrink_case, CaseFile};
use pacds_testkit::churn::{
    death_burst_trace, drain_trace, mixed_trace, mobility_trace, shardable_matrix, ChurnReport,
};
use pacds_testkit::harness::{full_config_matrix, run_impl, ImplKind};
use pacds_testkit::oracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Churn fuzzing: each iteration draws a random trace family with random
/// size/length and replays it under every shardable configuration,
/// checking bit-identity after every event.
fn churn_smoke(budget: Duration, seed: u64) {
    let matrix = shardable_matrix();
    let start = Instant::now();
    let mut iterations = 0u64;
    let mut report = ChurnReport::new();

    while start.elapsed() < budget {
        let trace_seed = seed.wrapping_add(iterations.wrapping_mul(0x9E37_79B9));
        let mut rng = StdRng::seed_from_u64(trace_seed);
        let n = rng.random_range(10..=80usize);
        let steps = rng.random_range(5..=40usize);
        let trace = match iterations % 4 {
            0 => mobility_trace(trace_seed, n, steps),
            1 => death_burst_trace(trace_seed, n, (steps / 8).max(1), 4),
            2 => drain_trace(trace_seed, n, steps),
            _ => mixed_trace(trace_seed, n, steps),
        };
        for cfg in &matrix {
            report.check_trace(&trace, cfg);
        }
        iterations += 1;
    }

    println!(
        "churn fuzz smoke: {iterations} traces, {} replays, {} events checked, {} divergence(s) in {:.1}s",
        report.replays,
        report.events,
        report.failures.len(),
        start.elapsed().as_secs_f64()
    );
    if !report.failures.is_empty() {
        for path in &report.failures {
            eprintln!("failing trace: {}", path.display());
        }
        std::process::exit(1);
    }
}

fn main() {
    let budget = Duration::from_secs(env_u64("PACDS_FUZZ_SECS", 60));
    let seed = env_u64("PACDS_FUZZ_SEED", 0xC0FFEE);
    if std::env::var("PACDS_FUZZ_MODE").as_deref() == Ok("churn") {
        return churn_smoke(budget, seed);
    }
    let matrix = full_config_matrix();
    let start = Instant::now();

    let mut iterations = 0u64;
    let mut checks = 0u64;
    let mut failures = Vec::new();

    while start.elapsed() < budget {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(iterations));
        let n = rng.random_range(3..=100usize);
        let g = if iterations.is_multiple_of(2) {
            let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), n);
            gen::unit_disk(Rect::paper_arena(), 25.0, &pts)
        } else {
            let p = rng.random_range(0.02..0.4);
            gen::gnp(&mut rng, n, p)
        };
        let energy: Vec<u64> = (0..n).map(|_| rng.random_range(0..8u64)).collect();
        let cfg = matrix[(iterations % matrix.len() as u64) as usize];
        let expected = oracle::compute_cds_oracle(&g, Some(&energy), &cfg);

        for kind in ImplKind::ALL {
            if !kind.applicable(&cfg) {
                continue;
            }
            // One OS thread per host is too heavy to spawn on every
            // iteration at n=100; sample the threaded engine sparsely.
            if kind == ImplKind::DistributedThreaded && (n > 60 || !iterations.is_multiple_of(5)) {
                continue;
            }
            checks += 1;
            let got = run_impl(kind, &g, Some(&energy), &cfg);
            if got != expected {
                let name = format!("fuzz-{iterations}");
                let file = CaseFile::capture(&name, kind, &g, &energy, &cfg, &expected, &got);
                let shrunk = shrink_case(file, |g2, e2| {
                    run_impl(kind, g2, Some(e2), &cfg)
                        != oracle::compute_cds_oracle(g2, Some(e2), &cfg)
                });
                let path = emit_case(&shrunk);
                eprintln!(
                    "MISMATCH: {} vs oracle under {cfg:?} (iteration {iterations}); shrunk case: {}",
                    kind.name(),
                    path.display()
                );
                failures.push(path);
            }
        }
        iterations += 1;
    }

    println!(
        "fuzz smoke: {iterations} topologies, {checks} differential checks, {} mismatch(es) in {:.1}s",
        failures.len(),
        start.elapsed().as_secs_f64()
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
