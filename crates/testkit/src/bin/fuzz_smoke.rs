//! Time-bounded randomized conformance smoke.
//!
//! Generates random topologies (unit-disk at the paper's density, plus
//! G(n, p) as a non-geometric control), walks the configuration matrix,
//! and differentially checks every applicable implementation against the
//! oracle until the time budget runs out. Exit code 1 on any mismatch,
//! after shrinking and emitting a replayable case file.
//!
//! Environment:
//! * `PACDS_FUZZ_SECS` — time budget in seconds (default 60).
//! * `PACDS_FUZZ_SEED` — base seed (default 0xC0FFEE).
//! * `PACDS_TESTKIT_CASE_DIR` — where failure case files go.

use pacds_geom::{placement, Rect};
use pacds_graph::gen;
use pacds_testkit::casefile::{emit_case, shrink_case, CaseFile};
use pacds_testkit::harness::{full_config_matrix, run_impl, ImplKind};
use pacds_testkit::oracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let budget = Duration::from_secs(env_u64("PACDS_FUZZ_SECS", 60));
    let seed = env_u64("PACDS_FUZZ_SEED", 0xC0FFEE);
    let matrix = full_config_matrix();
    let start = Instant::now();

    let mut iterations = 0u64;
    let mut checks = 0u64;
    let mut failures = Vec::new();

    while start.elapsed() < budget {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(iterations));
        let n = rng.random_range(3..=100usize);
        let g = if iterations.is_multiple_of(2) {
            let pts = placement::uniform_points(&mut rng, Rect::paper_arena(), n);
            gen::unit_disk(Rect::paper_arena(), 25.0, &pts)
        } else {
            let p = rng.random_range(0.02..0.4);
            gen::gnp(&mut rng, n, p)
        };
        let energy: Vec<u64> = (0..n).map(|_| rng.random_range(0..8u64)).collect();
        let cfg = matrix[(iterations % matrix.len() as u64) as usize];
        let expected = oracle::compute_cds_oracle(&g, Some(&energy), &cfg);

        for kind in ImplKind::ALL {
            if !kind.applicable(&cfg) {
                continue;
            }
            // One OS thread per host is too heavy to spawn on every
            // iteration at n=100; sample the threaded engine sparsely.
            if kind == ImplKind::DistributedThreaded && (n > 60 || !iterations.is_multiple_of(5)) {
                continue;
            }
            checks += 1;
            let got = run_impl(kind, &g, Some(&energy), &cfg);
            if got != expected {
                let name = format!("fuzz-{iterations}");
                let file = CaseFile::capture(&name, kind, &g, &energy, &cfg, &expected, &got);
                let shrunk = shrink_case(file, |g2, e2| {
                    run_impl(kind, g2, Some(e2), &cfg)
                        != oracle::compute_cds_oracle(g2, Some(e2), &cfg)
                });
                let path = emit_case(&shrunk);
                eprintln!(
                    "MISMATCH: {} vs oracle under {cfg:?} (iteration {iterations}); shrunk case: {}",
                    kind.name(),
                    path.display()
                );
                failures.push(path);
            }
        }
        iterations += 1;
    }

    println!(
        "fuzz smoke: {iterations} topologies, {checks} differential checks, {} mismatch(es) in {:.1}s",
        failures.len(),
        start.elapsed().as_secs_f64()
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
