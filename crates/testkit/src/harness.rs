//! The differential conformance harness.
//!
//! [`run_impl`] drives any production implementation on a `(graph,
//! energy, config)` triple; [`ConformanceReport::check_case`] runs every
//! applicable implementation against [`crate::oracle::compute_cds_oracle`],
//! asserts bit-identity, cross-checks the production verifier against the
//! independent oracle verifier, and — on mismatch — shrinks the topology
//! and emits a replayable JSON case file instead of panicking on the
//! full-size instance.
//!
//! Bit-identity is asserted *per configuration*: different configurations
//! (e.g. simultaneous vs sequential application) intentionally produce
//! different masks — that non-equivalence is covered by
//! [`ConformanceReport::check_cross_application`], which requires both
//! results to be valid connected dominating sets rather than equal.

use crate::casefile::{emit_case, shrink_case, CaseFile};
use crate::corpus::TopoCase;
use crate::oracle;
use pacds_core::{
    compute_cds, compute_cds_par, verify_cds, Application, CdsConfig, CdsInput, CdsWorkspace,
    IncrementalCds, Policy, PruneSchedule, Rule2Semantics,
};
use pacds_distributed::{run_distributed, run_distributed_sequential};
use pacds_graph::{CsrGraph, Graph, VertexMask};
use std::path::PathBuf;

/// Every production implementation the harness can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplKind {
    /// The frozen v0 pipeline (`pacds_bench::seed_baseline`).
    SeedBaseline,
    /// The allocating pipeline (`pacds_core::compute_cds`).
    Pipeline,
    /// [`CdsWorkspace`] over the adjacency-list [`Graph`].
    WorkspaceAdj,
    /// [`CdsWorkspace`] over the flat [`CsrGraph`].
    WorkspaceCsr,
    /// The rayon data-parallel passes (`pacds_core::compute_cds_par`).
    Parallel,
    /// [`IncrementalCds`] initial computation (update sequences are
    /// exercised separately — see `tests/incremental_seq.rs`).
    Incremental,
    /// `pacds_distributed::run_distributed_sequential` (round-robin).
    DistributedSeq,
    /// `pacds_distributed::run_distributed` (one OS thread per host).
    DistributedThreaded,
}

impl ImplKind {
    /// Every implementation, cheapest first.
    pub const ALL: [ImplKind; 8] = [
        ImplKind::SeedBaseline,
        ImplKind::Pipeline,
        ImplKind::WorkspaceAdj,
        ImplKind::WorkspaceCsr,
        ImplKind::Parallel,
        ImplKind::Incremental,
        ImplKind::DistributedSeq,
        ImplKind::DistributedThreaded,
    ];

    /// Stable name (used in case files and failure messages).
    pub fn name(&self) -> &'static str {
        match self {
            ImplKind::SeedBaseline => "seed_baseline",
            ImplKind::Pipeline => "pipeline",
            ImplKind::WorkspaceAdj => "workspace_adj",
            ImplKind::WorkspaceCsr => "workspace_csr",
            ImplKind::Parallel => "parallel",
            ImplKind::Incremental => "incremental",
            ImplKind::DistributedSeq => "distributed_seq",
            ImplKind::DistributedThreaded => "distributed_threaded",
        }
    }

    /// Whether this implementation supports `cfg`. The seed baseline, the
    /// parallel passes, the incremental maintainer, and both distributed
    /// engines implement only the paper's simultaneous single-pass
    /// procedure (they panic otherwise, by contract).
    pub fn applicable(&self, cfg: &CdsConfig) -> bool {
        match self {
            ImplKind::Pipeline | ImplKind::WorkspaceAdj | ImplKind::WorkspaceCsr => true,
            ImplKind::SeedBaseline
            | ImplKind::Parallel
            | ImplKind::Incremental
            | ImplKind::DistributedSeq
            | ImplKind::DistributedThreaded => {
                cfg.application == Application::Simultaneous
                    && cfg.schedule == PruneSchedule::SinglePass
            }
        }
    }
}

/// Runs one production implementation on one instance.
pub fn run_impl(
    kind: ImplKind,
    g: &Graph,
    energy: Option<&[u64]>,
    cfg: &CdsConfig,
) -> VertexMask {
    match kind {
        ImplKind::SeedBaseline => pacds_bench::seed_baseline::compute_cds_seed(g, energy, cfg),
        ImplKind::Pipeline => {
            let input = match energy {
                Some(e) => CdsInput::with_energy(g, e),
                None => CdsInput::new(g),
            };
            compute_cds(&input, cfg)
        }
        ImplKind::WorkspaceAdj => {
            let mut ws = CdsWorkspace::new();
            ws.compute(g, energy, cfg).clone()
        }
        ImplKind::WorkspaceCsr => {
            let csr = CsrGraph::from(g);
            let mut ws = CdsWorkspace::new();
            ws.compute(&csr, energy, cfg).clone()
        }
        ImplKind::Parallel => compute_cds_par(g, energy, cfg),
        ImplKind::Incremental => {
            let e = energy.map_or_else(|| vec![0; g.n()], <[u64]>::to_vec);
            IncrementalCds::new(g.clone(), e, *cfg).gateways().clone()
        }
        ImplKind::DistributedSeq => run_distributed_sequential(g, energy, cfg),
        ImplKind::DistributedThreaded => run_distributed(g, energy, cfg),
    }
}

/// Accumulates conformance failures; panics with the case-file paths at
/// [`ConformanceReport::finish`] so one run reports *all* mismatches.
#[derive(Debug, Default)]
pub struct ConformanceReport {
    /// Paths of emitted shrunk case files.
    pub failures: Vec<PathBuf>,
    /// Instances checked (for the final summary line).
    pub checked: usize,
}

impl ConformanceReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `impls` (those applicable to `cfg`) on `case` and asserts
    /// bit-identity with the oracle; on mismatch, shrinks and emits a case
    /// file. Also cross-checks the production verifier against the oracle
    /// verifier on the oracle mask, and — for safe configurations on
    /// connected topologies — asserts the result is a valid CDS.
    pub fn check_case(&mut self, case: &TopoCase, cfg: &CdsConfig, impls: &[ImplKind]) {
        let g = &case.graph;
        let energy = Some(case.energy.as_slice());
        let expected = oracle::compute_cds_oracle(g, energy, cfg);

        // The two verifiers must agree on the verdict for this mask,
        // whatever it is (CaseAnalysis+Simultaneous may legitimately
        // produce an invalid set — the documented unsoundness).
        let oracle_verdict = oracle::verify_oracle(g, &expected);
        let prod_verdict = verify_cds(g, &expected);
        assert_eq!(
            oracle_verdict.is_ok(),
            prod_verdict.is_ok(),
            "verifiers disagree on {} under {cfg:?}: oracle={oracle_verdict:?} production={prod_verdict:?}",
            case.name
        );

        let safe = cfg.rule2_semantics() == Rule2Semantics::MinOfThree
            || cfg.application == Application::Sequential
            || !cfg.policy.prunes();
        if safe && case.connected {
            assert_eq!(
                oracle_verdict,
                Ok(()),
                "safe config {cfg:?} produced an invalid CDS on {}",
                case.name
            );
        }

        for &kind in impls {
            if !kind.applicable(cfg) {
                continue;
            }
            self.checked += 1;
            let got = run_impl(kind, g, energy, cfg);
            if got != expected {
                let file = CaseFile::capture(&case.name, kind, g, &case.energy, cfg, &expected, &got);
                let shrunk = shrink_case(file, |g2, e2| {
                    run_impl(kind, g2, Some(e2), cfg)
                        != oracle::compute_cds_oracle(g2, Some(e2), cfg)
                });
                self.failures.push(emit_case(&shrunk));
            }
        }
    }

    /// Differential check for an implementation the harness cannot name —
    /// anything that can be called as a function from `(graph, energy,
    /// config)` to a gateway mask, such as the serving layer's full wire
    /// round-trip. Asserts bit-identity with the oracle; on mismatch the
    /// topology is shrunk (re-running the same closure) and a case file is
    /// emitted under `label`.
    pub fn check_external<F>(&mut self, case: &TopoCase, cfg: &CdsConfig, label: &str, mut f: F)
    where
        F: FnMut(&Graph, &[u64], &CdsConfig) -> VertexMask,
    {
        let g = &case.graph;
        let energy = case.energy.as_slice();
        let expected = oracle::compute_cds_oracle(g, Some(energy), cfg);
        self.checked += 1;
        let got = f(g, energy, cfg);
        if got != expected {
            let file =
                CaseFile::capture_named(&case.name, label, g, energy, cfg, &expected, &got);
            let shrunk = shrink_case(file, |g2, e2| {
                f(g2, e2, cfg) != oracle::compute_cds_oracle(g2, Some(e2), cfg)
            });
            self.failures.push(emit_case(&shrunk));
        }
    }

    /// The documented simultaneous-vs-sequential non-equivalence: the two
    /// applications may return different masks, but under safe semantics
    /// on a connected topology *both* must be valid connected dominating
    /// sets. Returns whether the masks differed (so callers can assert the
    /// divergence is actually exercised by the corpus).
    pub fn check_cross_application(&mut self, case: &TopoCase, policy: Policy) -> bool {
        if !case.connected {
            return false;
        }
        let energy = Some(case.energy.as_slice());
        let sim = CdsConfig::policy(policy);
        let seq = CdsConfig {
            application: Application::Sequential,
            ..sim
        };
        let a = oracle::compute_cds_oracle(&case.graph, energy, &sim);
        let b = oracle::compute_cds_oracle(&case.graph, energy, &seq);
        for (label, mask) in [("simultaneous", &a), ("sequential", &b)] {
            assert_eq!(
                oracle::verify_oracle(&case.graph, mask),
                Ok(()),
                "{label} application invalid on {} under {policy:?}",
                case.name
            );
        }
        self.checked += 2;
        a != b
    }

    /// Panics if any mismatch was recorded, listing every emitted case
    /// file path.
    pub fn finish(self) {
        assert!(
            self.failures.is_empty(),
            "{} conformance mismatch(es); shrunk replayable case files:\n{}",
            self.failures.len(),
            self.failures
                .iter()
                .map(|p| format!("  {}", p.display()))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// The full configuration matrix: every policy × Rule 2 semantics ×
/// application × schedule (40 configurations; `Id` rows collapse the
/// semantics axis by contract).
pub fn full_config_matrix() -> Vec<CdsConfig> {
    let mut cfgs = Vec::new();
    for policy in Policy::ALL {
        for schedule in [PruneSchedule::SinglePass, PruneSchedule::Fixpoint] {
            for rule2 in [Rule2Semantics::MinOfThree, Rule2Semantics::CaseAnalysis] {
                for application in [Application::Simultaneous, Application::Sequential] {
                    cfgs.push(CdsConfig {
                        policy,
                        schedule,
                        rule2,
                        application,
                    });
                }
            }
        }
    }
    cfgs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_graph::gen;

    #[test]
    fn applicability_matches_the_panics() {
        let seq = CdsConfig::sequential(Policy::Id);
        let fix = CdsConfig::fixpoint(Policy::Id);
        let single = CdsConfig::policy(Policy::Id);
        for kind in ImplKind::ALL {
            assert!(kind.applicable(&single), "{kind:?}");
        }
        for kind in [
            ImplKind::SeedBaseline,
            ImplKind::Parallel,
            ImplKind::Incremental,
            ImplKind::DistributedSeq,
            ImplKind::DistributedThreaded,
        ] {
            assert!(!kind.applicable(&seq));
            assert!(!kind.applicable(&fix));
        }
    }

    #[test]
    fn run_impl_smoke_on_figure_1() {
        let g = pacds_graph::Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 4), (2, 3)]);
        let cfg = CdsConfig::policy(Policy::Id);
        let expected = oracle::compute_cds_oracle(&g, None, &cfg);
        assert_eq!(pacds_graph::mask_to_vec(&expected), vec![1, 2]);
        for kind in ImplKind::ALL {
            assert_eq!(run_impl(kind, &g, None, &cfg), expected, "{kind:?}");
        }
    }

    #[test]
    fn matrix_covers_every_axis() {
        let m = full_config_matrix();
        assert_eq!(m.len(), 40);
        assert!(m.iter().any(|c| c.schedule == PruneSchedule::Fixpoint));
        assert!(m.iter().any(|c| c.application == Application::Sequential));
        let _ = gen::path(2);
    }
}
