//! The adversarial topology corpus.
//!
//! [`named_families`] enumerates hand-built worst-case families — the
//! degenerate shapes where tie-breaking, coverage symmetry, and
//! connectivity edge cases actually bite — and [`random_unit_disk_cases`]
//! adds seeded random unit-disk graphs across the paper's density range
//! (a 100×100 arena, transmission radius 25, 3 ≤ n ≤ 100). Every case
//! carries an energy table chosen to exercise the tie-break chain: some
//! tables are all-equal (pure id tie-breaks), some have adversarial ties
//! on the extremes, some are distinct.

use crate::oracle;
use pacds_geom::{placement, Point2, Rect};
use pacds_graph::{gen, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One corpus entry: a topology plus the energy table to run it with.
#[derive(Debug, Clone)]
pub struct TopoCase {
    /// The family this case belongs to (e.g. `"bridged-cliques"`).
    pub family: &'static str,
    /// Unique case name within the corpus (e.g. `"bridged-cliques/k5-k5"`).
    pub name: String,
    /// The topology.
    pub graph: Graph,
    /// Energy table (always `graph.n()` long; all-zero where energy is
    /// irrelevant to the family).
    pub energy: Vec<u64>,
    /// Host positions, for cases built geometrically — lets the harness
    /// cross-check the production unit-disk builders against the O(n²)
    /// oracle constructor.
    pub positions: Option<(Rect, f64, Vec<Point2>)>,
    /// Whether the topology is connected (computed independently at
    /// construction; disconnected cases skip CDS-validity assertions but
    /// still participate in bit-identity checks).
    pub connected: bool,
}

impl TopoCase {
    fn new(family: &'static str, name: impl Into<String>, graph: Graph, energy: Vec<u64>) -> Self {
        Self::with_positions(family, name, graph, energy, None)
    }

    fn with_positions(
        family: &'static str,
        name: impl Into<String>,
        graph: Graph,
        energy: Vec<u64>,
        positions: Option<(Rect, f64, Vec<Point2>)>,
    ) -> Self {
        assert_eq!(graph.n(), energy.len());
        let connected = is_connected_union_find(&graph);
        Self {
            family,
            name: name.into(),
            graph,
            energy,
            positions,
            connected,
        }
    }
}

/// Connectivity by union-find, independent of `pacds_graph::algo`.
fn is_connected_union_find(g: &Graph) -> bool {
    let n = g.n();
    if n <= 1 {
        return true;
    }
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut v: usize) -> usize {
        while parent[v] != v {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        v
    }
    let mut components = n;
    for (u, v) in g.edges() {
        let (a, b) = (find(&mut parent, u as usize), find(&mut parent, v as usize));
        if a != b {
            parent[a] = b;
            components -= 1;
        }
    }
    components == 1
}

/// Distinct per-host energies (no ties; deterministic).
fn distinct_energy(n: usize) -> Vec<u64> {
    (0..n as u64).map(|v| (v * 13 + 5) % 97).collect()
}

/// All-equal energies: every energy comparison falls through to the
/// degree/id tie-breaks.
fn tied_energy(n: usize) -> Vec<u64> {
    vec![7; n]
}

/// Two cliques of size `k` joined by a single bridge edge between their
/// representatives (vertices `0` and `k`).
fn bridged_cliques(k: usize) -> Graph {
    let mut g = Graph::new(2 * k);
    for a in 0..k as NodeId {
        for b in a + 1..k as NodeId {
            g.add_edge(a, b);
            g.add_edge(k as NodeId + a, k as NodeId + b);
        }
    }
    g.add_edge(0, k as NodeId);
    g
}

/// Complete bipartite graph `K_{a,b}`.
fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a as NodeId {
        for v in 0..b as NodeId {
            g.add_edge(u, a as NodeId + v);
        }
    }
    g
}

/// Complete binary tree with `n` vertices (heap indexing).
fn binary_tree(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(v as NodeId, ((v - 1) / 2) as NodeId);
    }
    g
}

/// The Petersen graph: 3-regular, girth 5 — every degree comparison ties.
fn petersen() -> Graph {
    let mut g = Graph::new(10);
    for v in 0..5u32 {
        g.add_edge(v, (v + 1) % 5); // outer cycle
        g.add_edge(v, v + 5); // spokes
        g.add_edge(v + 5, (v + 2) % 5 + 5); // inner pentagram
    }
    g
}

/// Circulant graph `C_n(1, 2)`: 4-regular, fully degree-tied.
fn circulant(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 0..n {
        g.add_edge(v as NodeId, ((v + 1) % n) as NodeId);
        g.add_edge(v as NodeId, ((v + 2) % n) as NodeId);
    }
    g
}

/// A unit-disk case built from explicit positions (kept on the case for
/// builder cross-checks).
fn geometric_case(
    family: &'static str,
    name: &str,
    radius: f64,
    pts: Vec<Point2>,
    energy: Vec<u64>,
) -> TopoCase {
    let bounds = Rect::paper_arena();
    let graph = oracle::unit_disk_oracle(radius, &pts);
    TopoCase::with_positions(family, name, graph, energy, Some((bounds, radius, pts)))
}

/// The named adversarial families. Guaranteed to span at least 12
/// distinct `family` labels (asserted by the conformance tests).
pub fn named_families() -> Vec<TopoCase> {
    let mut cases = Vec::new();

    // Degenerate sizes: the off-by-one graveyard.
    for n in [0usize, 1, 2] {
        cases.push(TopoCase::new("degenerate", format!("degenerate/n{n}"), gen::path(n), tied_energy(n)));
    }

    for n in [3usize, 4, 7, 10] {
        cases.push(TopoCase::new("path", format!("path/n{n}"), gen::path(n), distinct_energy(n)));
    }
    for n in [3usize, 4, 9] {
        cases.push(TopoCase::new("cycle", format!("cycle/n{n}"), gen::cycle(n), distinct_energy(n)));
    }
    for n in [4usize, 9] {
        cases.push(TopoCase::new("star", format!("star/n{n}"), gen::star(n), distinct_energy(n)));
    }
    for n in [3usize, 5, 8] {
        cases.push(TopoCase::new("clique", format!("clique/k{n}"), gen::complete(n), distinct_energy(n)));
    }
    for (a, b) in [(1usize, 4usize), (2, 3), (3, 3), (2, 6)] {
        cases.push(TopoCase::new(
            "bipartite",
            format!("bipartite/k{a}-{b}"),
            complete_bipartite(a, b),
            distinct_energy(a + b),
        ));
    }
    for (r, c) in [(2usize, 4usize), (3, 3), (4, 5)] {
        cases.push(TopoCase::new("grid", format!("grid/{r}x{c}"), gen::grid(r, c), distinct_energy(r * c)));
    }
    for n in [7usize, 15] {
        cases.push(TopoCase::new("tree", format!("tree/binary-n{n}"), binary_tree(n), distinct_energy(n)));
    }
    for k in [3usize, 5] {
        cases.push(TopoCase::new(
            "bridged-cliques",
            format!("bridged-cliques/k{k}-k{k}"),
            bridged_cliques(k),
            distinct_energy(2 * k),
        ));
    }

    // Disconnected topologies: implementations must agree bit-for-bit even
    // where no valid CDS exists.
    {
        let mut g = gen::path(4); // 0-1-2-3 plus a separate triangle 4-5-6
        let mut h = Graph::new(7);
        for (u, v) in g.edges() {
            h.add_edge(u, v);
        }
        h.add_edge(4, 5);
        h.add_edge(5, 6);
        h.add_edge(4, 6);
        g = h;
        cases.push(TopoCase::new("disconnected", "disconnected/path+triangle", g, distinct_energy(7)));
        cases.push(TopoCase::new("disconnected", "disconnected/isolates", Graph::new(5), tied_energy(5)));
        let mut one_edge = Graph::new(4);
        one_edge.add_edge(1, 3);
        cases.push(TopoCase::new("disconnected", "disconnected/one-edge", one_edge, distinct_energy(4)));
    }

    // Co-located hosts: coincident points give identical closed
    // neighbourhoods — the pure tie-break stress for Rule 1.
    {
        let p = |x: f64, y: f64| Point2::new(x, y);
        let pts = vec![p(10.0, 10.0), p(10.0, 10.0), p(10.0, 10.0), p(30.0, 10.0), p(50.0, 10.0)];
        cases.push(geometric_case("co-located", "co-located/triple-stack", 25.0, pts, tied_energy(5)));
        let pts = vec![p(0.0, 0.0), p(0.0, 0.0), p(20.0, 0.0), p(20.0, 0.0), p(40.0, 0.0), p(40.0, 0.0)];
        cases.push(geometric_case("co-located", "co-located/paired-chain", 25.0, pts, distinct_energy(6)));
    }

    // Tied degrees: regular graphs where the degree key never decides.
    cases.push(TopoCase::new("tied-degree", "tied-degree/petersen", petersen(), tied_energy(10)));
    cases.push(TopoCase::new("tied-degree", "tied-degree/circulant-c9-12", circulant(9), tied_energy(9)));

    // Tied energies on prunable shapes: every energy comparison falls to
    // degree/id, and adversarial extremes put the tie on the pruning
    // boundary.
    cases.push(TopoCase::new("tied-energy", "tied-energy/grid-3x3-flat", gen::grid(3, 3), tied_energy(9)));
    {
        let g = bridged_cliques(4);
        let mut e = tied_energy(8);
        e[0] = 0; // both bridge endpoints at the minimum level
        e[4] = 0;
        cases.push(TopoCase::new("tied-energy", "tied-energy/bridge-extremes", g, e));
        let g = gen::star(6);
        let mut e = tied_energy(6);
        e[0] = 0; // hub at minimum energy but structurally indispensable
        cases.push(TopoCase::new("tied-energy", "tied-energy/starved-hub", g, e));
    }

    // Wheel: hub covers everything, rim is a cycle — Rule 1 and Rule 2
    // both fire and disagree about who survives.
    for n in [6usize, 9] {
        let mut g = gen::cycle(n - 1);
        let mut w = Graph::new(n);
        for (u, v) in g.edges() {
            w.add_edge(u, v);
        }
        for v in 0..(n - 1) as NodeId {
            w.add_edge(n as NodeId - 1, v);
        }
        g = w;
        cases.push(TopoCase::new("wheel", format!("wheel/n{n}"), g, distinct_energy(n)));
    }

    cases
}

/// `count` seeded random unit-disk cases across the paper's density range
/// (n from 3 to 100 in a 100×100 arena at radius 25). Deterministic per
/// `seed`; energies are drawn from a small range so ties are common.
pub fn random_unit_disk_cases(seed: u64, count: usize) -> Vec<TopoCase> {
    let bounds = Rect::paper_arena();
    let radius = 25.0;
    let sizes = [3usize, 5, 8, 10, 15, 20, 30, 40, 50, 60, 75, 90, 100];
    let mut cases = Vec::with_capacity(count);
    for i in 0..count {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let n = sizes[i % sizes.len()];
        // Mix uniform (often disconnected at low n) with jittered-grid and
        // anchored-connected placements so both regimes are represented.
        let pts = match i % 3 {
            0 => placement::uniform_points(&mut rng, bounds, n),
            1 => placement::jittered_grid(&mut rng, bounds, n),
            _ => placement::connected_uniform_points(&mut rng, bounds, radius, n),
        };
        let energy: Vec<u64> = (0..n).map(|_| rng.random_range(0..8u64)).collect();
        let graph = gen::unit_disk(bounds, radius, &pts);
        cases.push(TopoCase::with_positions(
            "random-udg",
            format!("random-udg/{i}-n{n}"),
            graph,
            energy,
            Some((bounds, radius, pts)),
        ));
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn corpus_has_at_least_twelve_families() {
        let families: HashSet<&str> = named_families().iter().map(|c| c.family).collect();
        assert!(families.len() >= 12, "only {} families: {families:?}", families.len());
    }

    #[test]
    fn case_names_are_unique() {
        let cases = named_families();
        let names: HashSet<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names.len(), cases.len());
    }

    #[test]
    fn connectivity_labels_are_consistent() {
        for c in named_families() {
            assert_eq!(
                c.connected,
                pacds_graph::algo::is_connected(&c.graph),
                "{}",
                c.name
            );
        }
    }

    #[test]
    fn random_cases_are_deterministic_per_seed() {
        let a = random_unit_disk_cases(42, 20);
        let b = random_unit_disk_cases(42, 20);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph, "{}", x.name);
            assert_eq!(x.energy, y.energy);
        }
    }
}
