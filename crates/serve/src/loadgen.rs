//! Closed- and open-loop load generation against a running server.
//!
//! * **Closed loop** — `concurrency` connections, each firing its next
//!   request the moment the previous response lands. Measures the server's
//!   sustainable throughput at a fixed concurrency level.
//! * **Open loop** — requests are *scheduled* at a fixed aggregate rate
//!   (split across the connections) and latency is measured **from the
//!   scheduled send time**, not the actual one. A server that stalls
//!   therefore accrues queueing delay in the recorded tail instead of
//!   silently slowing the generator down (the classic coordinated-omission
//!   correction).
//!
//! Every worker replays the same request — a seeded unit-disk topology
//! generated client-side once — so a run with caching enabled measures the
//! cache-warm hot path, and `no_cache` measures full recomputes. The
//! report lands in [`LoadReport`], which renders itself as the JSON object
//! CI stores as `BENCH_serve.json`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pacds_core::{CdsConfig, Policy};
use pacds_geom::Rect;
use pacds_graph::gen;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::client::{Client, ClientError};
use crate::protocol::{ErrorCode, FLAG_NO_CACHE};

/// Arrival discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Fire-on-response at fixed concurrency.
    Closed,
    /// Fixed aggregate arrival rate (requests/second).
    Open {
        /// Target request rate across all connections.
        rate: f64,
    },
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent connections.
    pub concurrency: usize,
    /// Measurement duration.
    pub duration: Duration,
    /// Arrival discipline.
    pub mode: Mode,
    /// CDS configuration each request carries.
    pub cds: CdsConfig,
    /// Topology size.
    pub n: usize,
    /// Unit-disk radius.
    pub radius: f64,
    /// Arena side.
    pub side: f64,
    /// Placement seed.
    pub seed: u64,
    /// Send [`FLAG_NO_CACHE`] (measure full recomputes).
    pub no_cache: bool,
    /// Per-request deadline in ms (0 = none).
    pub deadline_ms: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7311".into(),
            concurrency: 8,
            duration: Duration::from_secs(10),
            mode: Mode::Closed,
            cds: CdsConfig::paper(Policy::Degree),
            n: 200,
            radius: 15.0,
            side: 100.0,
            seed: 1,
            no_cache: false,
            deadline_ms: 0,
        }
    }
}

/// Aggregated results of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Completed requests (successful CDS responses).
    pub requests: u64,
    /// Cache hits among them (server-reported flag).
    pub cache_hits: u64,
    /// Typed `Rejected` responses (backpressure).
    pub rejected: u64,
    /// Typed `DeadlineExceeded` responses.
    pub deadline_exceeded: u64,
    /// Other typed wire errors + decode failures — protocol errors.
    pub protocol_errors: u64,
    /// Socket-level failures (reconnects).
    pub io_errors: u64,
    /// Wall-clock measurement window in seconds.
    pub duration_s: f64,
    /// Successful requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles over successful requests, microseconds.
    pub p50_us: f64,
    /// 99th percentile latency (µs).
    pub p99_us: f64,
    /// 99.9th percentile latency (µs).
    pub p999_us: f64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Maximum observed latency (µs).
    pub max_us: f64,
    /// Echo of the run shape for the JSON artifact.
    pub concurrency: usize,
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// Topology size requested.
    pub n: usize,
    /// Whether the cache was bypassed.
    pub no_cache: bool,
}

impl LoadReport {
    /// Renders the report as a single JSON object (the `BENCH_serve.json`
    /// schema). Hand-rolled: every field is a number/bool/short string.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"bench\":\"serve_loadgen\",\"mode\":\"{}\",\"concurrency\":{},",
                "\"n\":{},\"no_cache\":{},\"duration_s\":{:.3},\"requests\":{},",
                "\"throughput_rps\":{:.1},\"cache_hits\":{},\"rejected\":{},",
                "\"deadline_exceeded\":{},\"protocol_errors\":{},\"io_errors\":{},",
                "\"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},",
                "\"mean_us\":{:.1},\"max_us\":{:.1}}}"
            ),
            self.mode,
            self.concurrency,
            self.n,
            self.no_cache,
            self.duration_s,
            self.requests,
            self.throughput_rps,
            self.cache_hits,
            self.rejected,
            self.deadline_exceeded,
            self.protocol_errors,
            self.io_errors,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.mean_us,
            self.max_us,
        )
    }
}

#[derive(Default)]
struct WorkerTotals {
    requests: u64,
    cache_hits: u64,
    rejected: u64,
    deadline_exceeded: u64,
    protocol_errors: u64,
    io_errors: u64,
    latencies_ns: Vec<u64>,
}

/// Runs the load and aggregates the report. Blocks for `cfg.duration`
/// plus connection teardown.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadReport, ClientError> {
    // Generate the request topology once, client-side, deterministically.
    let bounds = Rect::square(cfg.side);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, cfg.n);
    let g = gen::unit_disk(bounds, cfg.radius, &pts);
    let edges: Arc<Vec<(u32, u32)>> = Arc::new(g.edges().collect());
    let n = g.n() as u32;
    let flags = if cfg.no_cache { FLAG_NO_CACHE } else { 0 };

    // Fail fast (and warm the cache) with one synchronous request.
    let mut probe = Client::connect(&cfg.addr)?;
    probe.compute_cds(&cfg.cds, n, &edges, None, flags, 0)?;
    drop(probe);

    let stop = Arc::new(AtomicBool::new(false));
    let started = Arc::new(AtomicU64::new(0)); // workers that finished connecting
    let workers = cfg.concurrency.max(1);
    let per_conn_interval = match cfg.mode {
        Mode::Closed => None,
        Mode::Open { rate } => {
            let per = rate / workers as f64;
            Some(Duration::from_secs_f64(1.0 / per.max(1e-9)))
        }
    };

    let mut handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let addr = cfg.addr.clone();
        let cds = cfg.cds;
        let edges = Arc::clone(&edges);
        let stop = Arc::clone(&stop);
        let started = Arc::clone(&started);
        let deadline_ms = cfg.deadline_ms;
        handles.push(std::thread::spawn(move || {
            let mut totals = WorkerTotals::default();
            let mut client = match Client::connect(&addr) {
                Ok(c) => Some(c),
                Err(_) => {
                    totals.io_errors += 1;
                    None
                }
            };
            started.fetch_add(1, Ordering::SeqCst);
            // Spread open-loop ticks across workers.
            let mut next_tick = per_conn_interval
                .map(|iv| Instant::now() + iv.mul_f64(w as f64 / workers as f64));
            while !stop.load(Ordering::Relaxed) {
                let scheduled = match next_tick {
                    None => Instant::now(),
                    Some(tick) => {
                        let now = Instant::now();
                        if tick > now {
                            std::thread::sleep(tick - now);
                        }
                        next_tick = Some(tick + per_conn_interval.unwrap());
                        tick
                    }
                };
                let Some(c) = client.as_mut() else {
                    // Lost the connection; try to re-establish.
                    match Client::connect(&addr) {
                        Ok(c) => client = Some(c),
                        Err(_) => {
                            totals.io_errors += 1;
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                    continue;
                };
                match c.compute_cds(&cds, n, &edges, None, flags, deadline_ms) {
                    Ok(result) => {
                        totals.requests += 1;
                        totals.cache_hits += u64::from(result.cache_hit);
                        totals
                            .latencies_ns
                            .push(scheduled.elapsed().as_nanos() as u64);
                    }
                    Err(ClientError::Wire(e)) => match e.code {
                        ErrorCode::Rejected => totals.rejected += 1,
                        ErrorCode::DeadlineExceeded => totals.deadline_exceeded += 1,
                        _ => totals.protocol_errors += 1,
                    },
                    Err(ClientError::Io(_)) => {
                        totals.io_errors += 1;
                        client = None;
                    }
                    Err(_) => totals.protocol_errors += 1,
                }
            }
            totals
        }));
    }

    // Start timing once every worker is connected (or has failed once).
    while (started.load(Ordering::SeqCst) as usize) < workers {
        std::thread::sleep(Duration::from_millis(1));
    }
    let t0 = Instant::now();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let elapsed = t0.elapsed();

    let mut all = WorkerTotals::default();
    for h in handles {
        let t = h.join().expect("loadgen worker panicked");
        all.requests += t.requests;
        all.cache_hits += t.cache_hits;
        all.rejected += t.rejected;
        all.deadline_exceeded += t.deadline_exceeded;
        all.protocol_errors += t.protocol_errors;
        all.io_errors += t.io_errors;
        all.latencies_ns.extend(t.latencies_ns);
    }
    all.latencies_ns.sort_unstable();
    let pct = |q: f64| -> f64 {
        if all.latencies_ns.is_empty() {
            return 0.0;
        }
        let idx = ((all.latencies_ns.len() as f64 - 1.0) * q).round() as usize;
        all.latencies_ns[idx] as f64 / 1_000.0
    };
    let mean_us = if all.latencies_ns.is_empty() {
        0.0
    } else {
        all.latencies_ns.iter().sum::<u64>() as f64 / all.latencies_ns.len() as f64 / 1_000.0
    };
    let duration_s = elapsed.as_secs_f64();
    Ok(LoadReport {
        requests: all.requests,
        cache_hits: all.cache_hits,
        rejected: all.rejected,
        deadline_exceeded: all.deadline_exceeded,
        protocol_errors: all.protocol_errors,
        io_errors: all.io_errors,
        duration_s,
        throughput_rps: all.requests as f64 / duration_s.max(1e-9),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
        mean_us,
        max_us: all.latencies_ns.last().map_or(0.0, |&v| v as f64 / 1_000.0),
        concurrency: workers,
        mode: match cfg.mode {
            Mode::Closed => "closed",
            Mode::Open { .. } => "open",
        },
        n: cfg.n,
        no_cache: cfg.no_cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape() {
        let r = LoadReport {
            requests: 1000,
            cache_hits: 990,
            rejected: 3,
            deadline_exceeded: 0,
            protocol_errors: 0,
            io_errors: 0,
            duration_s: 2.0,
            throughput_rps: 500.0,
            p50_us: 80.0,
            p99_us: 200.0,
            p999_us: 450.0,
            mean_us: 95.5,
            max_us: 900.0,
            concurrency: 8,
            mode: "closed",
            n: 200,
            no_cache: false,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"bench\":\"serve_loadgen\"",
            "\"throughput_rps\":500.0",
            "\"p99_us\":200.0",
            "\"p999_us\":450.0",
            "\"requests\":1000",
            "\"mode\":\"closed\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
