//! Closed- and open-loop load generation against a running server.
//!
//! * **Closed loop** — `concurrency` connections, each firing its next
//!   request the moment the previous response lands. Measures the server's
//!   sustainable throughput at a fixed concurrency level.
//! * **Open loop** — requests are *scheduled* at a fixed aggregate rate
//!   (split across the connections) and latency is measured **from the
//!   scheduled send time**, not the actual one. A server that stalls
//!   therefore accrues queueing delay in the recorded tail instead of
//!   silently slowing the generator down (the classic coordinated-omission
//!   correction).
//!
//! Every worker replays the same request — a seeded unit-disk topology
//! generated client-side once — so a run with caching enabled measures the
//! cache-warm hot path, and `no_cache` measures full recomputes. The
//! report lands in [`LoadReport`], which renders itself as the JSON object
//! CI stores as `BENCH_serve.json`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pacds_core::{CdsConfig, Policy};
use pacds_geom::Rect;
use pacds_graph::gen;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::client::{Client, ClientError};
use crate::protocol::{ErrorCode, GenComputeRequest, WireEvent, FLAG_NO_CACHE};

/// Name of the churn graph the mixed workload mutates and queries.
const MIX_GRAPH: &str = "loadgen-mix";

/// Arrival discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Fire-on-response at fixed concurrency.
    Closed,
    /// Fixed aggregate arrival rate (requests/second).
    Open {
        /// Target request rate across all connections.
        rate: f64,
    },
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent connections.
    pub concurrency: usize,
    /// Measurement duration.
    pub duration: Duration,
    /// Arrival discipline.
    pub mode: Mode,
    /// CDS configuration each request carries.
    pub cds: CdsConfig,
    /// Topology size.
    pub n: usize,
    /// Unit-disk radius.
    pub radius: f64,
    /// Arena side.
    pub side: f64,
    /// Placement seed.
    pub seed: u64,
    /// Send [`FLAG_NO_CACHE`] (measure full recomputes).
    pub no_cache: bool,
    /// Per-request deadline in ms (0 = none).
    pub deadline_ms: u32,
    /// Every Nth request per worker is a Mutate batch against a shared
    /// churn graph (0 = pure compute workload). Requires a shardable
    /// `cds` configuration (the graph open is rejected otherwise).
    pub mutate_every: usize,
    /// Every Nth request per worker is a QueryTile against the shared
    /// churn graph (0 = never).
    pub query_every: usize,
    /// Cluster mode's key diversity: when > 0, compute slots send
    /// `GenCompute` frames cycling through this many placement seeds
    /// (`seed .. seed + gen_seeds`) instead of replaying one `ComputeCds`.
    /// One request replayed forever hashes to one ring position — i.e. one
    /// backend; a seed wheel spreads the keyspace across the whole ring,
    /// which is what an aggregate-throughput measurement needs. All seeds
    /// are warmed before the clock starts, so the run stays cache-warm.
    pub gen_seeds: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7311".into(),
            concurrency: 8,
            duration: Duration::from_secs(10),
            mode: Mode::Closed,
            cds: CdsConfig::paper(Policy::Degree),
            n: 200,
            radius: 15.0,
            side: 100.0,
            seed: 1,
            no_cache: false,
            deadline_ms: 0,
            mutate_every: 0,
            query_every: 0,
            gen_seeds: 0,
        }
    }
}

/// Latency summary for one frame kind within a mixed run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KindStats {
    /// Successful requests of this kind.
    pub requests: u64,
    /// Median latency (µs).
    pub p50_us: f64,
    /// 99th percentile latency (µs).
    pub p99_us: f64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Maximum observed latency (µs).
    pub max_us: f64,
}

impl KindStats {
    fn from_latencies(lat: &mut [u64]) -> Self {
        lat.sort_unstable();
        if lat.is_empty() {
            return Self::default();
        }
        let pct = |q: f64| {
            let idx = ((lat.len() as f64 - 1.0) * q).round() as usize;
            lat[idx] as f64 / 1_000.0
        };
        Self {
            requests: lat.len() as u64,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            mean_us: lat.iter().sum::<u64>() as f64 / lat.len() as f64 / 1_000.0,
            max_us: *lat.last().unwrap() as f64 / 1_000.0,
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"requests\":{},\"p50_us\":{:.1},\"p99_us\":{:.1},\"mean_us\":{:.1},\"max_us\":{:.1}}}",
            self.requests, self.p50_us, self.p99_us, self.mean_us, self.max_us
        )
    }
}

/// Aggregated results of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Completed requests (successful CDS responses).
    pub requests: u64,
    /// Cache hits among them (server-reported flag).
    pub cache_hits: u64,
    /// Typed `Rejected` responses (backpressure).
    pub rejected: u64,
    /// Typed `DeadlineExceeded` responses.
    pub deadline_exceeded: u64,
    /// Other typed wire errors + decode failures — protocol errors.
    pub protocol_errors: u64,
    /// Socket-level failures (reconnects).
    pub io_errors: u64,
    /// Wall-clock measurement window in seconds.
    pub duration_s: f64,
    /// Successful requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles over successful requests, microseconds.
    pub p50_us: f64,
    /// 99th percentile latency (µs).
    pub p99_us: f64,
    /// 99.9th percentile latency (µs).
    pub p999_us: f64,
    /// Mean latency (µs).
    pub mean_us: f64,
    /// Maximum observed latency (µs).
    pub max_us: f64,
    /// Echo of the run shape for the JSON artifact.
    pub concurrency: usize,
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// Topology size requested.
    pub n: usize,
    /// Whether the cache was bypassed.
    pub no_cache: bool,
    /// ComputeCds latency breakdown (equal to the overall numbers in a
    /// pure compute run).
    pub compute: KindStats,
    /// Mutate latency breakdown (all-zero unless `mutate_every` was set).
    pub mutate: KindStats,
    /// QueryTile latency breakdown (all-zero unless `query_every` was set).
    pub query: KindStats,
}

impl LoadReport {
    /// Renders the report as a single JSON object (the `BENCH_serve.json`
    /// schema). Hand-rolled: every field is a number/bool/short string.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"bench\":\"serve_loadgen\",\"mode\":\"{}\",\"concurrency\":{},",
                "\"n\":{},\"no_cache\":{},\"duration_s\":{:.3},\"requests\":{},",
                "\"throughput_rps\":{:.1},\"cache_hits\":{},\"rejected\":{},",
                "\"deadline_exceeded\":{},\"protocol_errors\":{},\"io_errors\":{},",
                "\"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},",
                "\"mean_us\":{:.1},\"max_us\":{:.1},",
                "\"by_kind\":{{\"compute_cds\":{},\"mutate\":{},\"query_tile\":{}}}}}"
            ),
            self.mode,
            self.concurrency,
            self.n,
            self.no_cache,
            self.duration_s,
            self.requests,
            self.throughput_rps,
            self.cache_hits,
            self.rejected,
            self.deadline_exceeded,
            self.protocol_errors,
            self.io_errors,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.mean_us,
            self.max_us,
            self.compute.to_json(),
            self.mutate.to_json(),
            self.query.to_json(),
        )
    }
}

/// Frame kinds the mixed workload interleaves.
#[derive(Clone, Copy, PartialEq)]
enum ReqKind {
    Compute = 0,
    Mutate = 1,
    Query = 2,
}

#[derive(Default)]
struct WorkerTotals {
    requests: u64,
    cache_hits: u64,
    rejected: u64,
    deadline_exceeded: u64,
    protocol_errors: u64,
    io_errors: u64,
    latencies_ns: Vec<u64>,
    /// Per-kind latencies, indexed by [`ReqKind`].
    kind_ns: [Vec<u64>; 3],
}

/// The seed-wheel `GenCompute` request for one seed (cluster mode's
/// key-diverse compute slot).
fn gen_request(cfg: &LoadgenConfig, seed: u64, flags: u8) -> GenComputeRequest {
    GenComputeRequest {
        flags,
        deadline_ms: 0,
        cfg: cfg.cds,
        n: cfg.n as u32,
        seed,
        radius: cfg.radius,
        side: cfg.side,
        connected: false,
        energy_seed: None,
    }
}

/// Runs the load and aggregates the report. Blocks for `cfg.duration`
/// plus connection teardown.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadReport, ClientError> {
    // Generate the request topology once, client-side, deterministically.
    let bounds = Rect::square(cfg.side);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let pts = pacds_geom::placement::uniform_points(&mut rng, bounds, cfg.n);
    let g = gen::unit_disk(bounds, cfg.radius, &pts);
    let edges: Arc<Vec<(u32, u32)>> = Arc::new(g.edges().collect());
    let n = g.n() as u32;
    let flags = if cfg.no_cache { FLAG_NO_CACHE } else { 0 };

    // Fail fast (and warm the cache) with one synchronous request. In
    // seed-wheel mode, warm every seed the workers will cycle through so
    // the measured window is cache-warm on every backend of a cluster.
    let mut probe = Client::connect(&cfg.addr)?;
    probe.compute_cds(&cfg.cds, n, &edges, None, flags, 0)?;
    for s in 0..cfg.gen_seeds as u64 {
        probe.gen_compute(&gen_request(cfg, cfg.seed + s, flags))?;
    }

    // A mixed workload additionally needs a shared churn graph to mutate
    // and query; open it (and learn its tile count) before the clock runs.
    let mixed = cfg.mutate_every > 0 || cfg.query_every > 0;
    let mix_tiles = if mixed {
        let flat: Vec<(f64, f64)> = pts.iter().map(|p| (p.x, p.y)).collect();
        let energy = vec![1_000u64; flat.len()];
        let opened = probe.open_graph(
            MIX_GRAPH,
            &cfg.cds,
            4,
            cfg.radius,
            (0.0, 0.0, cfg.side, cfg.side),
            &flat,
            &energy,
        )?;
        opened.tiles.max(1)
    } else {
        0
    };
    drop(probe);

    let stop = Arc::new(AtomicBool::new(false));
    let started = Arc::new(AtomicU64::new(0)); // workers that finished connecting
    let workers = cfg.concurrency.max(1);
    let per_conn_interval = match cfg.mode {
        Mode::Closed => None,
        Mode::Open { rate } => {
            let per = rate / workers as f64;
            Some(Duration::from_secs_f64(1.0 / per.max(1e-9)))
        }
    };

    let mut handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let addr = cfg.addr.clone();
        let cds = cfg.cds;
        let edges = Arc::clone(&edges);
        let stop = Arc::clone(&stop);
        let started = Arc::clone(&started);
        let deadline_ms = cfg.deadline_ms;
        let (mutate_every, query_every) = (cfg.mutate_every, cfg.query_every);
        let (side, graph_n) = (cfg.side, cfg.n as u32);
        let (gen_seeds, seed0) = (cfg.gen_seeds, cfg.seed);
        let gen_cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let mut totals = WorkerTotals::default();
            let mut client = match Client::connect(&addr) {
                Ok(c) => Some(c),
                Err(_) => {
                    totals.io_errors += 1;
                    None
                }
            };
            started.fetch_add(1, Ordering::SeqCst);
            let mut seq = 0usize;
            // Spread open-loop ticks across workers.
            let mut next_tick = per_conn_interval
                .map(|iv| Instant::now() + iv.mul_f64(w as f64 / workers as f64));
            while !stop.load(Ordering::Relaxed) {
                let scheduled = match next_tick {
                    None => Instant::now(),
                    Some(tick) => {
                        let now = Instant::now();
                        if tick > now {
                            std::thread::sleep(tick - now);
                        }
                        next_tick = Some(tick + per_conn_interval.unwrap());
                        tick
                    }
                };
                let Some(c) = client.as_mut() else {
                    // Lost the connection; try to re-establish.
                    match Client::connect(&addr) {
                        Ok(c) => client = Some(c),
                        Err(_) => {
                            totals.io_errors += 1;
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                    continue;
                };
                // Mixed workload: every Nth slot per worker is a Mutate /
                // QueryTile; everything else stays ComputeCds. `seq` is
                // per-worker, so the mix ratio is exact, not stochastic.
                seq += 1;
                let kind = if mutate_every > 0 && seq.is_multiple_of(mutate_every) {
                    ReqKind::Mutate
                } else if query_every > 0 && seq.is_multiple_of(query_every) {
                    ReqKind::Query
                } else {
                    ReqKind::Compute
                };
                let mut cache_hit = false;
                let sent = match kind {
                    ReqKind::Compute if gen_seeds > 0 => {
                        let mut req = gen_request(&gen_cfg, seed0 + (seq % gen_seeds) as u64, flags);
                        req.deadline_ms = deadline_ms;
                        c.gen_compute(&req).map(|r| cache_hit = r.cache_hit)
                    }
                    ReqKind::Compute => c
                        .compute_cds(&cds, n, &edges, None, flags, deadline_ms)
                        .map(|r| cache_hit = r.cache_hit),
                    ReqKind::Mutate => {
                        // An always-valid move: shuffle one owned node to a
                        // deterministic in-bounds position.
                        let node = (w as u32 * 31 + seq as u32) % graph_n;
                        let f = ((seq * 61 + w * 17) % 997) as f64 / 997.0;
                        let ev = [WireEvent::Move {
                            node,
                            x: f * side,
                            y: (1.0 - f) * side,
                        }];
                        c.mutate(MIX_GRAPH, &ev).map(drop)
                    }
                    ReqKind::Query => {
                        let tile = (seq % mix_tiles as usize) as u32;
                        c.query_tile(MIX_GRAPH, tile).map(drop)
                    }
                };
                match sent {
                    Ok(()) => {
                        totals.requests += 1;
                        totals.cache_hits += u64::from(cache_hit);
                        let ns = scheduled.elapsed().as_nanos() as u64;
                        totals.latencies_ns.push(ns);
                        totals.kind_ns[kind as usize].push(ns);
                    }
                    Err(ClientError::Wire(e)) => match e.code {
                        ErrorCode::Rejected => totals.rejected += 1,
                        ErrorCode::DeadlineExceeded => totals.deadline_exceeded += 1,
                        _ => totals.protocol_errors += 1,
                    },
                    Err(e) if e.is_connection_lost() => {
                        // The client marked itself stale and re-dials once
                        // on the next request; keep it.
                        totals.io_errors += 1;
                    }
                    Err(ClientError::Io(_)) => {
                        totals.io_errors += 1;
                        client = None;
                    }
                    Err(_) => totals.protocol_errors += 1,
                }
            }
            totals
        }));
    }

    // Start timing once every worker is connected (or has failed once).
    while (started.load(Ordering::SeqCst) as usize) < workers {
        std::thread::sleep(Duration::from_millis(1));
    }
    let t0 = Instant::now();
    std::thread::sleep(cfg.duration);
    stop.store(true, Ordering::Relaxed);
    let elapsed = t0.elapsed();

    let mut all = WorkerTotals::default();
    for h in handles {
        let t = h.join().expect("loadgen worker panicked");
        all.requests += t.requests;
        all.cache_hits += t.cache_hits;
        all.rejected += t.rejected;
        all.deadline_exceeded += t.deadline_exceeded;
        all.protocol_errors += t.protocol_errors;
        all.io_errors += t.io_errors;
        all.latencies_ns.extend(t.latencies_ns);
        for (dst, src) in all.kind_ns.iter_mut().zip(t.kind_ns) {
            dst.extend(src);
        }
    }
    if mixed {
        // Best-effort cleanup so repeated runs against one server reopen
        // the mix graph from a fresh state.
        if let Ok(mut c) = Client::connect(&cfg.addr) {
            let _ = c.close_graph(MIX_GRAPH);
        }
    }
    let [mut compute_ns, mut mutate_ns, mut query_ns] = all.kind_ns;
    all.latencies_ns.sort_unstable();
    let pct = |q: f64| -> f64 {
        if all.latencies_ns.is_empty() {
            return 0.0;
        }
        let idx = ((all.latencies_ns.len() as f64 - 1.0) * q).round() as usize;
        all.latencies_ns[idx] as f64 / 1_000.0
    };
    let mean_us = if all.latencies_ns.is_empty() {
        0.0
    } else {
        all.latencies_ns.iter().sum::<u64>() as f64 / all.latencies_ns.len() as f64 / 1_000.0
    };
    let duration_s = elapsed.as_secs_f64();
    Ok(LoadReport {
        requests: all.requests,
        cache_hits: all.cache_hits,
        rejected: all.rejected,
        deadline_exceeded: all.deadline_exceeded,
        protocol_errors: all.protocol_errors,
        io_errors: all.io_errors,
        duration_s,
        throughput_rps: all.requests as f64 / duration_s.max(1e-9),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        p999_us: pct(0.999),
        mean_us,
        max_us: all.latencies_ns.last().map_or(0.0, |&v| v as f64 / 1_000.0),
        concurrency: workers,
        mode: match cfg.mode {
            Mode::Closed => "closed",
            Mode::Open { .. } => "open",
        },
        n: cfg.n,
        no_cache: cfg.no_cache,
        compute: KindStats::from_latencies(&mut compute_ns),
        mutate: KindStats::from_latencies(&mut mutate_ns),
        query: KindStats::from_latencies(&mut query_ns),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape() {
        let r = LoadReport {
            requests: 1000,
            cache_hits: 990,
            rejected: 3,
            deadline_exceeded: 0,
            protocol_errors: 0,
            io_errors: 0,
            duration_s: 2.0,
            throughput_rps: 500.0,
            p50_us: 80.0,
            p99_us: 200.0,
            p999_us: 450.0,
            mean_us: 95.5,
            max_us: 900.0,
            concurrency: 8,
            mode: "closed",
            n: 200,
            no_cache: false,
            compute: KindStats {
                requests: 900,
                p50_us: 75.0,
                p99_us: 190.0,
                mean_us: 90.0,
                max_us: 850.0,
            },
            mutate: KindStats {
                requests: 50,
                p50_us: 300.0,
                p99_us: 700.0,
                mean_us: 340.0,
                max_us: 900.0,
            },
            query: KindStats {
                requests: 50,
                p50_us: 40.0,
                p99_us: 90.0,
                mean_us: 45.0,
                max_us: 120.0,
            },
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"bench\":\"serve_loadgen\"",
            "\"throughput_rps\":500.0",
            "\"p99_us\":200.0",
            "\"p999_us\":450.0",
            "\"requests\":1000",
            "\"mode\":\"closed\"",
            "\"by_kind\":{\"compute_cds\":{\"requests\":900",
            "\"mutate\":{\"requests\":50,\"p50_us\":300.0",
            "\"query_tile\":{\"requests\":50,\"p50_us\":40.0",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn kind_stats_handles_empty_and_computes_percentiles() {
        assert_eq!(KindStats::from_latencies(&mut Vec::new()), KindStats::default());
        let mut lat: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        let s = KindStats::from_latencies(&mut lat);
        assert_eq!(s.requests, 100);
        assert!((s.p50_us - 51.0).abs() < 1.5, "p50 ~ median, got {}", s.p50_us);
        assert!((s.p99_us - 99.0).abs() < 1.5, "p99 near top, got {}", s.p99_us);
        assert_eq!(s.max_us, 100.0);
    }
}
