//! Request handling: one payload in, one response frame out.
//!
//! [`handle_payload`] is deliberately a pure function over byte buffers —
//! no sockets, no threads — so the server's worker loop, the conformance
//! harness, and the workspace-level zero-allocation test all drive the
//! exact same code. A worker owns one [`WorkerScratch`] for its lifetime;
//! on the cache-warm compute path every buffer the handler touches is
//! retained there, so steady-state serving performs **zero allocations**
//! (pinned by `tests/zero_alloc.rs` at the workspace root).
//!
//! ## Cache keying
//!
//! Results are keyed by a 128-bit FNV-1a digest over a domain tag, the
//! 4-byte config encoding, the energy assignment, and the **canonical**
//! edge list (`pacds_graph::digest::canonicalize_edges` — flipped to
//! `u < v`, sorted, deduplicated, in place). Two requests describing the
//! same topology in different wire orders therefore share a cache entry.
//! Generated topologies are keyed by their generation parameters instead,
//! which is cheaper and equally canonical (the generator is deterministic).
//!
//! The cache stores complete response frames with the `cache_hit` byte
//! zeroed; a hit copies the frame into the caller's buffer and patches
//! that single byte ([`protocol::CACHE_FLAG_PAYLOAD_OFFSET`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pacds_core::{CdsConfig, CdsWorkspace};
use pacds_geom::{Point2, Rect};
use pacds_shard::{check_shardable, ChurnEngine, ChurnEvent, ShardSpec, ShardedCds, REQUIRED_HALO};
use pacds_graph::digest::{DigestSink, Fnv1a128};

use crate::keys;
use pacds_graph::{algo, gen, Graph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::cache::ShardedCache;
use crate::hub::SubscriberHub;
use crate::protocol::{
    self, begin_frame, encode_error, end_frame, ComputeCdsRequest, DecodeError, ErrorCode,
    GenComputeRequest, OpenGraphRequest, RequestKind, ResponseKind, StatsFormat, SubscribeAck,
    WireEvent, WireWrite, CACHE_FLAG_PAYLOAD_OFFSET, FLAG_NO_CACHE, LEN_PREFIX, PROTOCOL_VERSION,
    SUB_FLIPS,
};

/// Tile results are keyed per (graph uid, tile, version) — a serve-local
/// space, so the tag stays here; the compute/gen/graph-name tags live in
/// [`keys`] where the cluster coordinator shares them.
const KEY_TAG_TILE: &[u8] = b"pacds.serve.tile.v1";

/// Maximum concurrently open churn graphs per server.
pub const MAX_OPEN_GRAPHS: usize = 64;

/// Bounded resample attempts for `connected` topology generation (matches
/// the CLI's behaviour).
const CONNECT_ATTEMPTS: usize = 200;

/// Always-on server counters (independent of the `obs` feature); these are
/// what the Stats request reports alongside the cache statistics.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests accepted into a worker (any kind).
    pub requests: AtomicU64,
    /// Compute-CDS requests.
    pub compute: AtomicU64,
    /// Generate-and-compute requests.
    pub gen_compute: AtomicU64,
    /// Stats probes.
    pub stats_probes: AtomicU64,
    /// Pings.
    pub pings: AtomicU64,
    /// Connections refused with `Rejected` under backpressure.
    pub rejected: AtomicU64,
    /// Frame/parse failures answered with a typed error.
    pub protocol_errors: AtomicU64,
    /// Requests answered with `BadInput`.
    pub bad_input: AtomicU64,
    /// Requests answered with `DeadlineExceeded`.
    pub deadline_exceeded: AtomicU64,
    /// Churn graphs opened.
    pub graphs_opened: AtomicU64,
    /// Churn graphs closed.
    pub graphs_closed: AtomicU64,
    /// Mutate batches applied (fully or up to a rejection).
    pub mutations: AtomicU64,
    /// Individual mutation events applied.
    pub mutation_events: AtomicU64,
    /// Mutation events rejected with `MutationRejected`.
    pub mutation_rejected: AtomicU64,
    /// Tile queries served (cold or warm).
    pub tile_queries: AtomicU64,
}

impl ServerStats {
    /// The counters as stable `(name, value)` pairs, in wire order.
    pub fn entries(&self, cache: &ShardedCache) -> [(&'static str, u64); 21] {
        let c = cache.stats();
        let v = |a: &AtomicU64| a.load(Ordering::Relaxed);
        [
            ("requests", v(&self.requests)),
            ("compute", v(&self.compute)),
            ("gen_compute", v(&self.gen_compute)),
            ("stats_probes", v(&self.stats_probes)),
            ("pings", v(&self.pings)),
            ("rejected", v(&self.rejected)),
            ("protocol_errors", v(&self.protocol_errors)),
            ("bad_input", v(&self.bad_input)),
            ("deadline_exceeded", v(&self.deadline_exceeded)),
            ("graphs_opened", v(&self.graphs_opened)),
            ("graphs_closed", v(&self.graphs_closed)),
            ("mutations", v(&self.mutations)),
            ("mutation_events", v(&self.mutation_events)),
            ("mutation_rejected", v(&self.mutation_rejected)),
            ("tile_queries", v(&self.tile_queries)),
            ("cache_hits", c.hits),
            ("cache_misses", c.misses),
            ("cache_evictions", c.evictions),
            ("cache_uncacheable", c.uncacheable),
            ("cache_entries", c.entries),
            ("cache_bytes", c.bytes),
        ]
    }
}

/// One open churn graph: the persistent engine plus the cache-invalidation
/// state. `uid` is unique per *open* (a close + reopen under the same name
/// gets a fresh uid, so stale cache entries can never be served), and
/// `tile_versions[t]` increments every time tile `t` is re-solved — tile
/// cache keys fold `(uid, tile, version)`, so a mutation invalidates
/// exactly its dirty tiles' cached responses and nothing else. Stale
/// entries age out of the LRU; no explicit removal is needed.
struct OpenGraph {
    engine: ChurnEngine,
    uid: u64,
    tile_versions: Vec<u64>,
    /// Mutate-triggered refreshes on this open (the flip-event sequence
    /// number; the open itself performs refresh 0).
    refreshes: u64,
}

/// The named-graph registry. One mutex over the whole map: churn graphs
/// are stateful and order-sensitive, so mutations on one graph serialise
/// anyway; the map is small (≤ [`MAX_OPEN_GRAPHS`]).
#[derive(Default)]
pub struct GraphRegistry {
    inner: Mutex<HashMap<String, OpenGraph>>,
    next_uid: AtomicU64,
}

impl GraphRegistry {
    /// Open graph count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry poisoned").len()
    }

    /// Whether no graphs are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for GraphRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphRegistry")
            .field("open", &self.len())
            .finish()
    }
}

/// When compute requests are routed through the sharded engine
/// ([`pacds_shard::ShardedCds`]) instead of the whole-graph workspace.
///
/// Both paths are bit-identical for shardable configurations (pinned by
/// the conformance suite), so the routing decision never changes response
/// bytes — cache entries are shared across modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// Shard when the topology has at least [`ShardPolicy::threshold`]
    /// nodes and the configuration is shardable.
    #[default]
    Auto,
    /// Shard every shardable request regardless of size (unshardable
    /// configurations silently fall back to the whole-graph workspace).
    Always,
    /// Never shard.
    Never,
}

impl ShardMode {
    /// Parses the CLI spelling (`auto` / `always` / `never`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(Self::Auto),
            "always" => Some(Self::Always),
            "never" => Some(Self::Never),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Always => "always",
            Self::Never => "never",
        }
    }
}

/// Server-wide sharded-compute routing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// When to route through the sharded engine.
    pub mode: ShardMode,
    /// Minimum node count for [`ShardMode::Auto`] to shard.
    pub threshold: usize,
    /// Shard count handed to the engine (`0` = scale with `n`).
    pub shards: usize,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        Self {
            mode: ShardMode::Auto,
            threshold: 20_000,
            shards: 0,
        }
    }
}

/// Shared (immutable / atomic) server state, one per server instance.
#[derive(Debug)]
pub struct ServeState {
    /// The sharded LRU result cache.
    pub cache: ShardedCache,
    /// Always-on counters.
    pub stats: ServerStats,
    /// Maximum accepted frame payload length.
    pub max_frame_len: u32,
    /// Sharded-compute routing.
    pub shard: ShardPolicy,
    /// Named persistent churn graphs.
    pub graphs: GraphRegistry,
    /// Telemetry push subscribers.
    pub hub: SubscriberHub,
    /// Process start, for the `uptime_s` health field.
    pub started: Instant,
    /// Connections accepted but not yet picked up by a worker (the accept
    /// queue's fill level — `sync_channel` has no `len()`, so the acceptor
    /// increments and workers decrement).
    pub queue_depth: AtomicU64,
    /// Worker-pool size, set once at server start (0 for bare handler
    /// tests that never spawn a pool).
    pub workers: AtomicU64,
}

impl ServeState {
    /// State with a cache budget of `cache_bytes`.
    pub fn new(cache_bytes: usize) -> Self {
        Self {
            cache: ShardedCache::new(cache_bytes),
            stats: ServerStats::default(),
            max_frame_len: protocol::DEFAULT_MAX_FRAME_LEN,
            shard: ShardPolicy::default(),
            graphs: GraphRegistry::default(),
            hub: SubscriberHub::default(),
            started: Instant::now(),
            queue_depth: AtomicU64::new(0),
            workers: AtomicU64::new(0),
        }
    }

    /// All Stats-frame entries: the legacy counters plus the cheap health
    /// fields appended at the tail. The wire counter list is `k`-counted,
    /// so decoders built before the health fields existed skip them
    /// without noticing — pinned by `stats_frame_backward_decodable`.
    pub fn stat_entries(&self) -> Vec<(&'static str, u64)> {
        let mut out = self.stats.entries(&self.cache).to_vec();
        out.push(("uptime_s", self.started.elapsed().as_secs()));
        out.push(("queue_depth", self.queue_depth.load(Ordering::Relaxed)));
        out.push(("open_graphs", self.graphs.len() as u64));
        out.push(("workers", self.workers.load(Ordering::Relaxed)));
        out
    }
}

/// Per-worker retained buffers. Everything the warm path touches lives
/// here and is reused request to request; nothing in this struct is
/// allocated after the buffers reach their steady-state high-water marks.
#[derive(Debug, Default)]
pub struct WorkerScratch {
    /// The retained CDS workspace (itself allocation-free on recompute).
    pub ws: CdsWorkspace,
    /// The retained sharded engine, used when [`ShardPolicy`] routes a
    /// request to it (its verdicts are bit-identical to `ws`).
    sharded: ShardedCds,
    /// Canonicalised edge buffer.
    edges: Vec<(NodeId, NodeId)>,
    /// Energy buffer.
    energy: Vec<u64>,
    /// Rebuilt topology (cold path only).
    graph: Graph,
    /// Generated placements (gen path only).
    points: Vec<Point2>,
}

impl WorkerScratch {
    /// A fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// What the connection loop should do after a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandleOutcome {
    /// Response written; keep the connection.
    KeepOpen,
    /// Response written; framing is unreliable, close after sending.
    Close,
    /// An ack was written and the connection should flip into push mode:
    /// register with [`ServeState::hub`] (the ack already carries `id`)
    /// and drain the subscription queue to the socket until the client
    /// hangs up or the subscriber lags.
    Subscribe {
        /// Hub id the ack frame promised (pre-allocated by the handler).
        id: u64,
        /// Accepted [`protocol::SUB_STATS`] | [`protocol::SUB_FLIPS`].
        flags: u8,
        /// Accepted stats cadence in milliseconds.
        interval_ms: u32,
        /// Flip-event graph filter (`None` = all graphs).
        graph: Option<String>,
    },
}

/// Handles one request payload (`version, kind, body` — the bytes after
/// the length prefix), writing exactly one complete response frame
/// (length prefix included) into `resp`. `received` is when the frame
/// arrived; deadlines are measured from it. Never panics on untrusted
/// bytes; every failure becomes a typed error frame.
pub fn handle_payload(
    state: &ServeState,
    scratch: &mut WorkerScratch,
    payload: &[u8],
    resp: &mut Vec<u8>,
    received: Instant,
) -> HandleOutcome {
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    pacds_obs::inc(pacds_obs::Counter::ServeRequests);
    if payload.len() < 2 {
        return protocol_error(state, resp, ErrorCode::Malformed, "payload shorter than header");
    }
    if payload[0] != PROTOCOL_VERSION {
        return protocol_error(state, resp, ErrorCode::UnsupportedVersion, "unsupported version");
    }
    let Some(kind) = RequestKind::from_wire(payload[1]) else {
        return protocol_error(state, resp, ErrorCode::UnknownKind, "unknown request kind");
    };
    // One trace id per request (NONE unless sampling hits); every span
    // along the request's path — cache lookup, shard dispatch, per-tile
    // solve, merge — carries it, so one JSONL trace line reconstructs
    // where the request spent its time.
    let trace = pacds_obs::next_trace_id();
    let _req_span = pacds_obs::span(trace, pacds_obs::SpanKind::Request, u32::from(payload[1]));
    let body = &payload[2..];
    match kind {
        RequestKind::ComputeCds => handle_compute(state, scratch, body, resp, received, trace),
        RequestKind::GenCompute => handle_gen(state, scratch, body, resp, received, trace),
        RequestKind::Stats => handle_stats(state, body, resp),
        RequestKind::OpenGraph => handle_open_graph(state, body, resp),
        RequestKind::Mutate => handle_mutate(state, body, resp, trace),
        RequestKind::CloseGraph => handle_close_graph(state, body, resp),
        RequestKind::QueryTile => handle_query_tile(state, body, resp),
        RequestKind::Subscribe => handle_subscribe(state, body, resp),
        RequestKind::Ping => {
            state.stats.pings.fetch_add(1, Ordering::Relaxed);
            begin_frame(resp, ResponseKind::Pong as u8);
            end_frame(resp);
            HandleOutcome::KeepOpen
        }
    }
}

fn protocol_error(
    state: &ServeState,
    resp: &mut Vec<u8>,
    code: ErrorCode,
    msg: &str,
) -> HandleOutcome {
    state.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
    pacds_obs::inc(pacds_obs::Counter::ServeProtocolErrors);
    encode_error(resp, code, msg);
    if code.is_connection_fatal() {
        HandleOutcome::Close
    } else {
        HandleOutcome::KeepOpen
    }
}

fn bad_input(state: &ServeState, resp: &mut Vec<u8>, msg: &str) -> HandleOutcome {
    state.stats.bad_input.fetch_add(1, Ordering::Relaxed);
    encode_error(resp, ErrorCode::BadInput, msg);
    HandleOutcome::KeepOpen
}

fn decode_failed(state: &ServeState, resp: &mut Vec<u8>, err: &DecodeError) -> HandleOutcome {
    match err {
        // The frame boundary was consistent but a field was out of range:
        // framing survives, the connection stays usable.
        DecodeError::Bad(what) => bad_input(state, resp, what),
        DecodeError::Truncated => protocol_error(state, resp, ErrorCode::Malformed, "truncated body"),
        DecodeError::Trailing => {
            protocol_error(state, resp, ErrorCode::Malformed, "trailing bytes after body")
        }
    }
}

/// `Some(deadline)` for a non-zero deadline field.
fn deadline_of(received: Instant, deadline_ms: u32) -> Option<Instant> {
    (deadline_ms > 0).then(|| received + Duration::from_millis(u64::from(deadline_ms)))
}

fn deadline_hit(state: &ServeState, resp: &mut Vec<u8>, deadline: Option<Instant>) -> bool {
    if deadline.is_some_and(|d| Instant::now() > d) {
        state.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        pacds_obs::inc(pacds_obs::Counter::ServeDeadlineExceeded);
        encode_error(resp, ErrorCode::DeadlineExceeded, "deadline elapsed");
        true
    } else {
        false
    }
}

fn handle_compute(
    state: &ServeState,
    scratch: &mut WorkerScratch,
    body: &[u8],
    resp: &mut Vec<u8>,
    received: Instant,
    trace: pacds_obs::TraceId,
) -> HandleOutcome {
    state.stats.compute.fetch_add(1, Ordering::Relaxed);
    let decode_timer = pacds_obs::phase_timer(pacds_obs::Phase::ServeDecode);
    let req = match ComputeCdsRequest::decode(body) {
        Ok(req) => req,
        Err(e) => return decode_failed(state, resp, &e),
    };
    // Validate + copy edges into the retained buffer in one streaming pass.
    let n = req.n;
    scratch.edges.clear();
    for (u, v) in req.edges() {
        if u >= n || v >= n {
            return bad_input(state, resp, "edge endpoint out of range");
        }
        if u == v {
            return bad_input(state, resp, "self-loop");
        }
        scratch.edges.push((u, v));
    }
    pacds_graph::canonicalize_edges(&mut scratch.edges);
    drop(decode_timer);

    let deadline = deadline_of(received, req.deadline_ms);
    let key = (req.flags & FLAG_NO_CACHE == 0)
        .then(|| keys::compute_key(&req.cfg, req.energy_raw, n, &scratch.edges));
    if let Some(key) = key {
        let lookup = pacds_obs::span(trace, pacds_obs::SpanKind::CacheLookup, 0);
        let hit = state.cache.get_into(key, resp);
        drop(lookup);
        if hit {
            if deadline_hit(state, resp, deadline) {
                return HandleOutcome::KeepOpen;
            }
            resp[LEN_PREFIX + CACHE_FLAG_PAYLOAD_OFFSET] = 1;
            return HandleOutcome::KeepOpen;
        }
    }
    if deadline_hit(state, resp, deadline) {
        return HandleOutcome::KeepOpen;
    }

    // Cache miss: rebuild the topology and run the pipeline (cold path,
    // allocation is fine here).
    scratch.graph = Graph::from_edges(n as usize, &scratch.edges);
    scratch.energy.clear();
    if let Some(levels) = req.energies() {
        scratch.energy.extend(levels);
    }
    let energy = req.energy_raw.is_some().then_some(scratch.energy.as_slice());
    compute_and_encode(state, scratch, &req.cfg, energy.is_some(), resp, deadline, key, trace)
}

fn handle_gen(
    state: &ServeState,
    scratch: &mut WorkerScratch,
    body: &[u8],
    resp: &mut Vec<u8>,
    received: Instant,
    trace: pacds_obs::TraceId,
) -> HandleOutcome {
    state.stats.gen_compute.fetch_add(1, Ordering::Relaxed);
    let req = match GenComputeRequest::decode(body) {
        Ok(req) => req,
        Err(e) => return decode_failed(state, resp, &e),
    };
    let deadline = deadline_of(received, req.deadline_ms);
    let key = (req.flags & FLAG_NO_CACHE == 0).then(|| keys::gen_key(&req));
    if let Some(key) = key {
        let lookup = pacds_obs::span(trace, pacds_obs::SpanKind::CacheLookup, 0);
        let hit = state.cache.get_into(key, resp);
        drop(lookup);
        if hit {
            if deadline_hit(state, resp, deadline) {
                return HandleOutcome::KeepOpen;
            }
            resp[LEN_PREFIX + CACHE_FLAG_PAYLOAD_OFFSET] = 1;
            return HandleOutcome::KeepOpen;
        }
    }
    if deadline_hit(state, resp, deadline) {
        return HandleOutcome::KeepOpen;
    }

    // Deterministic server-side generation, mirroring the CLI: resample
    // until connected (bounded), then assign energies.
    let bounds = Rect::square(req.side);
    let mut rng = ChaCha8Rng::seed_from_u64(req.seed);
    let n = req.n as usize;
    for _ in 0..CONNECT_ATTEMPTS {
        scratch.points.clear();
        scratch
            .points
            .extend(pacds_geom::placement::uniform_points(&mut rng, bounds, n));
        scratch.graph = gen::unit_disk(bounds, req.radius, &scratch.points);
        if !req.connected || algo::is_connected(&scratch.graph) {
            break;
        }
    }
    scratch.energy.clear();
    match req.energy_seed {
        None => scratch.energy.extend(std::iter::repeat_n(10u64, n)),
        Some(seed) => {
            let mut erng = ChaCha8Rng::seed_from_u64(seed);
            scratch.energy.extend((0..n).map(|_| erng.random_range(0..=10u64)));
        }
    }
    compute_and_encode(state, scratch, &req.cfg, true, resp, deadline, key, trace)
}

/// Runs the pipeline on `scratch.graph`, encodes the `CdsResult` frame,
/// inserts it into the cache (flag zeroed), and patches nothing: a fresh
/// computation reports `cache_hit = 0`.
#[allow(clippy::too_many_arguments)]
fn compute_and_encode(
    state: &ServeState,
    scratch: &mut WorkerScratch,
    cfg: &CdsConfig,
    with_energy: bool,
    resp: &mut Vec<u8>,
    deadline: Option<Instant>,
    key: Option<u128>,
    trace: pacds_obs::TraceId,
) -> HandleOutcome {
    let use_shard = match state.shard.mode {
        ShardMode::Never => false,
        ShardMode::Always => check_shardable(cfg).is_ok(),
        ShardMode::Auto => {
            scratch.graph.n() >= state.shard.threshold && check_shardable(cfg).is_ok()
        }
    };
    {
        let _s = pacds_obs::span(trace, pacds_obs::SpanKind::Compute, scratch.graph.n() as u32);
        let _t = pacds_obs::phase_timer(pacds_obs::Phase::ServeCompute);
        let energy = with_energy.then_some(scratch.energy.as_slice());
        if use_shard {
            if scratch.sharded.spec().shards != state.shard.shards {
                scratch.sharded = ShardedCds::new(ShardSpec::new(state.shard.shards))
                    .expect("default halo is legal");
            }
            scratch.sharded.set_trace(trace);
            scratch
                .sharded
                .compute_graph(&scratch.graph, energy, cfg)
                .expect("shardability pre-checked");
        } else {
            scratch.ws.compute(&scratch.graph, energy, cfg);
        }
    }
    let _t = pacds_obs::phase_timer(pacds_obs::Phase::ServeEncode);
    let count = |mask: &[bool]| mask.iter().filter(|&&b| b).count() as u32;
    let (marked, after1, gateway_count, rounds, mask) = if use_shard {
        let e = &scratch.sharded;
        (count(e.marked()), count(e.after_rule1()), e.gateway_count(), e.rounds(), e.gateways())
    } else {
        let w = &scratch.ws;
        (count(w.marked()), count(w.after_rule1()), w.gateway_count(), w.rounds(), w.gateways())
    };
    begin_frame(resp, ResponseKind::CdsResult as u8);
    resp.put_u8(0); // cache_hit
    resp.put_u32(scratch.graph.n() as u32);
    resp.put_u32(marked);
    resp.put_u32(after1);
    resp.put_u32(gateway_count as u32);
    resp.put_u32(rounds as u32);
    let mut byte = 0u8;
    for (v, &g) in mask.iter().enumerate() {
        if g {
            byte |= 1 << (v % 8);
        }
        if v % 8 == 7 {
            resp.put_u8(byte);
            byte = 0;
        }
    }
    if !mask.len().is_multiple_of(8) {
        resp.put_u8(byte);
    }
    end_frame(resp);
    if let Some(key) = key {
        state.cache.insert(key, resp);
    }
    // The computation is already done and cached; if the client's deadline
    // passed while we worked, tell it so (the result stays cached for a
    // retry).
    if deadline_hit(state, resp, deadline) {
        return HandleOutcome::KeepOpen;
    }
    HandleOutcome::KeepOpen
}

/// Typed recoverable error for the churn-graph request family.
fn graph_error(
    state: &ServeState,
    resp: &mut Vec<u8>,
    code: ErrorCode,
    msg: &str,
) -> HandleOutcome {
    debug_assert!(!code.is_connection_fatal());
    state.stats.bad_input.fetch_add(1, Ordering::Relaxed);
    encode_error(resp, code, msg);
    HandleOutcome::KeepOpen
}

fn handle_open_graph(state: &ServeState, body: &[u8], resp: &mut Vec<u8>) -> HandleOutcome {
    let req = match OpenGraphRequest::decode(body) {
        Ok(req) => req,
        Err(e) => return decode_failed(state, resp, &e),
    };
    // Build the engine inputs before taking the registry lock.
    let points: Vec<Point2> = req.points().map(|(x, y)| Point2::new(x, y)).collect();
    let energy: Vec<u64> = req.energies().collect();
    let bounds = Rect::new(req.bounds.0, req.bounds.1, req.bounds.2, req.bounds.3);
    let spec = ShardSpec {
        shards: req.shards as usize,
        halo: REQUIRED_HALO,
        threads: 1,
    };
    let mut graphs = state.graphs.inner.lock().expect("registry poisoned");
    if graphs.contains_key(req.name) {
        return graph_error(state, resp, ErrorCode::GraphExists, "graph already open");
    }
    if graphs.len() >= MAX_OPEN_GRAPHS {
        state.stats.rejected.fetch_add(1, Ordering::Relaxed);
        encode_error(resp, ErrorCode::Rejected, "graph registry full");
        return HandleOutcome::KeepOpen;
    }
    let engine = match ChurnEngine::open(spec, bounds, req.radius, &points, &energy, &req.cfg) {
        Ok(engine) => engine,
        // Unshardable configs / bad halos mirror the batch engine's typed
        // rejection; the frame parsed, so the connection stays usable.
        Err(e) => return bad_input(state, resp, e.label()),
    };
    let uid = state.graphs.next_uid.fetch_add(1, Ordering::Relaxed);
    let tiles = engine.tiles();
    let n = engine.n();
    let gateways = engine.gateway_count();
    graphs.insert(
        req.name.to_string(),
        OpenGraph {
            engine,
            uid,
            tile_versions: vec![0; tiles],
            refreshes: 0,
        },
    );
    drop(graphs);
    state.stats.graphs_opened.fetch_add(1, Ordering::Relaxed);
    begin_frame(resp, ResponseKind::GraphOpened as u8);
    resp.put_u32(tiles as u32);
    resp.put_u32(n as u32);
    resp.put_u32(gateways as u32);
    end_frame(resp);
    HandleOutcome::KeepOpen
}

fn handle_mutate(
    state: &ServeState,
    body: &[u8],
    resp: &mut Vec<u8>,
    trace: pacds_obs::TraceId,
) -> HandleOutcome {
    let (name, events) = match protocol::decode_mutate(body) {
        Ok(decoded) => decoded,
        Err(e) => return decode_failed(state, resp, &e),
    };
    state.stats.mutations.fetch_add(1, Ordering::Relaxed);
    let mut graphs = state.graphs.inner.lock().expect("registry poisoned");
    let Some(open) = graphs.get_mut(name) else {
        return graph_error(state, resp, ErrorCode::UnknownGraph, "graph not open");
    };
    let mut applied = 0u32;
    let mut rejection = None;
    for (i, ev) in events.iter().enumerate() {
        let ev = match *ev {
            WireEvent::Add { x, y, energy } => ChurnEvent::AddNode {
                pos: Point2::new(x, y),
                energy,
            },
            WireEvent::Move { node, x, y } => ChurnEvent::MoveNode {
                node,
                to: Point2::new(x, y),
            },
            WireEvent::Kill { node } => ChurnEvent::KillNode { node },
            WireEvent::Drain { node, remaining } => ChurnEvent::DrainBattery { node, remaining },
        };
        match open.engine.apply(&ev) {
            Ok(()) => applied += 1,
            Err(e) => {
                rejection = Some(format!("event {i}: {e}"));
                break;
            }
        }
    }
    // Refresh whatever was applied — even on a rejection, so the engine's
    // state always reflects exactly the applied prefix — and bump the
    // versions of every re-solved tile so their cached TileResult frames
    // can no longer be served.
    let dirty = open.engine.dirty_tiles();
    open.engine.set_trace(trace);
    let stats = open.engine.refresh();
    for &t in &dirty {
        open.tile_versions[t] += 1;
    }
    open.refreshes += 1;
    let refresh_seq = open.refreshes;
    let gateways = open.engine.gateway_count() as u32;
    let n = open.engine.n() as u32;
    drop(graphs);
    // Publish the flip event after releasing the registry lock so slow
    // subscribers can never extend the mutation's critical section.
    if !dirty.is_empty() {
        let tiles: Vec<u32> = dirty.iter().map(|&t| t as u32).collect();
        state
            .hub
            .publish_flip(name, refresh_seq, stats.gateway_flips, gateways, &tiles);
    }
    state
        .stats
        .mutation_events
        .fetch_add(u64::from(applied), Ordering::Relaxed);
    if let Some(msg) = rejection {
        state.stats.mutation_rejected.fetch_add(1, Ordering::Relaxed);
        encode_error(resp, ErrorCode::MutationRejected, &msg);
        return HandleOutcome::KeepOpen;
    }
    begin_frame(resp, ResponseKind::MutateResult as u8);
    resp.put_u32(applied);
    resp.put_u32(stats.dirty_tiles as u32);
    resp.put_u32(stats.resolved_tiles as u32);
    resp.put_u32(stats.total_tiles as u32);
    resp.put_u64(stats.gateway_flips);
    resp.put_u32(gateways);
    resp.put_u32(n);
    end_frame(resp);
    HandleOutcome::KeepOpen
}

fn handle_close_graph(state: &ServeState, body: &[u8], resp: &mut Vec<u8>) -> HandleOutcome {
    let name = match protocol::decode_close_graph(body) {
        Ok(name) => name,
        Err(e) => return decode_failed(state, resp, &e),
    };
    let removed = state
        .graphs
        .inner
        .lock()
        .expect("registry poisoned")
        .remove(name);
    if removed.is_none() {
        return graph_error(state, resp, ErrorCode::UnknownGraph, "graph not open");
    }
    state.stats.graphs_closed.fetch_add(1, Ordering::Relaxed);
    begin_frame(resp, ResponseKind::GraphClosed as u8);
    end_frame(resp);
    HandleOutcome::KeepOpen
}

fn handle_query_tile(state: &ServeState, body: &[u8], resp: &mut Vec<u8>) -> HandleOutcome {
    let (name, tile) = match protocol::decode_query_tile(body) {
        Ok(decoded) => decoded,
        Err(e) => return decode_failed(state, resp, &e),
    };
    state.stats.tile_queries.fetch_add(1, Ordering::Relaxed);
    let graphs = state.graphs.inner.lock().expect("registry poisoned");
    let Some(open) = graphs.get(name) else {
        return graph_error(state, resp, ErrorCode::UnknownGraph, "graph not open");
    };
    if tile as usize >= open.engine.tiles() {
        return bad_input(state, resp, "tile out of range");
    }
    // Key on (graph uid, tile, tile version): a mutation that re-solved
    // this tile bumped the version, so its old cached frame is simply
    // never looked up again — per-dirty-tile invalidation without a cache
    // removal primitive. The frame carries no hit flag, so cold and warm
    // responses are byte-identical.
    let mut d = Fnv1a128::new();
    d.write(KEY_TAG_TILE);
    d.write_u64(open.uid);
    d.write_u32(tile);
    d.write_u64(open.tile_versions[tile as usize]);
    let key = d.finish();
    if state.cache.get_into(key, resp) {
        return HandleOutcome::KeepOpen;
    }
    begin_frame(resp, ResponseKind::TileResult as u8);
    resp.put_u32(tile);
    let entries = open.engine.tile_result(tile as usize);
    resp.put_u32(entries.len() as u32);
    for &(node, flags) in entries {
        resp.put_u32(node);
        resp.put_u8(flags);
    }
    end_frame(resp);
    drop(graphs);
    state.cache.insert(key, resp);
    HandleOutcome::KeepOpen
}

fn handle_subscribe(state: &ServeState, body: &[u8], resp: &mut Vec<u8>) -> HandleOutcome {
    let req = match protocol::decode_subscribe(body) {
        Ok(req) => req,
        Err(e) => return decode_failed(state, resp, &e),
    };
    // A named flip subscription must reference an open graph; stats-only
    // subscriptions are graph-independent. (The graph may still close
    // later — the subscription then simply stops receiving flip events.)
    if req.flags & SUB_FLIPS != 0 {
        if let Some(name) = req.graph {
            let graphs = state.graphs.inner.lock().expect("registry poisoned");
            if !graphs.contains_key(name) {
                return graph_error(state, resp, ErrorCode::UnknownGraph, "graph not open");
            }
        }
    }
    // Pre-allocate the id so the ack frame can carry it; the server loop
    // registers the receiver with the hub *before* writing this ack, so a
    // client never misses an event it was promised.
    let id = state.hub.allocate_id();
    protocol::encode_subscribe_ack(
        resp,
        SubscribeAck {
            subscriber_id: id,
            flags: req.flags,
            interval_ms: req.interval_ms,
        },
    );
    HandleOutcome::Subscribe {
        id,
        flags: req.flags,
        interval_ms: req.interval_ms,
        graph: req.graph.map(str::to_owned),
    }
}

fn handle_stats(state: &ServeState, body: &[u8], resp: &mut Vec<u8>) -> HandleOutcome {
    state.stats.stats_probes.fetch_add(1, Ordering::Relaxed);
    let mut r = protocol::Reader::new(body);
    let format = match r.u8().map(StatsFormat::from_wire) {
        Ok(Some(f)) => f,
        Ok(None) => return bad_input(state, resp, "stats format"),
        Err(e) => return decode_failed(state, resp, &e),
    };
    if let Err(e) = r.finish() {
        return decode_failed(state, resp, &e);
    }
    let entries = state.stat_entries();
    // The health form answers from the always-on atomics alone — no obs
    // snapshot capture, no text rendering — so a coordinator probing every
    // few hundred milliseconds costs the backend next to nothing.
    if format == StatsFormat::Health {
        begin_frame(resp, ResponseKind::StatsResult as u8);
        resp.put_u32(entries.len() as u32);
        for (name, value) in entries {
            resp.put_u16(name.len() as u16);
            resp.put(name.as_bytes());
            resp.put_u64(value);
        }
        resp.put_u32(0);
        end_frame(resp);
        return HandleOutcome::KeepOpen;
    }
    let snap = pacds_obs::Snapshot::capture();
    let mut text = Vec::new();
    match format {
        StatsFormat::Health => unreachable!("answered above"),
        StatsFormat::Table => {
            for (name, value) in &entries {
                text.extend_from_slice(format!("{name:<20} {value}\n").as_bytes());
            }
            for c in &snap.counters {
                text.extend_from_slice(format!("{:<20} {}\n", c.name, c.value).as_bytes());
            }
            for p in &snap.phases {
                text.extend_from_slice(
                    format!("{:<20} {} calls, {} ns\n", p.name, p.count, p.total_ns).as_bytes(),
                );
            }
        }
        StatsFormat::Jsonl => {
            let _ = pacds_obs::write_jsonl(&snap, &mut text);
        }
        StatsFormat::Prometheus => {
            let _ = pacds_obs::write_prometheus(&snap, &mut text);
        }
    }
    begin_frame(resp, ResponseKind::StatsResult as u8);
    resp.put_u32(entries.len() as u32);
    for (name, value) in entries {
        resp.put_u16(name.len() as u16);
        resp.put(name.as_bytes());
        resp.put_u64(value);
    }
    resp.put_u32(text.len() as u32);
    resp.put(&text);
    end_frame(resp);
    HandleOutcome::KeepOpen
}

#[cfg(test)]
mod tests {
    use super::*;
    use pacds_core::Policy;
    use pacds_graph::mask_to_vec;

    fn compute_via_handler(
        state: &ServeState,
        scratch: &mut WorkerScratch,
        cfg: &CdsConfig,
        n: u32,
        edges: &[(u32, u32)],
        energy: Option<&[u64]>,
        flags: u8,
    ) -> (Vec<u8>, HandleOutcome) {
        let mut frame = Vec::new();
        protocol::encode_compute_cds(&mut frame, flags, 0, cfg, n, edges, energy);
        let mut resp = Vec::new();
        let outcome = handle_payload(state, scratch, &frame[LEN_PREFIX..], &mut resp, Instant::now());
        (resp, outcome)
    }

    fn resp_payload(resp: &[u8]) -> &[u8] {
        let len = u32::from_le_bytes(resp[..4].try_into().unwrap()) as usize;
        assert_eq!(len, resp.len() - LEN_PREFIX);
        &resp[LEN_PREFIX..]
    }

    #[test]
    fn compute_matches_direct_pipeline() {
        let state = ServeState::new(1 << 20);
        let mut scratch = WorkerScratch::new();
        let edges = [(0u32, 1), (1, 2), (2, 3), (3, 4), (1, 3)];
        let cfg = CdsConfig::sequential(Policy::Degree);
        let (resp, outcome) =
            compute_via_handler(&state, &mut scratch, &cfg, 5, &edges, None, 0);
        assert_eq!(outcome, HandleOutcome::KeepOpen);
        let p = resp_payload(&resp);
        assert_eq!(ResponseKind::from_wire(p[1]), Some(ResponseKind::CdsResult));
        let result = protocol::decode_cds_result(&p[2..]).unwrap();
        assert!(!result.cache_hit);

        let g = Graph::from_edges(5, &edges);
        let mut ws = CdsWorkspace::new();
        let direct = ws.compute(&g, None, &cfg).clone();
        assert_eq!(result.mask, direct);
        assert_eq!(result.gateways as usize, ws.gateway_count());
        assert_eq!(result.rounds as usize, ws.rounds());
    }

    #[test]
    fn cache_hit_on_permuted_edges() {
        let state = ServeState::new(1 << 20);
        let mut scratch = WorkerScratch::new();
        let cfg = CdsConfig::policy(Policy::Id);
        let edges = [(0u32, 1), (1, 2), (2, 3)];
        let permuted = [(3u32, 2), (1, 0), (2, 1)];
        let (first, _) = compute_via_handler(&state, &mut scratch, &cfg, 4, &edges, None, 0);
        let (second, _) = compute_via_handler(&state, &mut scratch, &cfg, 4, &permuted, None, 0);
        let a = protocol::decode_cds_result(&resp_payload(&first)[2..]).unwrap();
        let b = protocol::decode_cds_result(&resp_payload(&second)[2..]).unwrap();
        assert!(!a.cache_hit);
        assert!(b.cache_hit, "permuted wire order must share the cache entry");
        assert_eq!(a.mask, b.mask);
        assert_eq!(state.cache.stats().hits, 1);
        // Identical except the cache flag byte.
        let mut patched = first.clone();
        patched[LEN_PREFIX + CACHE_FLAG_PAYLOAD_OFFSET] = 1;
        assert_eq!(patched, second, "cached bytes identical modulo the hit flag");
    }

    #[test]
    fn no_cache_flag_bypasses_the_cache() {
        let state = ServeState::new(1 << 20);
        let mut scratch = WorkerScratch::new();
        let cfg = CdsConfig::policy(Policy::Degree);
        let edges = [(0u32, 1), (1, 2)];
        for _ in 0..2 {
            let (resp, _) = compute_via_handler(
                &state,
                &mut scratch,
                &cfg,
                3,
                &edges,
                None,
                FLAG_NO_CACHE,
            );
            let r = protocol::decode_cds_result(&resp_payload(&resp)[2..]).unwrap();
            assert!(!r.cache_hit);
        }
        let s = state.cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn different_config_different_cache_entry() {
        let state = ServeState::new(1 << 20);
        let mut scratch = WorkerScratch::new();
        let edges = [(0u32, 1), (1, 2), (2, 3), (0, 3), (1, 3)];
        let (_, _) = compute_via_handler(
            &state,
            &mut scratch,
            &CdsConfig::policy(Policy::Id),
            4,
            &edges,
            None,
            0,
        );
        let (resp, _) = compute_via_handler(
            &state,
            &mut scratch,
            &CdsConfig::sequential(Policy::Id),
            4,
            &edges,
            None,
            0,
        );
        let r = protocol::decode_cds_result(&resp_payload(&resp)[2..]).unwrap();
        assert!(!r.cache_hit, "different schedule must not share an entry");
        assert_eq!(state.cache.stats().entries, 2);
    }

    #[test]
    fn bad_edges_yield_typed_errors_not_panics() {
        let state = ServeState::new(1 << 20);
        let mut scratch = WorkerScratch::new();
        let cfg = CdsConfig::policy(Policy::Id);
        for (edges, what) in [
            (&[(0u32, 9u32)][..], "out of range"),
            (&[(1, 1)][..], "self-loop"),
        ] {
            let (resp, outcome) =
                compute_via_handler(&state, &mut scratch, &cfg, 3, edges, None, 0);
            assert_eq!(outcome, HandleOutcome::KeepOpen, "{what}: BadInput keeps the connection");
            let p = resp_payload(&resp);
            assert_eq!(ResponseKind::from_wire(p[1]), Some(ResponseKind::Error));
            let e = protocol::decode_error(&p[2..]).unwrap();
            assert_eq!(e.code, ErrorCode::BadInput, "{what}");
        }
        assert_eq!(state.stats.bad_input.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn version_and_kind_failures_close_the_connection() {
        let state = ServeState::new(1 << 20);
        let mut scratch = WorkerScratch::new();
        let mut resp = Vec::new();
        for payload in [&[99u8, 1][..], &[PROTOCOL_VERSION, 0x7E][..], &[1u8][..]] {
            let outcome =
                handle_payload(&state, &mut scratch, payload, &mut resp, Instant::now());
            assert_eq!(outcome, HandleOutcome::Close);
            let p = resp_payload(&resp);
            let e = protocol::decode_error(&p[2..]).unwrap();
            assert!(e.code.is_connection_fatal());
        }
        assert_eq!(state.stats.protocol_errors.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn gen_compute_is_deterministic_and_cached() {
        let state = ServeState::new(1 << 20);
        let mut scratch = WorkerScratch::new();
        let req = GenComputeRequest {
            flags: 0,
            deadline_ms: 0,
            cfg: CdsConfig::sequential(Policy::EnergyDegree),
            n: 30,
            seed: 11,
            radius: 30.0,
            side: 100.0,
            connected: true,
            energy_seed: Some(7),
        };
        let mut frame = Vec::new();
        req.encode(&mut frame);
        let mut first = Vec::new();
        let mut second = Vec::new();
        handle_payload(&state, &mut scratch, &frame[LEN_PREFIX..], &mut first, Instant::now());
        handle_payload(&state, &mut scratch, &frame[LEN_PREFIX..], &mut second, Instant::now());
        let a = protocol::decode_cds_result(&resp_payload(&first)[2..]).unwrap();
        let b = protocol::decode_cds_result(&resp_payload(&second)[2..]).unwrap();
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        assert_eq!(a.mask, b.mask);
        assert!(a.gateways > 0, "a connected 30-host topology has gateways");
        assert!(mask_to_vec(&a.mask).len() == a.gateways as usize);
    }

    #[test]
    fn expired_deadline_is_a_typed_error() {
        let state = ServeState::new(1 << 20);
        let mut scratch = WorkerScratch::new();
        let cfg = CdsConfig::policy(Policy::Id);
        let mut frame = Vec::new();
        protocol::encode_compute_cds(&mut frame, 0, 1, &cfg, 3, &[(0, 1), (1, 2)], None);
        let stale = Instant::now() - Duration::from_millis(50);
        let mut resp = Vec::new();
        let outcome = handle_payload(&state, &mut scratch, &frame[LEN_PREFIX..], &mut resp, stale);
        assert_eq!(outcome, HandleOutcome::KeepOpen);
        let e = protocol::decode_error(&resp_payload(&resp)[2..]).unwrap();
        assert_eq!(e.code, ErrorCode::DeadlineExceeded);
        assert_eq!(state.stats.deadline_exceeded.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ping_and_stats_respond() {
        let state = ServeState::new(1 << 20);
        let mut scratch = WorkerScratch::new();
        let mut frame = Vec::new();
        protocol::encode_ping(&mut frame);
        let mut resp = Vec::new();
        handle_payload(&state, &mut scratch, &frame[LEN_PREFIX..], &mut resp, Instant::now());
        assert_eq!(resp_payload(&resp)[1], ResponseKind::Pong as u8);

        // One compute so the counters are non-trivial.
        let cfg = CdsConfig::policy(Policy::Degree);
        compute_via_handler(&state, &mut scratch, &cfg, 3, &[(0, 1), (1, 2)], None, 0);
        for format in [StatsFormat::Table, StatsFormat::Jsonl, StatsFormat::Prometheus] {
            protocol::encode_stats_request(&mut frame, format);
            handle_payload(&state, &mut scratch, &frame[LEN_PREFIX..], &mut resp, Instant::now());
            let p = resp_payload(&resp);
            assert_eq!(ResponseKind::from_wire(p[1]), Some(ResponseKind::StatsResult));
            let s = protocol::decode_stats_result(&p[2..]).unwrap();
            assert_eq!(s.counter("compute"), Some(1));
            assert_eq!(s.counter("cache_misses"), Some(1));
            assert!(s.counter("requests").unwrap() >= 2);
        }
    }

    #[test]
    fn sharded_and_whole_graph_paths_serve_identical_bytes() {
        // A moderate unit-disk topology so the rules actually fire.
        let bounds = Rect::square(100.0);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let points = pacds_geom::placement::uniform_points(&mut rng, bounds, 80);
        let g = gen::unit_disk(bounds, 25.0, &points);
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let energy: Vec<u64> = (0..80).map(|i| (i * 37) % 100).collect();

        let mut never = ServeState::new(1 << 20);
        never.shard.mode = ShardMode::Never;
        let mut always = ServeState::new(1 << 20);
        always.shard.mode = ShardMode::Always;
        always.shard.shards = 4;

        for policy in [Policy::Id, Policy::Degree, Policy::EnergyDegree] {
            let cfg = CdsConfig::policy(policy);
            let mut ws_scratch = WorkerScratch::new();
            let mut sh_scratch = WorkerScratch::new();
            let (a, _) = compute_via_handler(
                &never, &mut ws_scratch, &cfg, 80, &edges, Some(&energy), FLAG_NO_CACHE,
            );
            let (b, _) = compute_via_handler(
                &always, &mut sh_scratch, &cfg, 80, &edges, Some(&energy), FLAG_NO_CACHE,
            );
            assert_eq!(a, b, "{policy:?}: response frames must be byte-identical");
            // The sharded engine really ran (its stats are per-compute).
            assert!(sh_scratch.sharded.stats().tiles > 0, "Always must shard");
            assert_eq!(ws_scratch.sharded.stats().tiles, 0, "Never must not");
        }
    }

    #[test]
    fn always_mode_falls_back_on_unshardable_configs() {
        let mut state = ServeState::new(1 << 20);
        state.shard.mode = ShardMode::Always;
        let mut scratch = WorkerScratch::new();
        // Sequential application is unshardable: the request must still be
        // answered, by the whole-graph workspace.
        let cfg = CdsConfig::sequential(Policy::Degree);
        let edges = [(0u32, 1), (1, 2), (2, 3), (1, 3), (3, 4)];
        let (resp, outcome) =
            compute_via_handler(&state, &mut scratch, &cfg, 5, &edges, None, 0);
        assert_eq!(outcome, HandleOutcome::KeepOpen);
        let r = protocol::decode_cds_result(&resp_payload(&resp)[2..]).unwrap();
        let g = Graph::from_edges(5, &edges);
        let mut ws = CdsWorkspace::new();
        assert_eq!(&r.mask, ws.compute(&g, None, &cfg));
        assert_eq!(scratch.sharded.stats().tiles, 0, "fallback must not shard");
    }

    #[test]
    fn auto_mode_respects_the_node_threshold() {
        let mut state = ServeState::new(1 << 20);
        state.shard.threshold = 4;
        let mut scratch = WorkerScratch::new();
        let cfg = CdsConfig::policy(Policy::Degree);
        let small = [(0u32, 1), (1, 2)];
        compute_via_handler(&state, &mut scratch, &cfg, 3, &small, None, FLAG_NO_CACHE);
        assert_eq!(scratch.sharded.stats().tiles, 0, "below threshold: whole-graph");
        let big = [(0u32, 1), (1, 2), (2, 3), (3, 4)];
        compute_via_handler(&state, &mut scratch, &cfg, 5, &big, None, FLAG_NO_CACHE);
        assert!(scratch.sharded.stats().tiles > 0, "at threshold: sharded");
    }

    #[test]
    fn shard_mode_labels_round_trip() {
        for mode in [ShardMode::Auto, ShardMode::Always, ShardMode::Never] {
            assert_eq!(ShardMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(ShardMode::parse("sometimes"), None);
    }

    #[test]
    fn warm_path_reuses_buffers() {
        // Not the allocator-level pin (that lives in tests/zero_alloc.rs);
        // this checks the observable proxy: response pointer stability.
        let state = ServeState::new(1 << 20);
        let mut scratch = WorkerScratch::new();
        let cfg = CdsConfig::policy(Policy::Degree);
        let edges = [(0u32, 1), (1, 2), (2, 3), (3, 4)];
        let mut frame = Vec::new();
        protocol::encode_compute_cds(&mut frame, 0, 0, &cfg, 5, &edges, None);
        let mut resp = Vec::with_capacity(4096);
        handle_payload(&state, &mut scratch, &frame[LEN_PREFIX..], &mut resp, Instant::now());
        let ptr = resp.as_ptr();
        for _ in 0..10 {
            handle_payload(&state, &mut scratch, &frame[LEN_PREFIX..], &mut resp, Instant::now());
            assert_eq!(resp.as_ptr(), ptr, "warm hit must reuse the response buffer");
        }
        assert_eq!(state.cache.stats().hits, 10);
    }
}
