//! # pacds-serve — the CDS query service
//!
//! A dominating-set engine is only useful to a routing stack if it can be
//! *asked*. This crate turns the `pacds-core` pipeline into a long-running
//! network service: a std-only TCP server speaking a versioned,
//! length-prefixed binary protocol, answering three kinds of questions —
//!
//! * **compute-CDS** — a topology (and optionally per-host energy) plus a
//!   [`CdsConfig`](pacds_core::CdsConfig) in; the gateway mask and stage
//!   statistics (marked, after Rule 1, final, rounds) out.
//! * **generate-and-compute** — unit-disk placement parameters and a seed
//!   in; the server generates the topology deterministically and computes.
//! * **stats** — the server's always-on counters plus the rendered
//!   `pacds-obs` snapshot (table, JSONL, or Prometheus).
//!
//! ## Design
//!
//! * [`server`] — bounded worker pool; each worker owns a long-lived
//!   [`handler::WorkerScratch`] (a retained [`CdsWorkspace`]
//!   (pacds_core::CdsWorkspace) plus buffers), so steady-state cache-warm
//!   serving performs **zero allocations** — pinned by the workspace-level
//!   `tests/zero_alloc.rs`.
//! * [`cache`] — a sharded LRU keyed by a 128-bit FNV-1a digest of the
//!   *canonical* (order-independent) edge list + config + energy, built on
//!   `pacds_graph::digest`. Permuted wire orders share one entry.
//! * Backpressure is explicit: a bounded accept queue; when full, clients
//!   get a fast typed `REJECTED` frame instead of unbounded queueing.
//!   Per-request deadlines return `DEADLINE_EXCEEDED`.
//! * [`server::ServerHandle::shutdown`] drains: queued connections are
//!   served, in-flight frames finish, then workers exit.
//! * [`loadgen`] — closed- and open-loop load generation with
//!   coordinated-omission-corrected tail latency (p50/p99/p999).
//!
//! The protocol lives in [`protocol`]; a small blocking [`client::Client`]
//! rounds out the crate for tests, tooling, and the CLI.

pub mod cache;
pub mod client;
pub mod handler;
pub mod hub;
pub mod keys;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, ShardedCache};
pub use client::{Client, ClientError, Push};
pub use handler::{
    handle_payload, GraphRegistry, HandleOutcome, ServeState, ServerStats, ShardMode, ShardPolicy,
    WorkerScratch, MAX_OPEN_GRAPHS,
};
pub use hub::{SubscriberHub, Subscription};
pub use loadgen::{KindStats, LoadReport, LoadgenConfig, Mode};
pub use protocol::{
    CdsResult, ErrorCode, FlipEvent, GraphOpened, MutateResult, RequestKind, ResponseKind,
    StatsDelta, StatsFormat, SubscribeAck, TileResult, WireEvent, PROTOCOL_VERSION, SUB_FLIPS,
    SUB_STATS,
};
pub use server::{serve, ServerConfig, ServerHandle};
