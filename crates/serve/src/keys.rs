//! Canonical 128-bit request digests — the cache keys, and the cluster
//! coordinator's routing keys.
//!
//! The server caches results under a 128-bit FNV-1a digest of the
//! *canonical* request content (domain tag + config + energy + sorted
//! deduplicated edge list), so permuted wire orders share one cache entry.
//! `pacds-cluster` routes by the **same** digest: the backend that owns a
//! key on the hash ring is the backend whose LRU warms up for it, so the
//! coordinator's ring and the backends' caches agree by construction.
//!
//! These digests are a compatibility surface: changing any byte folded
//! here silently reshuffles the whole cluster keyspace (every key goes
//! cold at once). `crates/serve/tests/digest_golden.rs` pins exact values
//! for a fixed corpus — a failure there means a protocol-version bump and
//! a deliberate full-cluster cache flush, not a routine refactor.

use pacds_core::CdsConfig;
use pacds_graph::digest::{fold_edges, DigestSink, Fnv1a128};

use crate::protocol::{self, GenComputeRequest};

/// Domain tags separating the key spaces (and all of them from raw
/// `pacds_graph::digest::graph_digest` values).
pub const KEY_TAG_COMPUTE: &[u8] = b"pacds.serve.compute.v1";
pub const KEY_TAG_GEN: &[u8] = b"pacds.serve.gen.v1";
pub const KEY_TAG_GRAPH_NAME: &[u8] = b"pacds.serve.graphname.v1";

/// Folds the 4-byte config encoding into a digest (the exact
/// [`protocol::config_bytes`] the wire carries — no allocation).
pub fn put_config_key<D: DigestSink>(d: &mut D, cfg: &CdsConfig) {
    d.write(&protocol::config_bytes(cfg));
}

/// Cache/routing key for a `ComputeCds` request.
///
/// `edges` must already be canonical (`pacds_graph::canonicalize_edges`:
/// `u < v`, sorted, deduplicated) and `energy_raw` is the raw `n × 8`-byte
/// little-endian energy block from the wire, if present — exactly what the
/// server folds, so coordinator and backend derive identical keys.
pub fn compute_key(cfg: &CdsConfig, energy_raw: Option<&[u8]>, n: u32, edges: &[(u32, u32)]) -> u128 {
    let mut d = Fnv1a128::new();
    d.write(KEY_TAG_COMPUTE);
    put_config_key(&mut d, cfg);
    match energy_raw {
        None => d.write(&[0]),
        Some(raw) => {
            d.write(&[1]);
            d.write(raw);
        }
    }
    fold_edges(&mut d, n as usize, edges);
    d.finish()
}

/// Cache/routing key for a `GenCompute` request (placement parameters and
/// seeds fully determine the generated topology, so they *are* the key).
pub fn gen_key(req: &GenComputeRequest) -> u128 {
    let mut d = Fnv1a128::new();
    d.write(KEY_TAG_GEN);
    put_config_key(&mut d, &req.cfg);
    d.write_u32(req.n);
    d.write_u64(req.seed);
    d.write_u64(req.radius.to_bits());
    d.write_u64(req.side.to_bits());
    d.write(&[req.connected as u8]);
    match req.energy_seed {
        None => d.write(&[0]),
        Some(s) => {
            d.write(&[1]);
            d.write_u64(s);
        }
    }
    d.finish()
}

/// Routing key for stateful frames: the digest of the graph *name*.
///
/// OpenGraph/Mutate/QueryTile/CloseGraph/Subscribe all pin to the backend
/// owning this key, so a named graph and its subscriptions live on exactly
/// one backend for the graph's whole lifetime.
pub fn graph_name_key(name: &str) -> u128 {
    let mut d = Fnv1a128::new();
    d.write(KEY_TAG_GRAPH_NAME);
    d.write(name.as_bytes());
    d.finish()
}
