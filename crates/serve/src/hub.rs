//! The subscriber hub: fan-out of pushed telemetry frames.
//!
//! Subscriptions ride the normal request protocol (a [`Subscribe`] frame
//! flips the connection into push mode), but their delivery must never be
//! able to slow a Mutate or ComputeCds down. The hub enforces that with
//! three rules:
//!
//! 1. **Fast path is one atomic load.** `publish_flip` checks a
//!    flip-subscriber count before touching the lock; with nobody
//!    subscribed, the data path pays a single relaxed load.
//! 2. **Publication is a bounded `try_send`.** Each subscriber owns a
//!    bounded queue ([`SUBSCRIBER_QUEUE`]); a full queue drops the frame,
//!    counts it, and marks the subscriber lagged — the publisher never
//!    blocks, never waits on a socket.
//! 3. **The socket write happens on the subscriber's own connection
//!    thread**, which drains its queue at whatever pace the client can
//!    take and retires itself (with a [`SubscriberLagged`] error frame)
//!    once marked lagged.
//!
//! Frames are encoded once per publication and shared among subscribers
//! via `Arc`.
//!
//! [`Subscribe`]: crate::protocol::RequestKind::Subscribe
//! [`SubscriberLagged`]: crate::protocol::ErrorCode::SubscriberLagged

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

use crate::protocol::{self, SUB_FLIPS};

/// Push frames a subscriber may have in flight before it counts as
/// lagging. At the default stats cadence this is multiple seconds of
/// buffered telemetry.
pub const SUBSCRIBER_QUEUE: usize = 64;

/// One registered subscriber.
struct SubEntry {
    id: u64,
    flags: u8,
    /// Flip events are filtered to this graph; `None` = all graphs.
    graph: Option<String>,
    tx: SyncSender<Arc<Vec<u8>>>,
    lagged: Arc<AtomicBool>,
}

/// A registration handle: the connection thread drains `rx` and checks
/// `lagged` between frames.
pub struct Subscription {
    /// The hub-assigned subscriber id.
    pub id: u64,
    /// Pushed frames, ready to write to the socket verbatim.
    pub rx: Receiver<Arc<Vec<u8>>>,
    /// Set by the publisher when this subscriber's queue overflowed.
    pub lagged: Arc<AtomicBool>,
}

/// Server-wide subscriber registry. See the module docs for the
/// backpressure contract.
#[derive(Default)]
pub struct SubscriberHub {
    inner: Mutex<Vec<SubEntry>>,
    next_id: AtomicU64,
    /// Registered subscribers with [`SUB_FLIPS`] — the publish fast path.
    flip_subs: AtomicUsize,
    /// Push frames dropped to full subscriber queues (lifetime).
    dropped: AtomicU64,
    /// Subscribers retired for lagging (lifetime).
    lagged_total: AtomicU64,
}

impl SubscriberHub {
    /// Reserves a subscriber id without registering (the ack frame carries
    /// the id before the connection enters push mode).
    pub fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers subscriber `id` and returns its drain handle.
    pub fn register(&self, id: u64, flags: u8, graph: Option<String>) -> Subscription {
        let (tx, rx) = std::sync::mpsc::sync_channel(SUBSCRIBER_QUEUE);
        let lagged = Arc::new(AtomicBool::new(false));
        let mut subs = self.inner.lock().expect("hub poisoned");
        if flags & SUB_FLIPS != 0 {
            self.flip_subs.fetch_add(1, Ordering::Relaxed);
        }
        subs.push(SubEntry {
            id,
            flags,
            graph,
            tx,
            lagged: Arc::clone(&lagged),
        });
        Subscription { id, rx, lagged }
    }

    /// Removes subscriber `id` (idempotent). `was_lagged` records whether
    /// the connection is retiring the subscriber for falling behind.
    pub fn unregister(&self, id: u64, was_lagged: bool) {
        let mut subs = self.inner.lock().expect("hub poisoned");
        if let Some(i) = subs.iter().position(|s| s.id == id) {
            let entry = subs.swap_remove(i);
            if entry.flags & SUB_FLIPS != 0 {
                self.flip_subs.fetch_sub(1, Ordering::Relaxed);
            }
            if was_lagged {
                self.lagged_total.fetch_add(1, Ordering::Relaxed);
                pacds_obs::inc(pacds_obs::Counter::ServeSubscribersLagged);
            }
        }
    }

    /// Registered subscriber count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("hub poisoned").len()
    }

    /// Whether no subscribers are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime count of push frames dropped to full queues.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Lifetime count of subscribers retired for lagging.
    pub fn lagged_total(&self) -> u64 {
        self.lagged_total.load(Ordering::Relaxed)
    }

    /// Publishes one refresh's gateway-flip event to every matching
    /// [`SUB_FLIPS`] subscriber. Called from the Mutate data path: with no
    /// flip subscribers this is a single atomic load, and it never blocks
    /// regardless of subscriber state.
    pub fn publish_flip(
        &self,
        name: &str,
        refresh_seq: u64,
        gateway_flips: u64,
        gateways: u32,
        tiles: &[u32],
    ) {
        if self.flip_subs.load(Ordering::Relaxed) == 0 {
            return;
        }
        let subs = self.inner.lock().expect("hub poisoned");
        let mut frame: Option<Arc<Vec<u8>>> = None;
        for sub in subs.iter() {
            if sub.flags & SUB_FLIPS == 0
                || sub.graph.as_deref().is_some_and(|g| g != name)
            {
                continue;
            }
            let frame = frame.get_or_insert_with(|| {
                let mut buf = Vec::new();
                protocol::encode_flip_event(
                    &mut buf,
                    name,
                    refresh_seq,
                    gateway_flips,
                    gateways,
                    tiles,
                );
                Arc::new(buf)
            });
            self.offer(sub, Arc::clone(frame));
        }
    }

    /// Queues an already-encoded frame to subscriber `id` (used by the
    /// stats push loop, which encodes per-subscriber windows).
    pub fn offer_to(&self, id: u64, frame: Arc<Vec<u8>>) {
        let subs = self.inner.lock().expect("hub poisoned");
        if let Some(sub) = subs.iter().find(|s| s.id == id) {
            self.offer(sub, frame);
        }
    }

    fn offer(&self, sub: &SubEntry, frame: Arc<Vec<u8>>) {
        match sub.tx.try_send(frame) {
            Ok(()) => {
                pacds_obs::inc(pacds_obs::Counter::ServePushFrames);
            }
            Err(TrySendError::Full(_)) => {
                sub.lagged.store(true, Ordering::Relaxed);
                self.dropped.fetch_add(1, Ordering::Relaxed);
                pacds_obs::inc(pacds_obs::Counter::ServePushDropped);
            }
            // The connection already hung up; unregistration is on its way.
            Err(TrySendError::Disconnected(_)) => {}
        }
    }
}

impl std::fmt::Debug for SubscriberHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriberHub")
            .field("subscribers", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SUB_STATS;

    fn sub(hub: &SubscriberHub, flags: u8, graph: Option<&str>) -> Subscription {
        let id = hub.allocate_id();
        hub.register(id, flags, graph.map(str::to_owned))
    }

    #[test]
    fn publish_reaches_matching_subscribers_only() {
        let hub = SubscriberHub::default();
        let all = sub(&hub, SUB_FLIPS, None);
        let named = sub(&hub, SUB_FLIPS, Some("fleet-a"));
        let other = sub(&hub, SUB_FLIPS, Some("fleet-b"));
        let stats_only = sub(&hub, SUB_STATS, None);
        hub.publish_flip("fleet-a", 1, 5, 100, &[2, 4]);
        for s in [&all, &named] {
            let frame = s.rx.try_recv().expect("matching subscriber got the frame");
            let ev = protocol::decode_flip_event(&frame[protocol::LEN_PREFIX + 2..]).unwrap();
            assert_eq!(ev.name, "fleet-a");
            assert_eq!(ev.tiles, vec![2, 4]);
        }
        assert!(other.rx.try_recv().is_err(), "other graph filtered out");
        assert!(stats_only.rx.try_recv().is_err(), "stats-only filtered out");
    }

    #[test]
    fn full_queue_drops_and_marks_lagged_without_blocking() {
        let hub = SubscriberHub::default();
        let s = sub(&hub, SUB_FLIPS, None);
        for i in 0..(SUBSCRIBER_QUEUE as u64 + 3) {
            hub.publish_flip("g", i, 0, 0, &[]);
        }
        assert_eq!(hub.dropped(), 3);
        assert!(s.lagged.load(Ordering::Relaxed));
        // The queued prefix is still drainable.
        let mut drained = 0;
        while s.rx.try_recv().is_ok() {
            drained += 1;
        }
        assert_eq!(drained, SUBSCRIBER_QUEUE);
        hub.unregister(s.id, true);
        assert_eq!(hub.lagged_total(), 1);
        assert!(hub.is_empty());
    }

    #[test]
    fn unregister_is_idempotent_and_clears_fast_path() {
        let hub = SubscriberHub::default();
        let s = sub(&hub, SUB_FLIPS, None);
        hub.unregister(s.id, false);
        hub.unregister(s.id, false);
        assert_eq!(hub.len(), 0);
        assert_eq!(hub.lagged_total(), 0);
        // Fast path: publishing with no subscribers must not encode.
        hub.publish_flip("g", 1, 1, 1, &[0]);
        assert_eq!(hub.dropped(), 0);
    }
}
